//! Ergonomic construction of IR functions.

use crate::function::{BlockId, Function, InstId, Param};
use crate::inst::{FloatPredicate, Inst, IntPredicate, Opcode};
use crate::types::Type;
use crate::value::{Constant, ValueId};

/// Builder misuse caught at emission time instead of a panic.
///
/// The panicking builder methods (`arg`, `iconst`, `add_incoming`, …)
/// remain the ergonomic default for hand-written kernels; the `try_*`
/// variants return this error for callers assembling IR from untrusted
/// input (e.g. a parsed module or a config-driven generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    /// Description of the misuse.
    pub message: String,
}

impl BuildError {
    fn new(message: impl Into<String>) -> Self {
        BuildError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "builder misuse: {}", self.message)
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Function`] instruction by instruction.
///
/// This is the programmatic stand-in for compiling C through clang: the
/// `machsuite` crate uses it to emit each benchmark kernel, including
/// unrolled variants.
///
/// See the [crate-level example](crate) for a complete function.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts a function with named, typed parameters, positioned at `entry`.
    pub fn new(name: &str, params: &[(&str, Type)]) -> Self {
        let params = params
            .iter()
            .map(|(n, t)| Param {
                name: (*n).to_string(),
                ty: t.clone(),
            })
            .collect();
        let func = Function::new(name, params);
        let current = func.entry();
        FunctionBuilder { func, current }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        self.func.entry()
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a new empty block (does not move the insertion point).
    pub fn add_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Moves the insertion point to `block`.
    pub fn position_at(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The value of the `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> ValueId {
        self.try_arg(i).unwrap()
    }

    /// Fallible [`FunctionBuilder::arg`].
    pub fn try_arg(&self, i: usize) -> Result<ValueId, BuildError> {
        if i >= self.func.params.len() {
            return Err(BuildError::new(format!(
                "argument index {i} out of range for `{}` ({} parameters)",
                self.func.name,
                self.func.params.len()
            )));
        }
        Ok(self.func.arg_value(i))
    }

    /// Read access to the function being built.
    pub fn function(&self) -> &Function {
        &self.func
    }

    /// Finishes and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    // ----- constants -------------------------------------------------------

    /// An integer constant of the given type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an integer type.
    pub fn iconst(&mut self, ty: Type, v: i64) -> ValueId {
        self.try_iconst(ty, v).unwrap()
    }

    /// Fallible [`FunctionBuilder::iconst`].
    pub fn try_iconst(&mut self, ty: Type, v: i64) -> Result<ValueId, BuildError> {
        if !ty.is_int() {
            return Err(BuildError::new(format!(
                "iconst requires an integer type, got {ty}"
            )));
        }
        Ok(self.func.const_value(Constant::Int { ty, value: v }))
    }

    /// An `i32` constant.
    pub fn i32c(&mut self, v: i32) -> ValueId {
        self.func.const_value(Constant::i32(v))
    }

    /// An `i64` constant.
    pub fn i64c(&mut self, v: i64) -> ValueId {
        self.func.const_value(Constant::i64(v))
    }

    /// A `float` constant.
    pub fn f32c(&mut self, v: f32) -> ValueId {
        self.func.const_value(Constant::f32(v))
    }

    /// A `double` constant.
    pub fn f64c(&mut self, v: f64) -> ValueId {
        self.func.const_value(Constant::f64(v))
    }

    /// An `i1` constant.
    pub fn boolc(&mut self, v: bool) -> ValueId {
        self.func.const_value(Constant::bool(v))
    }

    // ----- core emission ---------------------------------------------------

    fn emit(&mut self, op: Opcode, ty: Type, operands: Vec<ValueId>, name: &str) -> ValueId {
        let (_, v) = self.func.add_inst(
            self.current,
            Inst {
                op,
                ty,
                operands,
                block_refs: vec![],
                name: name.to_string(),
            },
        );
        v.expect("emit used for value-producing instruction")
    }

    fn emit_void(
        &mut self,
        op: Opcode,
        operands: Vec<ValueId>,
        block_refs: Vec<BlockId>,
    ) -> InstId {
        let (id, _) = self.func.add_inst(
            self.current,
            Inst {
                op,
                ty: Type::Void,
                operands,
                block_refs,
                name: String::new(),
            },
        );
        id
    }

    fn binary(&mut self, op: Opcode, a: ValueId, b: ValueId, name: &str) -> ValueId {
        let ty = self.func.value_type(a);
        self.emit(op, ty, vec![a, b], name)
    }

    // ----- integer arithmetic ----------------------------------------------

    /// Integer add.
    pub fn add(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::Add, a, b, name)
    }

    /// Integer subtract.
    pub fn sub(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::Sub, a, b, name)
    }

    /// Integer multiply.
    pub fn mul(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::Mul, a, b, name)
    }

    /// Signed divide.
    pub fn sdiv(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::SDiv, a, b, name)
    }

    /// Unsigned divide.
    pub fn udiv(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::UDiv, a, b, name)
    }

    /// Signed remainder.
    pub fn srem(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::SRem, a, b, name)
    }

    /// Unsigned remainder.
    pub fn urem(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::URem, a, b, name)
    }

    /// Shift left.
    pub fn shl(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::Shl, a, b, name)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::LShr, a, b, name)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::AShr, a, b, name)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::And, a, b, name)
    }

    /// Bitwise or.
    pub fn or(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::Or, a, b, name)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::Xor, a, b, name)
    }

    // ----- floating-point arithmetic ----------------------------------------

    /// Floating add.
    pub fn fadd(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::FAdd, a, b, name)
    }

    /// Floating subtract.
    pub fn fsub(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::FSub, a, b, name)
    }

    /// Floating multiply.
    pub fn fmul(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::FMul, a, b, name)
    }

    /// Floating divide.
    pub fn fdiv(&mut self, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.binary(Opcode::FDiv, a, b, name)
    }

    /// Floating negate.
    pub fn fneg(&mut self, a: ValueId, name: &str) -> ValueId {
        let ty = self.func.value_type(a);
        self.emit(Opcode::FNeg, ty, vec![a], name)
    }

    // ----- comparisons ------------------------------------------------------

    /// Integer compare, yielding `i1`.
    pub fn icmp(&mut self, pred: IntPredicate, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.emit(Opcode::ICmp(pred), Type::I1, vec![a, b], name)
    }

    /// Floating compare, yielding `i1`.
    pub fn fcmp(&mut self, pred: FloatPredicate, a: ValueId, b: ValueId, name: &str) -> ValueId {
        self.emit(Opcode::FCmp(pred), Type::I1, vec![a, b], name)
    }

    // ----- memory ------------------------------------------------------------

    /// Loads a scalar of type `ty` from `ptr`.
    pub fn load(&mut self, ty: Type, ptr: ValueId, name: &str) -> ValueId {
        self.emit(Opcode::Load, ty, vec![ptr], name)
    }

    /// Fallible [`FunctionBuilder::load`]: rejects non-pointer addresses at
    /// emission time instead of failing verification later.
    pub fn try_load(&mut self, ty: Type, ptr: ValueId, name: &str) -> Result<ValueId, BuildError> {
        let pt = self.func.value_type(ptr);
        if pt != Type::Ptr {
            return Err(BuildError::new(format!(
                "load address must be a pointer, got {pt}"
            )));
        }
        Ok(self.emit(Opcode::Load, ty, vec![ptr], name))
    }

    /// Stores `value` to `ptr`.
    pub fn store(&mut self, value: ValueId, ptr: ValueId) {
        self.emit_void(Opcode::Store, vec![value, ptr], vec![]);
    }

    /// `getelementptr elem, ptr, indices...` — pointer arithmetic.
    pub fn gep(&mut self, elem: Type, ptr: ValueId, indices: &[ValueId], name: &str) -> ValueId {
        let mut ops = vec![ptr];
        ops.extend_from_slice(indices);
        self.emit(Opcode::Gep { elem }, Type::Ptr, ops, name)
    }

    /// Shorthand for `gep` with a single index over a scalar element type.
    pub fn gep1(&mut self, elem: Type, ptr: ValueId, index: ValueId, name: &str) -> ValueId {
        self.gep(elem, ptr, &[index], name)
    }

    // ----- casts --------------------------------------------------------------

    fn cast(&mut self, op: Opcode, v: ValueId, to: Type, name: &str) -> ValueId {
        self.emit(op, to, vec![v], name)
    }

    /// Truncate integer to `to`.
    pub fn trunc(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::Trunc, v, to, name)
    }

    /// Zero-extend integer to `to`.
    pub fn zext(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::ZExt, v, to, name)
    }

    /// Sign-extend integer to `to`.
    pub fn sext(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::SExt, v, to, name)
    }

    /// Floating truncate (`double` → `float`).
    pub fn fptrunc(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::FPTrunc, v, to, name)
    }

    /// Floating extend (`float` → `double`).
    pub fn fpext(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::FPExt, v, to, name)
    }

    /// Float to signed integer.
    pub fn fptosi(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::FPToSI, v, to, name)
    }

    /// Float to unsigned integer.
    pub fn fptoui(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::FPToUI, v, to, name)
    }

    /// Signed integer to float.
    pub fn sitofp(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::SIToFP, v, to, name)
    }

    /// Unsigned integer to float.
    pub fn uitofp(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::UIToFP, v, to, name)
    }

    /// Bit reinterpretation between same-width types.
    pub fn bitcast(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::BitCast, v, to, name)
    }

    /// Pointer to integer.
    pub fn ptrtoint(&mut self, v: ValueId, to: Type, name: &str) -> ValueId {
        self.cast(Opcode::PtrToInt, v, to, name)
    }

    /// Integer to pointer.
    pub fn inttoptr(&mut self, v: ValueId, name: &str) -> ValueId {
        self.cast(Opcode::IntToPtr, v, Type::Ptr, name)
    }

    // ----- phi / select ---------------------------------------------------------

    /// Creates a `phi` of type `ty` with no incoming edges yet.
    ///
    /// Use [`FunctionBuilder::add_incoming`] to attach `(block, value)` pairs,
    /// then the returned [`ValueId`] as the phi's value.
    pub fn phi(&mut self, ty: Type, name: &str) -> (InstId, ValueId) {
        let (id, v) = self.func.add_inst(
            self.current,
            Inst {
                op: Opcode::Phi,
                ty,
                operands: vec![],
                block_refs: vec![],
                name: name.to_string(),
            },
        );
        (id, v.expect("phi produces a value"))
    }

    /// Attaches an incoming `(value, from_block)` edge to a phi.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a `phi` instruction.
    pub fn add_incoming(&mut self, phi: InstId, value: ValueId, from: BlockId) {
        self.try_add_incoming(phi, value, from).unwrap()
    }

    /// Fallible [`FunctionBuilder::add_incoming`].
    pub fn try_add_incoming(
        &mut self,
        phi: InstId,
        value: ValueId,
        from: BlockId,
    ) -> Result<(), BuildError> {
        let inst = self.func.inst_mut(phi);
        if inst.op != Opcode::Phi {
            return Err(BuildError::new(format!(
                "add_incoming on non-phi instruction `{}`",
                inst.op.mnemonic()
            )));
        }
        inst.operands.push(value);
        inst.block_refs.push(from);
        Ok(())
    }

    /// `select i1 %cond, %then, %else`.
    pub fn select(
        &mut self,
        cond: ValueId,
        then_v: ValueId,
        else_v: ValueId,
        name: &str,
    ) -> ValueId {
        let ty = self.func.value_type(then_v);
        self.emit(Opcode::Select, ty, vec![cond, then_v, else_v], name)
    }

    // ----- terminators -------------------------------------------------------------

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.emit_void(Opcode::Br, vec![], vec![target]);
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_b: BlockId, else_b: BlockId) {
        self.emit_void(Opcode::CondBr, vec![cond], vec![then_b, else_b]);
    }

    /// `ret void`.
    pub fn ret(&mut self) {
        self.emit_void(Opcode::Ret, vec![], vec![]);
    }

    /// `ret <value>`.
    pub fn ret_value(&mut self, v: ValueId) {
        self.emit_void(Opcode::Ret, vec![v], vec![]);
    }

    // ----- structured helpers ---------------------------------------------------------

    /// Emits a canonical counted loop `for (iv = start; iv < end; iv += 1)`.
    ///
    /// `start` and `end` must be `i64` values. `body` is invoked positioned
    /// inside the loop body with the induction variable; it may create nested
    /// loops, but must leave the builder positioned in a block that falls
    /// through to the loop latch. On return the builder is positioned in the
    /// exit block.
    pub fn counted_loop(
        &mut self,
        name: &str,
        start: ValueId,
        end: ValueId,
        body: impl FnOnce(&mut Self, ValueId),
    ) {
        let header = self.add_block(&format!("{name}.header"));
        let body_b = self.add_block(&format!("{name}.body"));
        let exit = self.add_block(&format!("{name}.exit"));
        let preheader = self.current_block();
        self.br(header);

        self.position_at(header);
        let (phi_id, iv) = self.phi(Type::I64, &format!("{name}.iv"));
        self.add_incoming(phi_id, start, preheader);
        let cond = self.icmp(IntPredicate::Slt, iv, end, &format!("{name}.cond"));
        self.cond_br(cond, body_b, exit);

        self.position_at(body_b);
        body(self, iv);
        let latch = self.current_block();
        let one = self.i64c(1);
        let next = self.add(iv, one, &format!("{name}.iv.next"));
        self.br(header);
        self.add_incoming(phi_id, next, latch);

        self.position_at(exit);
    }

    /// Emits a counted loop carrying extra loop accumulators.
    ///
    /// `accs` supplies `(type, initial value)` pairs; `body` receives the
    /// induction variable and current accumulator values and must return the
    /// updated accumulator values (same order). Returns the final
    /// accumulator values, usable in the exit block. The step is `step`
    /// (use 1 for the common case).
    pub fn counted_loop_accs(
        &mut self,
        name: &str,
        start: ValueId,
        end: ValueId,
        step: i64,
        accs: &[(Type, ValueId)],
        body: impl FnOnce(&mut Self, ValueId, &[ValueId]) -> Vec<ValueId>,
    ) -> Vec<ValueId> {
        let header = self.add_block(&format!("{name}.header"));
        let body_b = self.add_block(&format!("{name}.body"));
        let exit = self.add_block(&format!("{name}.exit"));
        let preheader = self.current_block();
        self.br(header);

        self.position_at(header);
        let (iv_phi, iv) = self.phi(Type::I64, &format!("{name}.iv"));
        self.add_incoming(iv_phi, start, preheader);
        let mut acc_phis = Vec::with_capacity(accs.len());
        let mut acc_vals = Vec::with_capacity(accs.len());
        for (k, (ty, init)) in accs.iter().enumerate() {
            let (p, v) = self.phi(ty.clone(), &format!("{name}.acc{k}"));
            self.add_incoming(p, *init, preheader);
            acc_phis.push(p);
            acc_vals.push(v);
        }
        let cond = self.icmp(IntPredicate::Slt, iv, end, &format!("{name}.cond"));
        self.cond_br(cond, body_b, exit);

        self.position_at(body_b);
        let updated = body(self, iv, &acc_vals);
        assert_eq!(
            updated.len(),
            accs.len(),
            "body must update every accumulator"
        );
        let latch = self.current_block();
        let step_v = self.i64c(step);
        let next = self.add(iv, step_v, &format!("{name}.iv.next"));
        self.br(header);
        self.add_incoming(iv_phi, next, latch);
        for (p, u) in acc_phis.iter().zip(&updated) {
            self.add_incoming(*p, *u, latch);
        }

        self.position_at(exit);
        acc_vals
    }

    /// Like [`FunctionBuilder::counted_loop`] with a custom step.
    pub fn counted_loop_step(
        &mut self,
        name: &str,
        start: ValueId,
        end: ValueId,
        step: i64,
        body: impl FnOnce(&mut Self, ValueId),
    ) {
        let header = self.add_block(&format!("{name}.header"));
        let body_b = self.add_block(&format!("{name}.body"));
        let exit = self.add_block(&format!("{name}.exit"));
        let preheader = self.current_block();
        self.br(header);

        self.position_at(header);
        let (phi_id, iv) = self.phi(Type::I64, &format!("{name}.iv"));
        self.add_incoming(phi_id, start, preheader);
        let cond = self.icmp(IntPredicate::Slt, iv, end, &format!("{name}.cond"));
        self.cond_br(cond, body_b, exit);

        self.position_at(body_b);
        body(self, iv);
        let latch = self.current_block();
        let step_v = self.i64c(step);
        let next = self.add(iv, step_v, &format!("{name}.iv.next"));
        self.br(header);
        self.add_incoming(phi_id, next, latch);

        self.position_at(exit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn simple_loop_verifies() {
        let mut fb = FunctionBuilder::new("sum", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::I32, a, iv, "p");
            let x = fb.load(Type::I32, p, "x");
            let one = fb.i32c(1);
            let y = fb.add(x, one, "y");
            fb.store(y, p);
        });
        fb.ret();
        let f = fb.finish();
        verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), 4); // entry, header, body, exit
    }

    #[test]
    fn nested_loops_verify() {
        let mut fb = FunctionBuilder::new("nest", &[("a", Type::Ptr)]);
        let a = fb.arg(0);
        let zero = fb.i64c(0);
        let four = fb.i64c(4);
        fb.counted_loop("i", zero, four, |fb, i| {
            let zero = fb.i64c(0);
            let four = fb.i64c(4);
            fb.counted_loop("j", zero, four, |fb, j| {
                let idx4 = fb.i64c(4);
                let row = fb.mul(i, idx4, "row");
                let idx = fb.add(row, j, "idx");
                let p = fb.gep1(Type::F32, a, idx, "p");
                let x = fb.load(Type::F32, p, "x");
                let two = fb.f32c(2.0);
                let y = fb.fmul(x, two, "y");
                fb.store(y, p);
            });
        });
        fb.ret();
        let f = fb.finish();
        verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), 7);
    }

    #[test]
    fn select_and_cmp_types() {
        let mut fb = FunctionBuilder::new("sel", &[("x", Type::I32)]);
        let x = fb.arg(0);
        let ten = fb.i32c(10);
        let c = fb.icmp(IntPredicate::Slt, x, ten, "c");
        let s = fb.select(c, x, ten, "s");
        fb.ret_value(s);
        let f = fb.finish();
        assert_eq!(f.value_type(c), Type::I1);
        assert_eq!(f.value_type(s), Type::I32);
    }

    #[test]
    fn step_loop_structure() {
        let mut fb = FunctionBuilder::new("strided", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        fb.counted_loop_step("i", zero, n, 2, |_, _| {});
        fb.ret();
        let f = fb.finish();
        verify_function(&f).unwrap();
    }
}
