//! A parser for a textual `.ll`-style subset, inverse of the printer.

use std::collections::HashMap;

use crate::function::{BlockId, Function, Module, Param};
use crate::inst::{FloatPredicate, Inst, IntPredicate, Opcode};
use crate::types::Type;
use crate::value::{Constant, ValueId};

/// An error produced by [`parse_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a module from LLVM-like textual IR.
///
/// Supports the instruction subset printed by this crate: integer/float
/// binary ops, comparisons, casts, `load`/`store`/`getelementptr`,
/// `phi`/`select`, `br`/`ret`. Comments start with `;`.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input, unknown
/// instructions, or references to undefined values/blocks.
///
/// ```
/// let m = salam_ir::parse_module(r#"
/// define i32 @addone(i32 %x) {
/// entry:
///   %y = add i32 %x, 1
///   ret i32 %y
/// }
/// "#).unwrap();
/// assert_eq!(m.functions().len(), 1);
/// ```
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    Parser::new(text).module()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LocalRef(String),  // %name
    GlobalRef(String), // @name
    Num(String),
    Punct(char),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && (self.src[self.pos] as char).is_whitespace() {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b';' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn ident_tail(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos] as char;
            if c.is_alphanumeric() || c == '.' || c == '_' || c == '-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn next(&mut self) -> Option<(Tok, usize)> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return None;
        }
        let line = self.line;
        let c = self.src[self.pos] as char;
        let tok = match c {
            '%' => {
                self.pos += 1;
                Tok::LocalRef(self.ident_tail())
            }
            '@' => {
                self.pos += 1;
                Tok::GlobalRef(self.ident_tail())
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ',' | '=' | ':' => {
                self.pos += 1;
                Tok::Punct(c)
            }
            '-' | '0'..='9' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.src.len() {
                    let d = self.src[self.pos] as char;
                    let exponent_sign =
                        (d == '+' || d == '-') && matches!(self.src[self.pos - 1], b'e' | b'E');
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' || exponent_sign {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Tok::Num(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            _ if c.is_alphabetic() || c == '_' => Tok::Ident(self.ident_tail()),
            other => {
                self.pos += 1;
                Tok::Punct(other)
            }
        };
        Some((tok, line))
    }
}

/// An operand reference before resolution.
#[derive(Debug, Clone)]
enum Ref {
    Name(String),
    Const(Constant),
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn new(text: &str) -> Self {
        let mut lex = Lexer::new(text);
        let mut toks = Vec::new();
        while let Some(t) = lex.next() {
            toks.push(t);
        }
        Parser { toks, idx: 0 }
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.idx.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(t, _)| t.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => self.err(format!("expected '{c}', found {other:?}")),
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => self.err(format!("expected '{kw}', found {other:?}")),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let mut m = Module::new("parsed");
        while self.peek().is_some() {
            self.expect_ident("define")?;
            m.add_function(self.function()?);
        }
        Ok(m)
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => match s.as_str() {
                "void" => Ok(Type::Void),
                "i1" => Ok(Type::I1),
                "i8" => Ok(Type::I8),
                "i16" => Ok(Type::I16),
                "i32" => Ok(Type::I32),
                "i64" => Ok(Type::I64),
                "float" => Ok(Type::F32),
                "double" => Ok(Type::F64),
                "ptr" => Ok(Type::Ptr),
                other => self.err(format!("unknown type '{other}'")),
            },
            Some(Tok::Punct('[')) => {
                let len = match self.next() {
                    Some(Tok::Num(n)) => n.parse::<u64>().map_err(|_| ParseError {
                        line: self.line(),
                        message: "bad array length".into(),
                    })?,
                    other => return self.err(format!("expected array length, found {other:?}")),
                };
                self.expect_ident("x")?;
                let elem = self.ty()?;
                self.expect_punct(']')?;
                Ok(Type::array(elem, len))
            }
            other => self.err(format!("expected type, found {other:?}")),
        }
    }

    fn operand(&mut self, ty: &Type) -> Result<Ref, ParseError> {
        match self.next() {
            Some(Tok::LocalRef(name)) => Ok(Ref::Name(name)),
            Some(Tok::Num(n)) => {
                if ty.is_float() {
                    let v: f64 = n.parse().map_err(|_| ParseError {
                        line: self.line(),
                        message: format!("bad float '{n}'"),
                    })?;
                    Ok(Ref::Const(Constant::Float {
                        ty: ty.clone(),
                        value: v,
                    }))
                } else if ty.is_int() {
                    let v: i64 = n.parse().map_err(|_| ParseError {
                        line: self.line(),
                        message: format!("bad int '{n}'"),
                    })?;
                    Ok(Ref::Const(Constant::Int {
                        ty: ty.clone(),
                        value: v,
                    }))
                } else {
                    self.err(format!("numeric literal for non-scalar type {ty}"))
                }
            }
            Some(Tok::Ident(s)) if s == "null" => Ok(Ref::Const(Constant::NullPtr)),
            Some(Tok::Ident(s)) if s == "undef" => Ok(Ref::Const(Constant::Undef(ty.clone()))),
            Some(Tok::Ident(s)) if s == "true" => Ok(Ref::Const(Constant::bool(true))),
            Some(Tok::Ident(s)) if s == "false" => Ok(Ref::Const(Constant::bool(false))),
            other => self.err(format!("expected operand, found {other:?}")),
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let _ret_ty = self.ty()?;
        let name = match self.next() {
            Some(Tok::GlobalRef(n)) => n,
            other => return self.err(format!("expected @name, found {other:?}")),
        };
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.eat_punct(')') {
            loop {
                let ty = self.ty()?;
                let pname = match self.next() {
                    Some(Tok::LocalRef(n)) => n,
                    other => return self.err(format!("expected %param, found {other:?}")),
                };
                params.push(Param { name: pname, ty });
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct('{')?;

        // Collect raw block bodies first so labels and values can be forward
        // referenced.
        struct RawInst {
            result: Option<String>,
            op: Opcode,
            ty: Type,
            operands: Vec<(Type, Ref)>,
            blocks: Vec<String>,
            line: usize,
        }
        let mut raw_blocks: Vec<(String, Vec<RawInst>)> = Vec::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            // Block label.
            let label = match self.next() {
                Some(Tok::Ident(l)) => l,
                other => return self.err(format!("expected block label, found {other:?}")),
            };
            self.expect_punct(':')?;
            let mut insts = Vec::new();
            loop {
                match self.peek() {
                    Some(Tok::Punct('}')) => break,
                    Some(Tok::Ident(_)) => {
                        // Either a new block label (ident ':') or an unnamed
                        // instruction (store/br/ret).
                        if matches!(
                            self.toks.get(self.idx + 1).map(|(t, _)| t),
                            Some(Tok::Punct(':'))
                        ) {
                            break;
                        }
                        let line = self.line();
                        let (op, ty, operands, blocks) = self.inst_body()?;
                        insts.push(RawInst {
                            result: None,
                            op,
                            ty,
                            operands,
                            blocks,
                            line,
                        });
                    }
                    Some(Tok::LocalRef(_)) => {
                        let result = match self.next() {
                            Some(Tok::LocalRef(n)) => n,
                            other => {
                                return self
                                    .err(format!("expected a local reference, found {other:?}"))
                            }
                        };
                        self.expect_punct('=')?;
                        let line = self.line();
                        let (op, ty, operands, blocks) = self.inst_body()?;
                        insts.push(RawInst {
                            result: Some(result),
                            op,
                            ty,
                            operands,
                            blocks,
                            line,
                        });
                    }
                    other => return self.err(format!("expected instruction, found {other:?}")),
                }
            }
            raw_blocks.push((label, insts));
        }

        if raw_blocks.is_empty() {
            return self.err("function has no blocks");
        }

        // Materialize the function: blocks first, then instructions with
        // patched forward references.
        let mut func = Function::new(&name, params);
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        for (i, (label, _)) in raw_blocks.iter().enumerate() {
            let id = if i == 0 {
                // Reuse the implicit entry block but take the parsed name.
                let e = func.entry();
                func.blocks[e.index()].name = label.clone();
                e
            } else {
                func.add_block(label)
            };
            if block_ids.insert(label.clone(), id).is_some() {
                return self.err(format!("duplicate block label '{label}'"));
            }
        }

        let mut value_by_name: HashMap<String, ValueId> = HashMap::new();
        for (i, p) in func.params.iter().enumerate() {
            value_by_name.insert(p.name.clone(), func.arg_values[i]);
        }
        let mut patches: Vec<(crate::function::InstId, usize, String, usize)> = Vec::new();

        for (label, insts) in &raw_blocks {
            let bid = block_ids[label];
            for ri in insts {
                let mut ops = Vec::with_capacity(ri.operands.len());
                let mut pending: Vec<(usize, String)> = Vec::new();
                for (k, (oty, r)) in ri.operands.iter().enumerate() {
                    match r {
                        Ref::Const(c) => ops.push(func.const_value(c.clone())),
                        Ref::Name(n) => match value_by_name.get(n) {
                            Some(&v) => ops.push(v),
                            None => {
                                // Placeholder, patched once the def is seen.
                                ops.push(func.const_value(Constant::Undef(oty.clone())));
                                pending.push((k, n.clone()));
                            }
                        },
                    }
                }
                let mut brefs = Vec::with_capacity(ri.blocks.len());
                for bname in &ri.blocks {
                    match block_ids.get(bname) {
                        Some(&b) => brefs.push(b),
                        None => {
                            return Err(ParseError {
                                line: ri.line,
                                message: format!("unknown block '%{bname}'"),
                            })
                        }
                    }
                }
                let (iid, result) = func.add_inst(
                    bid,
                    Inst {
                        op: ri.op.clone(),
                        ty: ri.ty.clone(),
                        operands: ops,
                        block_refs: brefs,
                        name: ri.result.clone().unwrap_or_default(),
                    },
                );
                for (k, n) in pending {
                    patches.push((iid, k, n, ri.line));
                }
                if let (Some(rname), Some(v)) = (&ri.result, result) {
                    if value_by_name.insert(rname.clone(), v).is_some() {
                        return Err(ParseError {
                            line: ri.line,
                            message: format!("redefinition of %{rname}"),
                        });
                    }
                }
            }
        }

        for (iid, k, name, line) in patches {
            match value_by_name.get(&name) {
                Some(&v) => func.inst_mut(iid).operands[k] = v,
                None => {
                    return Err(ParseError {
                        line,
                        message: format!("undefined value %{name}"),
                    })
                }
            }
        }
        Ok(func)
    }

    /// Parses an instruction body after any `%res =` prefix.
    #[allow(clippy::type_complexity)]
    fn inst_body(&mut self) -> Result<(Opcode, Type, Vec<(Type, Ref)>, Vec<String>), ParseError> {
        let mnemonic = match self.next() {
            Some(Tok::Ident(m)) => m,
            other => return self.err(format!("expected mnemonic, found {other:?}")),
        };
        let binop = |m: &str| -> Option<Opcode> {
            Some(match m {
                "add" => Opcode::Add,
                "sub" => Opcode::Sub,
                "mul" => Opcode::Mul,
                "udiv" => Opcode::UDiv,
                "sdiv" => Opcode::SDiv,
                "urem" => Opcode::URem,
                "srem" => Opcode::SRem,
                "shl" => Opcode::Shl,
                "lshr" => Opcode::LShr,
                "ashr" => Opcode::AShr,
                "and" => Opcode::And,
                "or" => Opcode::Or,
                "xor" => Opcode::Xor,
                "fadd" => Opcode::FAdd,
                "fsub" => Opcode::FSub,
                "fmul" => Opcode::FMul,
                "fdiv" => Opcode::FDiv,
                _ => return None,
            })
        };
        let castop = |m: &str| -> Option<Opcode> {
            Some(match m {
                "trunc" => Opcode::Trunc,
                "zext" => Opcode::ZExt,
                "sext" => Opcode::SExt,
                "fptrunc" => Opcode::FPTrunc,
                "fpext" => Opcode::FPExt,
                "fptosi" => Opcode::FPToSI,
                "fptoui" => Opcode::FPToUI,
                "sitofp" => Opcode::SIToFP,
                "uitofp" => Opcode::UIToFP,
                "bitcast" => Opcode::BitCast,
                "ptrtoint" => Opcode::PtrToInt,
                "inttoptr" => Opcode::IntToPtr,
                _ => return None,
            })
        };

        if let Some(op) = binop(&mnemonic) {
            let ty = self.ty()?;
            let a = self.operand(&ty)?;
            self.expect_punct(',')?;
            let b = self.operand(&ty)?;
            return Ok((op, ty.clone(), vec![(ty.clone(), a), (ty, b)], vec![]));
        }
        if let Some(op) = castop(&mnemonic) {
            let from_ty = self.ty()?;
            let v = self.operand(&from_ty)?;
            self.expect_ident("to")?;
            let to_ty = self.ty()?;
            return Ok((op, to_ty, vec![(from_ty, v)], vec![]));
        }
        match mnemonic.as_str() {
            "fneg" => {
                let ty = self.ty()?;
                let v = self.operand(&ty)?;
                Ok((Opcode::FNeg, ty.clone(), vec![(ty, v)], vec![]))
            }
            "icmp" | "fcmp" => {
                let pred = match self.next() {
                    Some(Tok::Ident(p)) => p,
                    other => return self.err(format!("expected predicate, found {other:?}")),
                };
                let ty = self.ty()?;
                let a = self.operand(&ty)?;
                self.expect_punct(',')?;
                let b = self.operand(&ty)?;
                let op = if mnemonic == "icmp" {
                    Opcode::ICmp(IntPredicate::from_keyword(&pred).ok_or_else(|| ParseError {
                        line: self.line(),
                        message: format!("bad icmp predicate '{pred}'"),
                    })?)
                } else {
                    Opcode::FCmp(
                        FloatPredicate::from_keyword(&pred).ok_or_else(|| ParseError {
                            line: self.line(),
                            message: format!("bad fcmp predicate '{pred}'"),
                        })?,
                    )
                };
                Ok((op, Type::I1, vec![(ty.clone(), a), (ty, b)], vec![]))
            }
            "load" => {
                let ty = self.ty()?;
                self.expect_punct(',')?;
                self.expect_ident("ptr")?;
                let p = self.operand(&Type::Ptr)?;
                Ok((Opcode::Load, ty, vec![(Type::Ptr, p)], vec![]))
            }
            "store" => {
                let ty = self.ty()?;
                let v = self.operand(&ty)?;
                self.expect_punct(',')?;
                self.expect_ident("ptr")?;
                let p = self.operand(&Type::Ptr)?;
                Ok((
                    Opcode::Store,
                    Type::Void,
                    vec![(ty, v), (Type::Ptr, p)],
                    vec![],
                ))
            }
            "getelementptr" => {
                let elem = self.ty()?;
                self.expect_punct(',')?;
                self.expect_ident("ptr")?;
                let p = self.operand(&Type::Ptr)?;
                let mut operands = vec![(Type::Ptr, p)];
                while self.eat_punct(',') {
                    let ity = self.ty()?;
                    let idx = self.operand(&ity)?;
                    operands.push((ity, idx));
                }
                Ok((Opcode::Gep { elem }, Type::Ptr, operands, vec![]))
            }
            "phi" => {
                let ty = self.ty()?;
                let mut operands = Vec::new();
                let mut blocks = Vec::new();
                loop {
                    self.expect_punct('[')?;
                    let v = self.operand(&ty)?;
                    self.expect_punct(',')?;
                    let b = match self.next() {
                        Some(Tok::LocalRef(b)) => b,
                        other => return self.err(format!("expected %block, found {other:?}")),
                    };
                    self.expect_punct(']')?;
                    operands.push((ty.clone(), v));
                    blocks.push(b);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                Ok((Opcode::Phi, ty, operands, blocks))
            }
            "select" => {
                let cty = self.ty()?;
                let c = self.operand(&cty)?;
                self.expect_punct(',')?;
                let ty = self.ty()?;
                let t = self.operand(&ty)?;
                self.expect_punct(',')?;
                let ty2 = self.ty()?;
                let e = self.operand(&ty2)?;
                Ok((
                    Opcode::Select,
                    ty.clone(),
                    vec![(cty, c), (ty, t), (ty2, e)],
                    vec![],
                ))
            }
            "br" => {
                if self.peek() == Some(&Tok::Ident("label".into())) {
                    self.expect_ident("label")?;
                    let b = match self.next() {
                        Some(Tok::LocalRef(b)) => b,
                        other => return self.err(format!("expected %block, found {other:?}")),
                    };
                    Ok((Opcode::Br, Type::Void, vec![], vec![b]))
                } else {
                    let cty = self.ty()?;
                    let c = self.operand(&cty)?;
                    self.expect_punct(',')?;
                    self.expect_ident("label")?;
                    let t = match self.next() {
                        Some(Tok::LocalRef(b)) => b,
                        other => return self.err(format!("expected %block, found {other:?}")),
                    };
                    self.expect_punct(',')?;
                    self.expect_ident("label")?;
                    let f = match self.next() {
                        Some(Tok::LocalRef(b)) => b,
                        other => return self.err(format!("expected %block, found {other:?}")),
                    };
                    Ok((Opcode::CondBr, Type::Void, vec![(cty, c)], vec![t, f]))
                }
            }
            "ret" => {
                let ty = self.ty()?;
                if ty == Type::Void {
                    Ok((Opcode::Ret, Type::Void, vec![], vec![]))
                } else {
                    let v = self.operand(&ty)?;
                    Ok((Opcode::Ret, Type::Void, vec![(ty, v)], vec![]))
                }
            }
            other => self.err(format!("unknown instruction '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::verify::verify_function;

    #[test]
    fn parses_minimal_function() {
        let m = parse_module(
            "define void @f(ptr %a) {\nentry:\n  %x = load i32, ptr %a\n  store i32 %x, ptr %a\n  ret void\n}\n",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.live_inst_count(), 3);
        verify_function(f).unwrap();
    }

    #[test]
    fn forward_phi_reference_resolves() {
        let src = r#"
define void @loop(i64 %n) {
entry:
  br label %head
head:
  %iv = phi i64 [ 0, %entry ], [ %next, %head.body ]
  %c = icmp slt i64 %iv, %n
  br i1 %c, label %head.body, label %done
head.body:
  %next = add i64 %iv, 1
  br label %head
done:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("loop").unwrap();
        verify_function(f).unwrap();
    }

    #[test]
    fn roundtrip_builder_output() {
        let mut fb = FunctionBuilder::new("k", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::F64, a, iv, "p");
            let x = fb.load(Type::F64, p, "x");
            let y = fb.fmul(x, x, "y");
            fb.store(y, p);
        });
        fb.ret();
        let mut m = Module::new("m");
        m.add_function(fb.finish());
        let text = m.to_string();
        let reparsed = parse_module(&text).unwrap();
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn comments_are_skipped() {
        let m = parse_module("; a module\ndefine void @f() {\nentry: ; block\n  ret void\n}\n")
            .unwrap();
        assert_eq!(m.functions().len(), 1);
    }

    #[test]
    fn error_has_line_number() {
        let err = parse_module("define void @f() {\nentry:\n  %x = bogus i32 %y\n}\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn undefined_value_rejected() {
        let err =
            parse_module("define void @f() {\nentry:\n  %x = add i32 %nope, 1\n  ret void\n}\n")
                .unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = parse_module(
            "define void @f() {\nentry:\n  br label %entry2\nentry2:\n  ret void\nentry2:\n  ret void\n}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn parses_gep_casts_select() {
        let src = r#"
define double @g(ptr %a, i32 %i) {
entry:
  %ie = sext i32 %i to i64
  %p = getelementptr [4 x double], ptr %a, i64 0, i64 %ie
  %x = load double, ptr %p
  %c = fcmp ogt double %x, 0.0
  %y = select i1 %c, double %x, double 0.0
  ret double %y
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("g").unwrap();
        verify_function(f).unwrap();
        assert_eq!(f.opcode_histogram()["getelementptr"], 1);
    }
}
