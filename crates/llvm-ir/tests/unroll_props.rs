//! Property tests: loop unrolling plus the default pipeline preserve the
//! semantics of randomly generated counted loops. Cases come from the
//! in-tree seeded harness (`salam_obs::det`).

use salam_obs::det::{check_cases, SplitMix64};

use salam_ir::interp::{run_function, NullObserver, RtVal, SparseMemory};
use salam_ir::passes::{run_default_pipeline, unroll_loops, unroll_loops_by};
use salam_ir::{Function, FunctionBuilder, Type};

/// Body operations applied per iteration to `a[i]` and an accumulator.
#[derive(Debug, Clone, Copy)]
enum BodyOp {
    AddElem,
    MulByConst(i8),
    XorElem,
    SubIv,
}

fn gen_body_op(g: &mut SplitMix64) -> BodyOp {
    match g.range_usize(0, 4) {
        0 => BodyOp::AddElem,
        1 => BodyOp::MulByConst(g.range_i64(i8::MIN as i64, i8::MAX as i64 + 1) as i8),
        2 => BodyOp::XorElem,
        _ => BodyOp::SubIv,
    }
}

fn gen_body(g: &mut SplitMix64, lo: usize, hi: usize) -> Vec<BodyOp> {
    let n = g.range_usize(lo, hi);
    (0..n).map(|_| gen_body_op(g)).collect()
}

fn gen_data(g: &mut SplitMix64) -> Vec<i64> {
    let n = g.range_usize(24, 32);
    (0..n).map(|_| g.range_i64(-1000, 1000)).collect()
}

/// Builds: `acc = init; for i in 0..trip { x = a[i]; acc = f(acc, x, i);
/// a[i] = acc } ; out[0] = acc`.
fn build_loop_kernel(trip: i64, init: i64, body: &[BodyOp]) -> Function {
    let mut fb = FunctionBuilder::new("k", &[("a", Type::Ptr), ("out", Type::Ptr)]);
    let a = fb.arg(0);
    let out = fb.arg(1);
    let zero = fb.i64c(0);
    let tripv = fb.i64c(trip);
    let initv = fb.i64c(init);
    let finals = fb.counted_loop_accs(
        "i",
        zero,
        tripv,
        1,
        &[(Type::I64, initv)],
        |fb, iv, accs| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            let x = fb.load(Type::I64, p, "x");
            let mut acc = accs[0];
            for op in body {
                acc = match *op {
                    BodyOp::AddElem => fb.add(acc, x, "t"),
                    BodyOp::MulByConst(c) => {
                        let cv = fb.i64c(c as i64);
                        fb.mul(acc, cv, "t")
                    }
                    BodyOp::XorElem => fb.xor(acc, x, "t"),
                    BodyOp::SubIv => fb.sub(acc, iv, "t"),
                };
            }
            fb.store(acc, p);
            vec![acc]
        },
    );
    fb.store(finals[0], out);
    fb.ret();
    fb.finish()
}

fn outputs(f: &Function, data: &[i64]) -> (Vec<i64>, Vec<i64>) {
    let mut mem = SparseMemory::new();
    mem.write_i64_slice(0x1000, data);
    run_function(
        f,
        &[RtVal::P(0x1000), RtVal::P(0x4000)],
        &mut mem,
        &mut NullObserver,
        5_000_000,
    )
    .expect("run");
    (
        mem.read_i64_slice(0x1000, data.len()),
        mem.read_i64_slice(0x4000, 1),
    )
}

/// Full unrolling of a constant-trip loop is semantics-preserving.
#[test]
fn unroll_preserves_semantics() {
    check_cases("unroll_preserves_semantics", 48, 0xA1, |g| {
        let trip = g.range_i64(1, 24);
        let init = g.range_i64(-100, 100);
        let body = gen_body(g, 1, 6);
        let data = gen_data(g);
        let f = build_loop_kernel(trip, init, &body);
        salam_ir::verify_function(&f).unwrap();
        let (want_mem, want_acc) = outputs(&f, &data);

        let mut unrolled = f.clone();
        let report = unroll_loops(&mut unrolled, 64);
        assert_eq!(report.unrolled, 1, "constant-trip loop must unroll");
        assert_eq!(report.iterations_emitted, trip as u64);
        run_default_pipeline(&mut unrolled);
        salam_ir::verify_function(&unrolled).unwrap();

        let (got_mem, got_acc) = outputs(&unrolled, &data);
        assert_eq!(got_mem, want_mem);
        assert_eq!(got_acc, want_acc);
    });
}

/// Partial unrolling by a divisor of the trip count preserves semantics
/// and keeps exactly one loop.
#[test]
fn partial_unroll_preserves_semantics() {
    check_cases("partial_unroll_preserves_semantics", 48, 0xA2, |g| {
        let groups = g.range_i64(2, 6);
        let factor = *g.choose(&[2u64, 3, 4]);
        let init = g.range_i64(-50, 50);
        let body = gen_body(g, 1, 5);
        let data = gen_data(g);
        let trip = groups * factor as i64;
        let f = build_loop_kernel(trip, init, &body);
        let (want_mem, want_acc) = outputs(&f, &data);

        let mut part = f.clone();
        let report = unroll_loops_by(&mut part, factor, 256);
        assert_eq!(report.unrolled, 1, "divisible loop must partially unroll");
        salam_ir::verify_function(&part).unwrap();

        // The loop survives, with `factor` copies of the load.
        let hist = part.opcode_histogram();
        assert_eq!(hist["load"] as u64, factor);
        assert!(hist.contains_key("phi"));

        let (got_mem, got_acc) = outputs(&part, &data);
        assert_eq!(got_mem, want_mem);
        assert_eq!(got_acc, want_acc);
    });
}

/// Non-divisible trip counts are left alone.
#[test]
fn partial_unroll_refuses_non_divisible() {
    check_cases("partial_unroll_refuses_non_divisible", 48, 0xA3, |g| {
        let body = gen_body(g, 1, 4);
        let mut f = build_loop_kernel(7, 0, &body);
        let report = unroll_loops_by(&mut f, 3, 256);
        assert_eq!(report.unrolled, 0);
        salam_ir::verify_function(&f).unwrap();
    });
}

/// After a full unroll + cleanup, no loops remain.
#[test]
fn unrolled_function_is_loop_free() {
    check_cases("unrolled_function_is_loop_free", 48, 0xA4, |g| {
        let trip = g.range_i64(1, 16);
        let body = gen_body(g, 1, 4);
        let mut f = build_loop_kernel(trip, 0, &body);
        unroll_loops(&mut f, 64);
        run_default_pipeline(&mut f);
        let cfg = salam_ir::analysis::Cfg::new(&f);
        let dom = salam_ir::analysis::DomTree::new(&f, &cfg);
        let loops = salam_ir::analysis::find_natural_loops(&f, &cfg, &dom);
        assert!(loops.is_empty(), "found {} residual loops", loops.len());
        assert!(!f.opcode_histogram().contains_key("phi"));
    });
}
