//! Property tests: loop unrolling plus the default pipeline preserve the
//! semantics of randomly generated counted loops.

use proptest::prelude::*;

use salam_ir::interp::{run_function, NullObserver, RtVal, SparseMemory};
use salam_ir::passes::{run_default_pipeline, unroll_loops, unroll_loops_by};
use salam_ir::{Function, FunctionBuilder, Type};

/// Body operations applied per iteration to `a[i]` and an accumulator.
#[derive(Debug, Clone, Copy)]
enum BodyOp {
    AddElem,
    MulByConst(i8),
    XorElem,
    SubIv,
}

fn body_strategy() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        Just(BodyOp::AddElem),
        any::<i8>().prop_map(BodyOp::MulByConst),
        Just(BodyOp::XorElem),
        Just(BodyOp::SubIv),
    ]
}

/// Builds: `acc = init; for i in 0..trip { x = a[i]; acc = f(acc, x, i);
/// a[i] = acc } ; out[0] = acc`.
fn build_loop_kernel(trip: i64, init: i64, body: &[BodyOp]) -> Function {
    let mut fb = FunctionBuilder::new("k", &[("a", Type::Ptr), ("out", Type::Ptr)]);
    let a = fb.arg(0);
    let out = fb.arg(1);
    let zero = fb.i64c(0);
    let tripv = fb.i64c(trip);
    let initv = fb.i64c(init);
    let finals = fb.counted_loop_accs(
        "i",
        zero,
        tripv,
        1,
        &[(Type::I64, initv)],
        |fb, iv, accs| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            let x = fb.load(Type::I64, p, "x");
            let mut acc = accs[0];
            for op in body {
                acc = match *op {
                    BodyOp::AddElem => fb.add(acc, x, "t"),
                    BodyOp::MulByConst(c) => {
                        let cv = fb.i64c(c as i64);
                        fb.mul(acc, cv, "t")
                    }
                    BodyOp::XorElem => fb.xor(acc, x, "t"),
                    BodyOp::SubIv => fb.sub(acc, iv, "t"),
                };
            }
            fb.store(acc, p);
            vec![acc]
        },
    );
    fb.store(finals[0], out);
    fb.ret();
    fb.finish()
}

fn outputs(f: &Function, data: &[i64]) -> (Vec<i64>, Vec<i64>) {
    let mut mem = SparseMemory::new();
    mem.write_i64_slice(0x1000, data);
    run_function(f, &[RtVal::P(0x1000), RtVal::P(0x4000)], &mut mem, &mut NullObserver, 5_000_000)
        .expect("run");
    (mem.read_i64_slice(0x1000, data.len()), mem.read_i64_slice(0x4000, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full unrolling of a constant-trip loop is semantics-preserving.
    #[test]
    fn unroll_preserves_semantics(
        trip in 1i64..24,
        init in -100i64..100,
        body in prop::collection::vec(body_strategy(), 1..6),
        data in prop::collection::vec(-1000i64..1000, 24..32),
    ) {
        let f = build_loop_kernel(trip, init, &body);
        salam_ir::verify_function(&f).unwrap();
        let (want_mem, want_acc) = outputs(&f, &data);

        let mut g = f.clone();
        let report = unroll_loops(&mut g, 64);
        prop_assert_eq!(report.unrolled, 1, "constant-trip loop must unroll");
        prop_assert_eq!(report.iterations_emitted, trip as u64);
        run_default_pipeline(&mut g);
        salam_ir::verify_function(&g).unwrap();

        let (got_mem, got_acc) = outputs(&g, &data);
        prop_assert_eq!(got_mem, want_mem);
        prop_assert_eq!(got_acc, want_acc);
    }

    /// Partial unrolling by a divisor of the trip count preserves semantics
    /// and keeps exactly one loop.
    #[test]
    fn partial_unroll_preserves_semantics(
        groups in 2i64..6,
        factor in prop::sample::select(vec![2u64, 3, 4]),
        init in -50i64..50,
        body in prop::collection::vec(body_strategy(), 1..5),
        data in prop::collection::vec(-1000i64..1000, 24..32),
    ) {
        let trip = groups * factor as i64;
        let f = build_loop_kernel(trip, init, &body);
        let (want_mem, want_acc) = outputs(&f, &data);

        let mut g = f.clone();
        let report = unroll_loops_by(&mut g, factor, 256);
        prop_assert_eq!(report.unrolled, 1, "divisible loop must partially unroll");
        salam_ir::verify_function(&g).unwrap();

        // The loop survives, with `factor` copies of the load.
        let hist = g.opcode_histogram();
        prop_assert_eq!(hist["load"] as u64, factor);
        prop_assert!(hist.contains_key("phi"));

        let (got_mem, got_acc) = outputs(&g, &data);
        prop_assert_eq!(got_mem, want_mem);
        prop_assert_eq!(got_acc, want_acc);
    }

    /// Non-divisible trip counts are left alone.
    #[test]
    fn partial_unroll_refuses_non_divisible(
        body in prop::collection::vec(body_strategy(), 1..4),
    ) {
        let mut f = build_loop_kernel(7, 0, &body);
        let report = unroll_loops_by(&mut f, 3, 256);
        prop_assert_eq!(report.unrolled, 0);
        salam_ir::verify_function(&f).unwrap();
    }

    /// After a full unroll + cleanup, no loops remain.
    #[test]
    fn unrolled_function_is_loop_free(
        trip in 1i64..16,
        body in prop::collection::vec(body_strategy(), 1..4),
    ) {
        let mut f = build_loop_kernel(trip, 0, &body);
        unroll_loops(&mut f, 64);
        run_default_pipeline(&mut f);
        let cfg = salam_ir::analysis::Cfg::new(&f);
        let dom = salam_ir::analysis::DomTree::new(&f, &cfg);
        let loops = salam_ir::analysis::find_natural_loops(&f, &cfg, &dom);
        prop_assert!(loops.is_empty(), "found {} residual loops", loops.len());
        prop_assert!(!f.opcode_histogram().contains_key("phi"));
    }
}
