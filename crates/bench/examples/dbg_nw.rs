use hw_profile::HardwareProfile;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::{FunctionBuilder, Type};
use salam_runtime::{Engine, EngineConfig, SimpleMem};

fn main() {
    // for i in 1..n: a[i] = a[i-1] + 1  — strict distance-1 memory recurrence.
    let mut fb = FunctionBuilder::new("chain", &[("a", Type::Ptr), ("n", Type::I64)]);
    let a = fb.arg(0);
    let n = fb.arg(1);
    let one = fb.i64c(1);
    fb.counted_loop("i", one, n, |fb, iv| {
        let onec = fb.i64c(1);
        let im1 = fb.sub(iv, onec, "im1");
        let pprev = fb.gep1(Type::I64, a, im1, "pprev");
        let prev = fb.load(Type::I64, pprev, "prev");
        let next = fb.add(prev, onec, "next");
        let pcur = fb.gep1(Type::I64, a, iv, "pcur");
        fb.store(next, pcur);
    });
    fb.ret();
    let f = fb.finish();
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
    let mut mem = SimpleMem::new(2, 2, 2);
    mem.memory_mut().write_i64_slice(0x100, &[7]);
    let mut e = Engine::new(
        f,
        cdfg,
        profile,
        EngineConfig::default(),
        vec![RtVal::P(0x100), RtVal::I(64)],
    );
    let cycles = e.run_to_completion(&mut mem);
    let vals = mem.memory_mut().read_i64_slice(0x100, 64);
    println!(
        "cycles={} per-iter={:.2} first={:?} last={:?}",
        cycles,
        cycles as f64 / 63.0,
        &vals[..3],
        &vals[61..]
    );
}
