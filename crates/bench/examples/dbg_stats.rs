use salam::standalone::{run_kernel, StandaloneConfig};

fn main() {
    for (name, k) in [
        ("fft", machsuite::Bench::FftStrided.build_standard()),
        ("mdknn", machsuite::Bench::MdKnn.build_standard()),
        ("stencil2d", machsuite::Bench::Stencil2d.build_standard()),
    ] {
        let cfg = StandaloneConfig {
            spm_latency: 2,
            ..StandaloneConfig::default()
        };
        let r = run_kernel(&k, &cfg);
        let st = &r.stats;
        println!(
            "== {name}: cycles={} exec={} stall={} port_reject={}",
            st.cycles, st.new_exec_cycles, st.stall_cycles, st.port_reject_cycles
        );
        println!("   issued: {:?}", st.issued);
        println!("   stall breakdown: {:?}", st.stall_breakdown);
    }
}
