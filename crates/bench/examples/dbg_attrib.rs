use salam::standalone::{run_kernel, StandaloneConfig};

fn main() {
    for bench in machsuite::Bench::ALL {
        let k = bench.build_standard();
        let cfg = StandaloneConfig::default();
        let r = run_kernel(&k, &cfg);
        let st = &r.stats;
        println!(
            "{:12} cycles={:8} attrib={:?}",
            format!("{bench:?}"),
            st.cycles,
            st.attribution,
        );
    }
}
