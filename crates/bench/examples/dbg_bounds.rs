use salam::standalone::{try_run_kernel, StandaloneConfig};
use salam_cdfg::StaticCdfg;
use salam_verify::{profile_memdeps, static_lower_bound, BoundConfig};

fn main() {
    for bench in machsuite::Bench::ALL {
        let k = bench.build_standard();
        let cfg = StandaloneConfig::default();
        let cdfg = StaticCdfg::elaborate(&k.func, &cfg.profile, &cfg.constraints);
        let (prof, _) = profile_memdeps(&k.func, &k.args, &k.init);
        let trips = prof.block_entries.clone();
        let b = static_lower_bound(
            &k.func,
            &cdfg,
            &trips,
            &BoundConfig {
                read_ports: cfg.spm_read_ports,
                write_ports: cfg.spm_write_ports,
                pipelined_fus: cfg.engine.pipelined_fus,
                reservation_entries: cfg.engine.reservation_entries,
            },
        );
        let dyn_cycles = try_run_kernel(&k, &cfg).map(|r| r.cycles).unwrap_or(0);
        println!(
            "{:12} dyn={:8} bound={:8} chain={:8} fu={:?} mem={:?} gap={:.2}x",
            format!("{bench:?}"),
            dyn_cycles,
            b.lower_bound,
            b.chain_floor,
            b.fu_floor,
            b.mem_floor,
            dyn_cycles as f64 / b.lower_bound.max(1) as f64
        );
    }
}
