fn main() {
    for (name, k) in [
        ("mdgrid", machsuite::Bench::MdGrid.build_standard()),
        ("fft", machsuite::Bench::FftStrided.build_standard()),
        ("nw", machsuite::Bench::Nw.build_standard()),
    ] {
        let (_, deps) = salam_hls::profile_memdeps(&k.func, &k.args, &k.init);
        let mut dists: Vec<u64> = deps.by_header_distances();
        dists.sort();
        dists.dedup();
        println!("{name}: distances {:?}", dists);
    }
}
