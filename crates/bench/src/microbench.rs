//! A plain `std::time::Instant` micro-benchmark harness.
//!
//! The workspace builds with zero crates.io dependencies, so the Criterion
//! benches were rewritten on this ~60-line loop: warm up, calibrate an
//! iteration count to a target wall time, report mean ns/iter. The
//! `benches/*.rs` targets are `harness = false` binaries that call
//! [`run`] per case and print one line each — good enough to rank hot-path
//! changes and to guard the no-op-tracing overhead bound.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Iterations executed during the timed window.
    pub iters: u64,
    /// Total wall time of the timed window.
    pub total: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }

    /// Iterations (or elements, when scaled by the caller) per second.
    pub fn per_sec(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.iters as f64 / self.total.as_secs_f64()
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times `f`, printing one `name  <time>/iter  (<iters> iters)` line.
///
/// Warm-up runs are discarded, then the iteration count is scaled so the
/// measured region lasts at least `TARGET`.
pub fn run<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    const TARGET: Duration = Duration::from_millis(300);
    const MAX_ITERS: u64 = 1 << 20;

    // Warm-up + initial estimate.
    let start = Instant::now();
    black_box(f());
    let mut per_iter = start.elapsed().max(Duration::from_nanos(1));
    for _ in 0..2 {
        let s = Instant::now();
        black_box(f());
        per_iter = per_iter.min(s.elapsed().max(Duration::from_nanos(1)));
    }

    let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let m = Measurement {
        name: name.to_string(),
        iters,
        total,
    };
    println!(
        "{:<44} {:>12}/iter   ({} iters)",
        m.name,
        fmt_ns(m.ns_per_iter()),
        m.iters
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut x = 0u64;
        let m = run("noop_loop", || {
            x = x.wrapping_add(1);
            x
        });
        assert!(m.iters >= 1);
        assert!(m.ns_per_iter() >= 0.0);
        assert!(m.per_sec() > 0.0);
    }
}
