//! Shared bottleneck-report machinery: profiled runs (cycle attribution +
//! dynamic critical path) and the deterministic table / CSV / JSON / diff
//! renderers behind the `salam_report` binary and the profiling
//! integration tests.
//!
//! Every renderer draws from one ordered [`Summary`], so all formats — and
//! the diff — agree byte for byte across repeat runs of the same
//! configuration (no wall-clock, no hash-map iteration order).

use machsuite::{Bench, BuiltKernel};
use salam::standalone::{run_kernel_profiled, StandaloneConfig};
use salam::RunReport;
use salam_obs::{analyze, CritPath, CycleClass, DepStream};

use crate::table::Table;

/// One kernel run with profiling on: the ordinary report plus the recorded
/// dependency stream and its critical-path analysis.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// The standard run report (attribution lives in `report.stats`).
    pub report: RunReport,
    /// The raw producer→consumer record.
    pub depstream: DepStream,
    /// Critical path, per-op slack, per-class headroom.
    pub critpath: CritPath,
}

/// Runs `kernel` with dependency-stream recording and analyzes the result.
pub fn profile(kernel: &BuiltKernel, cfg: &StandaloneConfig) -> ProfiledRun {
    let (report, depstream) = run_kernel_profiled(kernel, cfg);
    let critpath = analyze(&depstream);
    ProfiledRun {
        report,
        depstream,
        critpath,
    }
}

/// Re-schedules `kernel` analytically at `cfg` — recording once at the
/// replay baseline, then list-scheduling the captured dependence stream —
/// and wraps the synthesized report as a [`ProfiledRun`]. This is the
/// replayed side of `salam_report --diff replay`; the critical path is
/// analyzed over the recorded baseline stream (the DAG replay
/// re-schedules).
///
/// # Errors
///
/// A message when recording fails or the replay is rejected (scheduler
/// error, or a cycle count below the static lower bound).
pub fn replay_profile(kernel: &BuiltKernel, cfg: &StandaloneConfig) -> Result<ProfiledRun, String> {
    let (report, trace) = salam_dse::replay_one(kernel, cfg)?;
    let critpath = analyze(&trace);
    Ok(ProfiledRun {
        report,
        depstream: trace,
        critpath,
    })
}

/// Resolves a MachSuite benchmark from its lowercase sweep id (`gemm`,
/// `spmv`, `md-grid`, ...) — the same ids `salam_dse::KernelSpec::bench`
/// uses.
pub fn bench_by_id(id: &str) -> Option<Bench> {
    Bench::ALL
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(id))
}

/// Checks the accounting invariants the profiling subsystem guarantees:
/// attribution buckets sum exactly to total engine cycles, and the critical
/// path never exceeds the run. Returns the first violation as an error.
pub fn check_invariants(run: &ProfiledRun) -> Result<(), String> {
    let cycles = run.report.stats.cycles;
    let attributed = run.report.stats.attribution.total();
    if attributed != cycles {
        return Err(format!(
            "attribution buckets sum to {attributed} but the engine ran {cycles} cycles"
        ));
    }
    if run.critpath.length > cycles {
        return Err(format!(
            "critical path spans {} cycles, more than the {cycles}-cycle run",
            run.critpath.length
        ));
    }
    Ok(())
}

/// The flat, ordered metric view all formats render from.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Kernel name.
    pub name: String,
    /// Verification outcome.
    pub verified: bool,
    /// Label of the attribution class with the most cycles.
    pub dominant: &'static str,
    /// `(metric, value)` in fixed report order.
    pub metrics: Vec<(String, f64)>,
}

/// Flattens a profiled run into its deterministic metric list.
pub fn summarize(run: &ProfiledRun) -> Summary {
    let st = &run.report.stats;
    let cp = &run.critpath;
    let mut metrics: Vec<(String, f64)> = vec![("cycles".into(), st.cycles as f64)];
    for (class, n) in st.attribution.iter() {
        metrics.push((format!("attr.{}", class.label()), n as f64));
    }
    metrics.push(("critpath.length".into(), cp.length as f64));
    metrics.push(("critpath.ops".into(), cp.path.len() as f64));
    metrics.push(("critpath.zero_slack_ops".into(), cp.zero_slack_ops as f64));
    for (class, n) in &cp.headroom {
        metrics.push((format!("headroom.{class}"), *n as f64));
    }
    for (cause, n) in &st.reject_causes {
        metrics.push((format!("reject.{cause}"), *n as f64));
    }
    metrics.push(("power_mw".into(), run.report.power.total_mw()));
    metrics.push(("area_um2".into(), run.report.total_area_um2()));
    Summary {
        name: run.report.name.clone(),
        verified: run.report.verified,
        dominant: st.attribution.dominant().label(),
        metrics,
    }
}

/// Formats a metric value: counts print as integers, everything else with
/// three decimals — stable across runs.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Aligned plain-text report: attribution with percentages, critical-path
/// figures, headroom ranking, reject causes.
pub fn render_table(run: &ProfiledRun) -> String {
    let s = summarize(run);
    let cycles = run.report.stats.cycles.max(1) as f64;
    let mut t = Table::new(
        &format!("{} bottleneck report (dominant: {})", s.name, s.dominant),
        &["metric", "value", "share"],
    );
    for (k, v) in &s.metrics {
        let share = if k.starts_with("attr.") || k == "critpath.length" {
            format!("{:.1}%", v / cycles * 100.0)
        } else {
            String::new()
        };
        t.row(vec![k.clone(), fmt_value(*v), share]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "verified: {}\n",
        if s.verified { "yes" } else { "no" }
    ));
    out
}

/// `metric,value` CSV, one run per file.
pub fn render_csv(run: &ProfiledRun) -> String {
    let s = summarize(run);
    let mut out = String::from("metric,value\n");
    out.push_str(&format!("name,{}\n", s.name));
    out.push_str(&format!(
        "verified,{}\n",
        if s.verified { "yes" } else { "no" }
    ));
    out.push_str(&format!("dominant_bottleneck,{}\n", s.dominant));
    for (k, v) in &s.metrics {
        out.push_str(&format!("{k},{}\n", fmt_value(*v)));
    }
    out
}

/// A single JSON object mirroring the summary; keys appear in report order.
pub fn render_json(run: &ProfiledRun) -> String {
    let s = summarize(run);
    let mut out = String::from("{");
    out.push_str(&format!("\"name\": \"{}\", ", s.name));
    out.push_str(&format!("\"verified\": {}, ", s.verified));
    out.push_str(&format!("\"dominant_bottleneck\": \"{}\", ", s.dominant));
    out.push_str("\"metrics\": {");
    for (i, (k, v)) in s.metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{k}\": {}", fmt_value(*v)));
    }
    out.push_str("}}");
    out.push('\n');
    out
}

/// Side-by-side diff of two profiled runs (metric, a, b, delta). Metrics
/// present in only one run show a blank on the other side.
pub fn render_diff(a: &ProfiledRun, b: &ProfiledRun) -> String {
    let (sa, sb) = (summarize(a), summarize(b));
    let mut t = Table::new(
        &format!("bottleneck diff: {} vs {}", sa.name, sb.name),
        &["metric", "a", "b", "delta"],
    );
    t.row(vec![
        "dominant_bottleneck".into(),
        sa.dominant.into(),
        sb.dominant.into(),
        if sa.dominant == sb.dominant { "" } else { "!" }.into(),
    ]);
    // Union of metric keys, a's order first, then b-only keys in b order.
    let mut keys: Vec<&str> = sa.metrics.iter().map(|(k, _)| k.as_str()).collect();
    for (k, _) in &sb.metrics {
        if !keys.contains(&k.as_str()) {
            keys.push(k);
        }
    }
    let find = |s: &Summary, key: &str| -> Option<f64> {
        s.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    };
    for key in keys {
        let (va, vb) = (find(&sa, key), find(&sb, key));
        let delta = match (va, vb) {
            (Some(x), Some(y)) => {
                let d = y - x;
                if d == 0.0 {
                    String::new()
                } else {
                    format!("{}{}", if d > 0.0 { "+" } else { "" }, fmt_value(d))
                }
            }
            _ => String::new(),
        };
        t.row(vec![
            key.to_string(),
            va.map(fmt_value).unwrap_or_default(),
            vb.map(fmt_value).unwrap_or_default(),
            delta,
        ]);
    }
    t.render()
}

/// The per-class attribution line used by sweep tables: the dominant class
/// label, e.g. `mem_port`. Kept here so every binary prints the same
/// spelling the JSON reports use.
pub fn dominant_label(report: &RunReport) -> &'static str {
    report.stats.attribution.dominant().label()
}

/// All attribution labels in report order (column sets, CSV headers).
pub fn class_labels() -> impl Iterator<Item = &'static str> {
    CycleClass::ALL.into_iter().map(CycleClass::label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_run() -> ProfiledRun {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        profile(&k, &StandaloneConfig::default())
    }

    #[test]
    fn invariants_hold_on_a_real_kernel() {
        let run = gemm_run();
        check_invariants(&run).unwrap();
        assert!(run.report.verified);
        assert!(!run.depstream.is_empty());
        assert!(!run.critpath.path.is_empty());
    }

    #[test]
    fn renders_are_deterministic_across_repeat_runs() {
        let (a, b) = (gemm_run(), gemm_run());
        assert_eq!(render_table(&a), render_table(&b));
        assert_eq!(render_csv(&a), render_csv(&b));
        assert_eq!(render_json(&a), render_json(&b));
    }

    #[test]
    fn diff_flags_changed_metrics() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let fast = profile(&k, &StandaloneConfig::default());
        let slow_cfg = StandaloneConfig {
            spm_latency: 16,
            ..StandaloneConfig::default()
        };
        let slow = profile(&k, &slow_cfg);
        let d = render_diff(&fast, &slow);
        assert!(d.contains("cycles"));
        assert!(d.contains('+'), "cycles must rise with one port:\n{d}");
        // Diff of a run against itself shows no deltas.
        let same = render_diff(&fast, &fast);
        for line in same.lines().skip(3) {
            assert!(
                !line.contains('+') && !line.contains('!'),
                "unexpected delta in self-diff line: {line}"
            );
        }
    }

    #[test]
    fn replay_profile_diffs_cleanly_against_simulation() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let cfg = StandaloneConfig {
            spm_read_ports: 1,
            spm_write_ports: 1,
            ..StandaloneConfig::default()
        };
        let sim = profile(&k, &cfg);
        let rep = replay_profile(&k, &cfg).expect("replay accepted");
        // Replay is cycle-exact on port axes, so the attribution delta per
        // bottleneck class is zero — exactly what the diff must show.
        assert_eq!(rep.report.cycles, sim.report.cycles);
        assert_eq!(
            rep.report.stats.attribution.total(),
            rep.report.cycles,
            "replayed attribution stays a full partition"
        );
        let d = render_diff(&sim, &rep);
        assert!(d.contains("attr."));
        for line in d.lines().filter(|l| l.contains("attr.")) {
            assert!(
                !line.contains('+'),
                "attribution delta must be zero for an exact replay: {line}"
            );
        }
    }

    #[test]
    fn bench_ids_resolve() {
        assert_eq!(bench_by_id("gemm"), Some(Bench::GemmNcubed));
        assert_eq!(bench_by_id("md-grid"), Some(Bench::MdGrid));
        assert_eq!(bench_by_id("nope"), None);
        assert_eq!(class_labels().count(), 6);
    }
}
