//! Table IV — simulator setup and runtime execution timing: the Aladdin
//! trace flow vs. the gem5-SALAM flow, per benchmark (wall-clock).
//!
//! Run with `--release` for meaningful ratios.

use machsuite::Bench;
use salam_aladdin::AladdinMemModel;
use salam_bench::runners::{aladdin_run, salam_timed, StandaloneConfig};
use salam_bench::table::Table;

fn main() {
    let mut t = Table::new(
        "Table IV: setup + simulation wall-clock",
        &[
            "bench",
            "ala trace-gen",
            "ala sim",
            "ala trace KB",
            "salam compile",
            "salam sim",
            "prep speedup",
            "sim speedup",
        ],
    );
    let mut prep_speedups = Vec::new();
    let mut sim_speedups = Vec::new();
    for bench in Bench::ALL {
        let k = bench.build_standard();
        let ala = aladdin_run(&k, &AladdinMemModel::default_spm());
        let sal = salam_timed(&k, &StandaloneConfig::default());
        let prep = ala.trace_gen.as_secs_f64() / sal.preprocess.as_secs_f64().max(1e-9);
        let sim = ala.simulation.as_secs_f64() / sal.simulation.as_secs_f64().max(1e-9);
        prep_speedups.push(prep);
        sim_speedups.push(sim);
        t.row(vec![
            bench.label().into(),
            format!("{:.2?}", ala.trace_gen),
            format!("{:.2?}", ala.simulation),
            format!("{}", ala.trace_len * 16 / 1024),
            format!("{:.2?}", sal.preprocess),
            format!("{:.2?}", sal.simulation),
            format!("{prep:.1}x"),
            format!("{sim:.1}x"),
        ]);
    }
    println!("{}", t.render_auto());
    let gmean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "geometric-mean speedup: preprocessing {:.0}x, simulation {:.1}x  (paper avg: 123x / 697x)",
        gmean(&prep_speedups),
        gmean(&sim_speedups)
    );
    println!(
        "\nNote: the preprocessing advantage reproduces directly. The paper's 697x\n\
         simulation speedup measures gem5-Aladdin's trace-I/O and DDDG-building\n\
         overheads; our from-scratch Aladdin baseline has none of those, so both\n\
         simulators here run at comparable speed. The structural advantage that\n\
         remains is memory: Aladdin must materialize the whole dynamic trace\n\
         (column 'ala trace KB'), while the SALAM engine holds only its fixed\n\
         reservation window (~tens of KB regardless of trace length)."
    );
}
