//! `salam_serve` — the multi-tenant simulation server.
//!
//! Hosts the whole simulation stack behind `salam-serve`'s line-JSON/HTTP
//! listener and runs until a client sends the `shutdown` op (or
//! `POST /shutdown`). Prints one `salam_serve: listening on ADDR` line once
//! the socket is bound, so scripts can wait for readiness, and one final
//! `salam_serve: STATS` line on exit.
//!
//! ```text
//! salam_serve [--addr HOST:PORT] [--slots N] [--chunk N]
//!             [--cache-dir PATH] [--no-cache] [--no-verify]
//!             [--max-queued N] [--max-running N] [--max-sweep-points N]
//!             [--metrics-out PATH] [--bench-out PATH] [--no-telemetry]
//!             [--journal PATH] [--retries N] [--max-pending N]
//!             [--degrade-pressure N] [--io-timeout-ms N] [--no-breaker]
//!             [--chaos] [--chaos-panics N]
//! ```
//!
//! `--metrics-out` writes the final metrics registry JSON on shutdown;
//! `--bench-out` writes the per-class latency percentile summary
//! (`ServeCore::latency_summary_json`). `--no-telemetry` disables the
//! request-scoped tracing / histogram / flight-recorder layer.
//!
//! Resilience (PR 9): `--journal PATH` makes admissions crash-safe — on
//! restart with the same path, jobs admitted but not yet terminal are
//! re-admitted exactly once. `--chaos` enables the `__chaos-panic`
//! fault-injection bench and `--chaos-panics N` arms N injected worker
//! panics (both are for the chaos harness; never use them in production).

use salam_bench::cli::Args;
use salam_serve::{ServeConfig, Server, TenantQuota};

const USAGE: &str = "[--addr HOST:PORT] [--slots N] [--chunk N]\n\
     \x20           [--cache-dir PATH] [--no-cache] [--no-verify]\n\
     \x20           [--max-queued N] [--max-running N] [--max-sweep-points N]\n\
     \x20           [--metrics-out PATH] [--bench-out PATH] [--no-telemetry]\n\
     \x20           [--journal PATH] [--retries N] [--max-pending N]\n\
     \x20           [--degrade-pressure N] [--io-timeout-ms N] [--no-breaker]\n\
     \x20           [--chaos] [--chaos-panics N]";

fn main() {
    let mut args = Args::parse("salam_serve", USAGE);
    let addr = args
        .opt("--addr")
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let mut quota = TenantQuota::default();
    if let Some(n) = args.opt_u64("--max-queued") {
        quota.max_queued = n as usize;
    }
    if let Some(n) = args.opt_u64("--max-running") {
        quota.max_running = n as usize;
    }
    if let Some(n) = args.opt_u64("--max-sweep-points") {
        quota.max_sweep_points = n as usize;
    }
    let mut cfg = ServeConfig {
        quota,
        no_cache: args.flag("--no-cache"),
        verify: !args.flag("--no-verify"),
        telemetry: !args.flag("--no-telemetry"),
        cache_dir: args.opt("--cache-dir").map(Into::into),
        journal: args.opt("--journal").map(Into::into),
        chaos: args.flag("--chaos"),
        ..ServeConfig::default()
    };
    if args.flag("--no-breaker") {
        cfg.breaker = None;
    }
    if let Some(n) = args.opt_u64("--slots") {
        cfg.slots = (n as usize).max(1);
    }
    if let Some(n) = args.opt_u64("--chunk") {
        cfg.sweep_chunk = (n as usize).max(1);
    }
    if let Some(n) = args.opt_u64("--retries") {
        cfg.retries = n as u32;
    }
    if let Some(n) = args.opt_u64("--max-pending") {
        cfg.max_pending = n as usize;
    }
    if let Some(n) = args.opt_u64("--degrade-pressure") {
        cfg.degrade_pressure = n as usize;
    }
    if let Some(n) = args.opt_u64("--io-timeout-ms") {
        cfg.io_timeout_ms = n;
    }
    let chaos_panics = args.opt_u64("--chaos-panics");
    let metrics_out = args.opt("--metrics-out");
    let bench_out = args.opt("--bench-out");
    if !args.finish().is_empty() {
        eprintln!("salam_serve: takes no positional arguments");
        std::process::exit(salam_bench::cli::EXIT_USAGE);
    }

    let server = match Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("salam_serve: cannot bind {addr}: {e}");
            std::process::exit(salam_bench::cli::EXIT_FINDINGS);
        }
    };
    if let Some(n) = chaos_panics {
        server.core().inject_panics(n);
    }
    println!("salam_serve: listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    while !server.stop_requested() {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    // Drain in-flight work before the final metrics snapshot, then tear
    // down the listener (idempotent with the drain).
    server.core().shutdown();
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, server.core().metrics().to_json()) {
            eprintln!("salam_serve: cannot write {path}: {e}");
        }
    }
    if let Some(path) = &bench_out {
        if let Err(e) = std::fs::write(path, server.core().latency_summary_json()) {
            eprintln!("salam_serve: cannot write {path}: {e}");
        }
    }
    println!("salam_serve: {}", server.core().stats_line());
    server.shutdown();
}
