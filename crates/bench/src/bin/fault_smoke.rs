//! A seeded fault-injection campaign over two MachSuite kernels.
//!
//! Runs each kernel once clean (the baseline), then once per campaign seed
//! with FU bit flips, memory bit flips/delays/drops and DMA-path jitter
//! armed, and classifies every run:
//!
//! * `masked`   — completed, output verified (the flip hit dead data or
//!   timing only);
//! * `sdc`      — completed, output wrong (silent data corruption);
//! * `deadlock` — the no-progress watchdog fired ([`salam::SimError::Deadlock`]),
//!   e.g. a dropped memory response;
//! * `detected` — the kernel itself faulted ([`salam::SimError::KernelFault`]).
//!
//! The campaign is bit-for-bit reproducible: same seeds, same table, every
//! run. CI executes it twice and diffs the output, then asserts on the
//! trailing `fault_smoke: …` marker line.

use machsuite::BuiltKernel;
use salam::standalone::{run_kernel, try_run_kernel_faulted, StandaloneConfig};
use salam::{FaultPlan, SimError};
use salam_dse::SweepTable;

/// The armed campaign plan for one seed. Seeds rotate through three fault
/// modes — data flips, timing jitter, response drops — so one small
/// campaign exercises every outcome class: a per-response drop probability
/// compounds over the thousands of responses in a run, so a plan that
/// mixes drops into every seed deadlocks everywhere and shows nothing
/// else.
fn campaign_plan(seed: u64) -> FaultPlan {
    let zero = FaultPlan::seeded(seed);
    match seed % 3 {
        0 => FaultPlan {
            fu_bitflip_rate: 0.02,
            mem_bitflip_rate: 0.004,
            ..zero
        },
        1 => FaultPlan {
            fu_jitter_rate: 0.02,
            fu_jitter_cycles: 4,
            mem_delay_rate: 0.01,
            mem_delay_cycles: 8,
            ..zero
        },
        _ => FaultPlan {
            mem_drop_rate: 0.001,
            ..zero
        },
    }
}

fn classify(result: &Result<salam::RunReport, SimError>) -> &'static str {
    match result {
        Ok(r) if r.verified => "masked",
        Ok(_) => "sdc",
        Err(SimError::Deadlock(_)) => "deadlock",
        Err(SimError::KernelFault { .. }) => "detected",
        Err(e) => panic!("campaign run stopped unexpectedly: {e}"),
    }
}

fn main() {
    let mut args = salam_bench::cli::Args::parse("fault_smoke", "[--json]");
    let json = args.flag("--json");
    if !args.finish().is_empty() {
        eprintln!("fault_smoke: takes no positional arguments");
        std::process::exit(salam_bench::cli::EXIT_USAGE);
    }
    let kernels: Vec<(&str, BuiltKernel)> = vec![
        (
            "gemm[n=8,u=2]",
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 }),
        ),
        ("spmv", machsuite::Bench::SpmvCrs.build_standard()),
    ];
    let seeds: Vec<u64> = (1..=12).collect();

    // A short watchdog fuse: a dropped response stops all progress, so the
    // campaign detects hangs in thousands of cycles instead of a million.
    let mut cfg = StandaloneConfig::default();
    cfg.engine.deadlock_cycles = 5_000;

    let mut t = SweepTable::new(
        "fault-injection campaign",
        &["kernel", "seed", "outcome", "cycles", "faults", "detail"],
    );
    let (mut masked, mut sdc, mut deadlock, mut detected) = (0u32, 0u32, 0u32, 0u32);
    for (name, kernel) in &kernels {
        let baseline = run_kernel(kernel, &cfg);
        t.row(vec![
            name.to_string(),
            "-".into(),
            "baseline".into(),
            baseline.cycles.to_string(),
            "0".into(),
            String::new(),
        ]);
        for &seed in &seeds {
            let result = try_run_kernel_faulted(kernel, &cfg, &campaign_plan(seed));
            let outcome = classify(&result);
            match outcome {
                "masked" => masked += 1,
                "sdc" => sdc += 1,
                "deadlock" => deadlock += 1,
                _ => detected += 1,
            }
            let (cycles, faults, detail) = match &result {
                Ok(r) => (
                    r.cycles.to_string(),
                    r.stats.total_faults().to_string(),
                    if r.cycles == baseline.cycles {
                        String::new()
                    } else {
                        format!(
                            "{:+} cycles vs baseline",
                            r.cycles as i64 - baseline.cycles as i64
                        )
                    },
                ),
                Err(SimError::Deadlock(snap)) => (
                    "-".into(),
                    "-".into(),
                    format!(
                        "no progress since cycle {} ({} outstanding mem)",
                        snap.last_progress_cycle, snap.mem_outstanding
                    ),
                ),
                Err(e) => ("-".into(), "-".into(), e.to_string()),
            };
            t.row(vec![
                name.to_string(),
                seed.to_string(),
                outcome.into(),
                cycles,
                faults,
                detail,
            ]);
        }
    }
    t.set_summary(vec![
        ("masked".into(), masked.to_string()),
        ("sdc".into(), sdc.to_string()),
        ("deadlock".into(), deadlock.to_string()),
        ("detected".into(), detected.to_string()),
    ]);
    if json {
        print!("{}", t.to_json());
    } else {
        println!("{}", t.render_auto());
    }
    // The stable marker CI asserts on — always the last line, in both
    // output modes.
    println!(
        "fault_smoke: kernels={} seeds={} masked={masked} sdc={sdc} deadlock={deadlock} detected={detected}",
        kernels.len(),
        seeds.len(),
    );
}
