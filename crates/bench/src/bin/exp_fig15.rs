//! Fig. 15 — GEMM memory/compute co-design exploration with the
//! floating-point adder pool fixed at 64 units.
//!
//! (a) stalls vs. new-execution per configuration; (b) memory-parallelism
//! mix vs. FP-multiplier occupancy; (c) scheduling-mix vs. execution time;
//! (d) scheduling-mix vs. power.

use hw_profile::FuKind;
use salam::standalone::{run_kernel, StandaloneConfig};

fn wide_window(mut cfg: StandaloneConfig) -> StandaloneConfig {
    cfg.engine.reservation_entries = 512;
    cfg
}
use salam_bench::table::Table;
use salam_cdfg::FuConstraints;

fn main() {
    let kernel = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 16 });

    let mut t = Table::new(
        "Fig 15: co-design sweep (FADD pool fixed at 64)",
        &[
            "fmul",
            "ports",
            "stall%",
            "exec%",
            "ld-only%",
            "st-only%",
            "ld+st%",
            "fmul-occ%",
            "float-sched%",
            "mem-sched%",
            "cycles",
            "power(mW)",
        ],
    );
    for fmul in [2u32, 4, 8, 16] {
        for ports in [4u32, 8, 16, 32, 64] {
            let constraints = FuConstraints::unconstrained()
                .with_limit(FuKind::FpAddF64, 64)
                .with_limit(FuKind::FpMulF64, fmul);
            let cfg = wide_window(
                StandaloneConfig::default()
                    .with_ports(ports)
                    .with_constraints(constraints),
            );
            let r = run_kernel(&kernel, &cfg);
            assert!(r.verified);
            let st = &r.stats;
            let total = st.cycles as f64;
            let execp = st.new_exec_cycles as f64 / total * 100.0;
            // Percentages are over all cycles, like the paper's per-cycle
            // scheduling-activity plots.
            let mix =
                |k: &str| st.mem_mix_cycles.get(k).copied().unwrap_or(0) as f64 / total * 100.0;
            let sched = |k: &str| {
                st.class_active_cycles.get(k).copied().unwrap_or(0) as f64 / total * 100.0
            };
            t.row(vec![
                fmul.to_string(),
                ports.to_string(),
                format!("{:.1}", st.stall_cycles as f64 / total * 100.0),
                format!("{execp:.1}"),
                format!("{:.1}", mix("load")),
                format!("{:.1}", mix("store")),
                format!("{:.1}", mix("load+store")),
                format!("{:.1}", st.fu_occupancy(FuKind::FpMulF64) * 100.0),
                format!("{:.1}", sched("float")),
                format!("{:.1}", sched("load") + sched("store")),
                st.cycles.to_string(),
                format!("{:.2}", r.power.total_mw()),
            ]);
        }
    }
    println!("{}", t.render_auto());
    println!(
        "(a)=stall/exec columns, (b)=memory-mix vs fmul occupancy,\n\
         (c)=scheduling mix vs cycles, (d)=scheduling mix vs power"
    );
}
