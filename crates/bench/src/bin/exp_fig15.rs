//! Fig. 15 — GEMM memory/compute co-design exploration with the
//! floating-point adder pool fixed at 64 units.
//!
//! (a) stalls vs. new-execution per configuration; (b) memory-parallelism
//! mix vs. FP-multiplier occupancy; (c) scheduling-mix vs. execution time;
//! (d) scheduling-mix vs. power.
//!
//! Runs on the DSE engine: `SALAM_JOBS` sets the worker count, and results
//! persist under `target/dse-cache/` (`SALAM_DSE_CACHE` overrides, and
//! `SALAM_DSE_NO_CACHE=1` disables), so a re-run after the first is served
//! entirely from the cache.

use hw_profile::FuKind;
use salam::standalone::StandaloneConfig;
use salam_bench::runners::wide_window;
use salam_cdfg::FuConstraints;
use salam_dse::{
    metrics_rollup, objectives, pareto_frontier, run_sweep, Axis, DseOptions, KernelSpec,
    SweepSpec, SweepTable,
};

fn main() {
    let base = wide_window(
        StandaloneConfig::default()
            .with_constraints(FuConstraints::unconstrained().with_limit(FuKind::FpAddF64, 64)),
    );
    let spec = SweepSpec::new("fig15", base)
        .kernel(KernelSpec::custom("gemm[n=16,u=16]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 16 })
        }))
        .axis(Axis::fu_limit(FuKind::FpMulF64, &[2, 4, 8, 16]).named("fmul"))
        .axis(Axis::spm_ports(&[4, 8, 16, 32, 64]));
    let points = spec.points();
    let run = run_sweep(&points, &DseOptions::default());

    let mut t = SweepTable::new(
        "Fig 15: co-design sweep (FADD pool fixed at 64)",
        &[
            "fmul",
            "ports",
            "stall%",
            "exec%",
            "ld-only%",
            "st-only%",
            "ld+st%",
            "fmul-occ%",
            "float-sched%",
            "mem-sched%",
            "cycles",
            "power(mW)",
            "dominant_bottleneck",
        ],
    );
    for (point, outcome) in points.iter().zip(&run.outcomes) {
        let r = outcome.expect_payload();
        assert!(r.verified);
        let st = &r.stats;
        let total = st.cycles as f64;
        let execp = st.new_exec_cycles as f64 / total * 100.0;
        // Percentages are over all cycles, like the paper's per-cycle
        // scheduling-activity plots.
        let mix = |k: &str| st.mem_mix_cycles.get(k).copied().unwrap_or(0) as f64 / total * 100.0;
        let sched =
            |k: &str| st.class_active_cycles.get(k).copied().unwrap_or(0) as f64 / total * 100.0;
        let mut row: Vec<String> = point.coords.iter().map(|(_, v)| v.clone()).collect();
        row.extend([
            format!("{:.1}", st.stall_cycles as f64 / total * 100.0),
            format!("{execp:.1}"),
            format!("{:.1}", mix("load")),
            format!("{:.1}", mix("store")),
            format!("{:.1}", mix("load+store")),
            format!("{:.1}", st.fu_occupancy(FuKind::FpMulF64) * 100.0),
            format!("{:.1}", sched("float")),
            format!("{:.1}", sched("load") + sched("store")),
            st.cycles.to_string(),
            format!("{:.2}", r.power.total_mw()),
            r.dominant_bottleneck().to_string(),
        ]);
        t.row(row);
    }
    println!("{}", t.render_auto());

    // The (cycles, area, power) Pareto frontier of the swept space.
    let objs: Vec<[f64; 3]> = run
        .outcomes
        .iter()
        .map(|o| objectives(o.expect_payload()))
        .collect();
    let frontier = pareto_frontier(&objs);
    let labels: Vec<String> = frontier
        .iter()
        .map(|&i| {
            format!(
                "{} [{}]",
                points[i].label(),
                run.outcomes[i].expect_payload().dominant_bottleneck()
            )
        })
        .collect();
    println!("pareto frontier (cycles/area/power): {}", labels.join(", "));

    let reg = metrics_rollup(
        &spec.name,
        points
            .iter()
            .zip(&run.outcomes)
            .map(|(p, o)| (p.label(), o.expect_payload())),
    );
    println!("metrics rollup: {} series exported", reg.len());
    println!("dse: {}", run.summary());
    println!(
        "(a)=stall/exec columns, (b)=memory-mix vs fmul occupancy,\n\
         (c)=scheduling mix vs cycles, (d)=scheduling mix vs power"
    );
}
