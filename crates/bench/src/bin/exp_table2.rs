//! Table II — Aladdin datapath vs. memory design.
//!
//! The GEMM trace is fixed, but scheduling it against different cache sizes
//! (and against a multi-ported SPM) changes data availability and therefore
//! the functional-unit counts Aladdin reverse-engineers. gem5-SALAM's
//! datapath is independent of the memory configuration.

use hw_profile::{FuKind, HardwareProfile};
use salam_aladdin::{derive_datapath, generate_trace, AladdinMemModel};
use salam_bench::table::Table;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::SparseMemory;

fn main() {
    let profile = HardwareProfile::default_40nm();
    // The paper uses fully-unrolled GEMM; a high unroll factor gives the
    // trace the same bursty parallelism at tractable scale.
    let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 16 });
    let mut mem = SparseMemory::new();
    k.load_into(&mut mem);
    let trace = generate_trace(&k.func, &k.args, &mut mem);

    let mut t = Table::new(
        "Table II: GEMM functional units vs memory design (Aladdin)",
        &["memory", "size", "FMUL", "FADD"],
    );
    for size in [256u64, 512, 1024, 2048, 4096, 8192, 16384] {
        let mm = AladdinMemModel::Cache {
            size_bytes: size,
            line_bytes: 64,
            hit_latency: 2,
            miss_latency: 40,
        };
        let dp = derive_datapath(&k.func, &trace, &profile, &mm);
        t.row(vec![
            "Cache".into(),
            format!("{size}B"),
            dp.fu_count(FuKind::FpMulF64).to_string(),
            dp.fu_count(FuKind::FpAddF64).to_string(),
        ]);
    }
    let dp = derive_datapath(
        &k.func,
        &trace,
        &profile,
        &AladdinMemModel::Spm {
            latency: 1,
            ports: 8,
        },
    );
    t.row(vec![
        "SPM".into(),
        "-".into(),
        dp.fu_count(FuKind::FpMulF64).to_string(),
        dp.fu_count(FuKind::FpAddF64).to_string(),
    ]);

    // SALAM's static datapath for reference: memory-invariant.
    let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
    t.row(vec![
        "gem5-SALAM (any)".into(),
        "-".into(),
        cdfg.fu_count(FuKind::FpMulF64).to_string(),
        cdfg.fu_count(FuKind::FpAddF64).to_string(),
    ]);

    println!("{}", t.render_auto());
    println!(
        "With a fixed kernel and dataset, Aladdin's allocation varies with the\n\
         memory hierarchy; SALAM's datapath is elaborated before memory timing\n\
         exists, so it cannot."
    );
}
