//! Fig. 11 — power validation: gem5-SALAM's profile-driven power estimate
//! vs. the gate-level netlist estimate (the Design Compiler stand-in).

use machsuite::Bench;
use salam_bench::runners::{profile_kernel, run_kernel, StandaloneConfig};
use salam_bench::table::{mean_abs_pct, pct_err, Table};
use salam_hls::estimate_netlist;

fn main() {
    let mut t = Table::new(
        "Fig 11: datapath power validation (mW)",
        &["bench", "gem5-SALAM", "netlist(DC)", "error%"],
    );
    let mut errors = Vec::new();
    // Stencil3D is excluded, as in the paper (where Design Compiler ran out
    // of memory during elaboration).
    for bench in Bench::ALL
        .into_iter()
        .filter(|b| !matches!(b, Bench::Stencil3d | Bench::Bfs))
    {
        let k = bench.build_standard();
        let r = run_kernel(&k, &StandaloneConfig::default());
        assert!(r.verified, "{} failed verification", k.name);
        // Datapath-only power (both tools see the datapath, not the SPM).
        let salam_mw = r.power.dynamic_fu_mw
            + r.power.dynamic_reg_mw
            + r.power.static_fu_mw
            + r.power.static_reg_mw;
        let (cdfg, obs) = profile_kernel(&k);
        let dc = estimate_netlist(&k.func, &cdfg, &obs, r.runtime_ns);
        let err = pct_err(salam_mw, dc.total_mw);
        errors.push(err);
        t.row(vec![
            bench.label().into(),
            format!("{salam_mw:.3}"),
            format!("{:.3}", dc.total_mw),
            format!("{err:+.2}"),
        ]);
    }
    println!("{}", t.render_auto());
    println!(
        "average |error|: {:.2}%  (paper: ~3.25%)",
        mean_abs_pct(&errors)
    );
}
