//! Fig. 10 — performance validation: gem5-SALAM cycle counts vs. the HLS
//! static-schedule reference, per benchmark.

use machsuite::Bench;
use salam_bench::runners::{hls_cycles_with, run_kernel, tuned_standalone};
use salam_bench::table::{mean_abs_pct, pct_err, Table};
use salam_cdfg::FuConstraints;
use salam_hls::HlsConfig;

fn main() {
    let mut t = Table::new(
        "Fig 10: performance validation (cycles)",
        &["bench", "gem5-SALAM", "HLS", "error%"],
    );
    let mut errors = Vec::new();
    // The paper's Fig. 10 shows 8 benchmarks; BFS's dynamic work queue has
    // no meaningful static schedule, as in the original evaluation.
    for bench in Bench::ALL.into_iter().filter(|b| *b != Bench::Bfs) {
        let k = bench.build_standard();
        // Both models see the same device config: 2-cycle 2R/2W memory and
        // the per-benchmark tuned reservation window.
        let salam_cfg = tuned_standalone(bench);
        let hls_cfg = HlsConfig {
            engine_window: salam_cfg.engine.reservation_entries,
            ..HlsConfig::default()
        };
        let salam = run_kernel(&k, &salam_cfg);
        assert!(salam.verified, "{} failed verification", k.name);
        let hls = hls_cycles_with(&k, &FuConstraints::unconstrained(), &hls_cfg);
        let err = pct_err(salam.cycles as f64, hls.cycles as f64);
        errors.push(err);
        t.row(vec![
            bench.label().into(),
            salam.cycles.to_string(),
            hls.cycles.to_string(),
            format!("{err:+.2}"),
        ]);
    }
    println!("{}", t.render_auto());
    println!(
        "average |error|: {:.2}%  (paper: ~1%)",
        mean_abs_pct(&errors)
    );
}
