//! Table I — Aladdin datapath vs. data-dependent execution.
//!
//! The SPMV-CRS kernel contains a guarded shift that only executes when a
//! matrix value falls in a trigger range. Dataset 1 never triggers it;
//! dataset 2 does. Aladdin's trace-derived datapath changes between the two
//! runs of the *same source code*; gem5-SALAM's static datapath does not.

use hw_profile::{FuKind, HardwareProfile};
use salam_aladdin::{derive_datapath, generate_trace, AladdinMemModel};
use salam_bench::table::Table;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::SparseMemory;

fn main() {
    let profile = HardwareProfile::default_40nm();
    let mut t = Table::new(
        "Table I: SPMV-CRS functional units vs dataset",
        &["simulator", "dataset", "FMUL", "FADD", "IntShifter"],
    );

    for (ds, trigger) in [(1, false), (2, true)] {
        let k = machsuite::spmv::build(&machsuite::spmv::Params {
            dataset_triggers_shift: trigger,
            ..machsuite::spmv::Params::default()
        });
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        let trace = generate_trace(&k.func, &k.args, &mut mem);
        let dp = derive_datapath(&k.func, &trace, &profile, &AladdinMemModel::default_spm());
        t.row(vec![
            "Aladdin".into(),
            ds.to_string(),
            dp.fu_count(FuKind::FpMulF64).to_string(),
            dp.fu_count(FuKind::FpAddF64).to_string(),
            dp.fu_count(FuKind::Shifter).to_string(),
        ]);
    }

    // SALAM's static datapath: identical for both datasets by construction.
    let k = machsuite::spmv::build(&machsuite::spmv::Params::default());
    let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
    for ds in [1, 2] {
        t.row(vec![
            "gem5-SALAM".into(),
            ds.to_string(),
            cdfg.fu_count(FuKind::FpMulF64).to_string(),
            cdfg.fu_count(FuKind::FpAddF64).to_string(),
            cdfg.fu_count(FuKind::Shifter).to_string(),
        ]);
    }

    println!("{}", t.render_auto());
    println!(
        "Aladdin's datapath changes with input data (shifter appears only when\n\
         the dataset exercises it); SALAM's static elaboration is data-invariant."
    );
}
