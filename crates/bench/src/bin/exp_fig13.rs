//! Fig. 13 — GEMM design-space Pareto curve: accelerator power vs.
//! execution time across functional-unit allocations and memory bandwidth.
//!
//! Three series match the paper's legend: datapath only, datapath + SPM,
//! datapath + cache-class memory (modeled as a longer-latency, narrower
//! memory interface).

use hw_profile::FuKind;
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_bench::runners::wide_window;
use salam_bench::table::Table;
use salam_cdfg::FuConstraints;

fn main() {
    let kernel = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 16 });
    let fu_limits = [1u32, 2, 4, 8, 16];
    let ports = [1u32, 2, 4, 8, 16, 32, 64];

    let mut t = Table::new(
        "Fig 13: GEMM Pareto sweep (execution time vs power)",
        &[
            "series",
            "fmul/fadd limit",
            "ports",
            "time(us)",
            "power(mW)",
        ],
    );
    for &fu in &fu_limits {
        for &p in &ports {
            let constraints = FuConstraints::unconstrained()
                .with_limit(FuKind::FpMulF64, fu)
                .with_limit(FuKind::FpAddF64, fu);
            // Datapath + SPM.
            let cfg = wide_window(
                StandaloneConfig::default()
                    .with_ports(p)
                    .with_constraints(constraints.clone()),
            );
            let r = run_kernel(&kernel, &cfg);
            assert!(r.verified);
            let time_us = r.runtime_ns / 1000.0;
            let dp_only = r.power.dynamic_fu_mw
                + r.power.dynamic_reg_mw
                + r.power.static_fu_mw
                + r.power.static_reg_mw;
            t.row(vec![
                "datapath".into(),
                fu.to_string(),
                p.to_string(),
                format!("{time_us:.2}"),
                format!("{dp_only:.2}"),
            ]);
            t.row(vec![
                "datapath+spm".into(),
                fu.to_string(),
                p.to_string(),
                format!("{time_us:.2}"),
                format!("{:.2}", r.power.total_mw()),
            ]);
            // Datapath + a real cache hierarchy (L1 in front of DRAM).
            let cache_cfg = wide_window(
                StandaloneConfig::default()
                    .with_ports(p.min(8))
                    .with_constraints(constraints),
            );
            let rc = salam::run_kernel_cached(
                &kernel,
                &cache_cfg,
                memsys::CacheConfig::default().with_size(4096),
            );
            assert!(rc.verified);
            t.row(vec![
                "datapath+cache".into(),
                fu.to_string(),
                p.to_string(),
                format!("{:.2}", rc.runtime_ns / 1000.0),
                format!("{:.2}", rc.power.total_mw()),
            ]);
        }
    }
    println!("{}", t.render_auto());
    println!("(plot time vs power per series to recover the Pareto front)");
}
