//! `salam_report` — the bottleneck-report CLI.
//!
//! Runs one MachSuite kernel with cycle attribution and dependency-stream
//! recording on, checks the accounting invariant (attribution buckets sum
//! exactly to total cycles; critical path fits in the run), and renders a
//! bottleneck report.
//!
//! ```text
//! salam_report gemm                                  # aligned table
//! salam_report gemm --format csv --out report.csv    # CSV to a file
//! salam_report gemm --format json --trace gemm.json  # JSON + Chrome trace
//! salam_report gemm --ports 1 --diff ports=8         # this run vs variant
//! salam_report gemm --ports 1 --diff replay          # simulated vs replayed
//! salam_report spmv --limit fp_mul_f64=2 --window 32
//! salam_report --spans gemm.trace.json               # span table from a trace
//! ```
//!
//! Knobs: `--ports N` (symmetric SPM ports), `--spm-latency N`,
//! `--window N` (reservation entries), `--reads N` / `--writes N`
//! (outstanding memory limits), `--limit FU=N` (functional-unit pool,
//! repeatable). `--diff key=val[,key=val...]` reruns with the overrides
//! applied on top of the base configuration and prints a side-by-side
//! delta table. The special form `--diff replay` compares the simulated
//! run (column `a`) against the trace-replay re-schedule of the same
//! configuration (column `b`), so replay error is debuggable per
//! attribution class. Output is byte-identical across repeat runs.
//!
//! `--spans PATH` is a standalone mode: it loads a Chrome trace_event JSON
//! file — typically a serve job's `trace` artifact (`GET /trace?id=N`) —
//! and prints the per-stage span table (track, span, start, duration and
//! share of the end-to-end extent), so a job's latency breakdown is
//! readable without opening Perfetto. Full engine traces carry tens of
//! thousands of op spans, so the table keeps the `--top N` longest
//! (default 50, `--top 0` for all); the e2e extent and the marker line
//! always cover every span.

use hw_profile::FuKind;
use salam::standalone::StandaloneConfig;
use salam_bench::bottleneck::{
    bench_by_id, check_invariants, profile, render_csv, render_diff, render_json, render_table,
    replay_profile,
};
use salam_bench::cli::{Args, EXIT_FINDINGS};

const USAGE: &str = "<bench> [--ports N] [--spm-latency N] [--window N]\n\
     \x20            [--reads N] [--writes N] [--limit FU=N]...\n\
     \x20            [--format table|csv|json] [--json] [--out PATH] [--trace PATH]\n\
     \x20            [--diff key=val[,key=val...] | --diff replay]\n\
     salam_report --spans TRACE_JSON [--top N]    # span table from a trace file\n\
     benches: bfs, fft, gemm, md-grid, md-knn, nw, spmv, stencil2d, stencil3d";

/// One closed span recovered from a Chrome trace_event stream.
#[derive(Clone)]
struct TraceSpan {
    track: String,
    name: String,
    start_us: f64,
    end_us: f64,
}

/// Rebuilds spans from a Chrome trace_event JSON document.
///
/// The exporter emits per-`tid` balanced, time-monotonic `B`/`E` streams
/// (lanes), so a per-tid stack pairs them exactly. `thread_name` metadata
/// supplies the track label for each lane.
fn spans_from_chrome(text: &str) -> Result<Vec<TraceSpan>, String> {
    let doc = salam_obs::json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("no traceEvents array — not a Chrome trace file")?;
    let mut track_of: Vec<(f64, String)> = Vec::new(); // tid -> label
    let mut open: Vec<(f64, String, f64)> = Vec::new(); // stack of (tid, name, start)
    let mut spans = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let tid = ev.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let name = ev.get("name").and_then(|v| v.as_str()).unwrap_or("");
        match ph {
            "M" if name == "thread_name" => {
                if let Some(label) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                {
                    track_of.push((tid, label.to_string()));
                }
            }
            "B" => {
                let ts = ev.get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0);
                open.push((tid, name.to_string(), ts));
            }
            "E" => {
                let ts = ev.get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0);
                if let Some(i) = open.iter().rposition(|(t, _, _)| *t == tid) {
                    let (_, name, start) = open.remove(i);
                    let track = track_of
                        .iter()
                        .find(|(t, _)| *t == tid)
                        .map_or("?", |(_, l)| l.as_str());
                    spans.push(TraceSpan {
                        track: track.to_string(),
                        name,
                        start_us: start,
                        end_us: ts.max(start),
                    });
                }
            }
            _ => {}
        }
    }
    spans.sort_by(|a, b| {
        a.start_us
            .partial_cmp(&b.start_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                b.end_us
                    .partial_cmp(&a.end_us)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(spans)
}

/// Renders the span table: one row per span, widths fitted, a `% e2e`
/// column against the trace's full `[t0, t1]` extent (which may cover
/// more spans than are shown).
fn render_spans_against(spans: &[TraceSpan], t0: f64, t1: f64) -> String {
    let e2e = (t1 - t0).max(f64::MIN_POSITIVE);
    let rows: Vec<[String; 5]> = spans
        .iter()
        .map(|s| {
            [
                s.track.clone(),
                s.name.clone(),
                format!("{:.3}", s.start_us - t0),
                format!("{:.3}", s.end_us - s.start_us),
                format!("{:.1}", 100.0 * (s.end_us - s.start_us) / e2e),
            ]
        })
        .collect();
    let head = ["track", "span", "start_us", "dur_us", "% e2e"];
    let mut w: [usize; 5] = [0; 5];
    for (i, h) in head.iter().enumerate() {
        w[i] = rows
            .iter()
            .map(|r| r[i].len())
            .max()
            .unwrap_or(0)
            .max(h.len());
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  {:>w4$}\n",
        head[0],
        head[1],
        head[2],
        head[3],
        head[4],
        w0 = w[0],
        w1 = w[1],
        w2 = w[2],
        w3 = w[3],
        w4 = w[4],
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  {:>w4$}\n",
            r[0],
            r[1],
            r[2],
            r[3],
            r[4],
            w0 = w[0],
            w1 = w[1],
            w2 = w[2],
            w3 = w[3],
            w4 = w[4],
        ));
    }
    out
}

/// Applies one `key=val` knob to a config. Shared by the CLI flags and the
/// `--diff` override list so both spell knobs identically.
fn apply_knob(cfg: &mut StandaloneConfig, key: &str, val: &str) -> Result<(), String> {
    let parse_u32 = |v: &str| v.parse::<u32>().map_err(|_| format!("bad number '{v}'"));
    let parse_u64 = |v: &str| v.parse::<u64>().map_err(|_| format!("bad number '{v}'"));
    match key {
        "ports" => {
            let n = parse_u32(val)?;
            cfg.spm_read_ports = n.max(1);
            cfg.spm_write_ports = n.max(1);
        }
        "spm-latency" => cfg.spm_latency = parse_u64(val)?.max(1),
        "window" => {
            cfg.engine.reservation_entries = parse_u64(val)?.max(1) as usize;
        }
        "reads" => cfg.engine.max_outstanding_reads = parse_u64(val)?.max(1) as usize,
        "writes" => cfg.engine.max_outstanding_writes = parse_u64(val)?.max(1) as usize,
        "limit" => {
            let (fu, n) = val
                .split_once([':', '='])
                .ok_or_else(|| format!("--limit expects FU=N, got '{val}'"))?;
            let kind =
                FuKind::from_name(fu).ok_or_else(|| format!("unknown functional unit '{fu}'"))?;
            cfg.constraints = cfg.constraints.clone().with_limit(kind, parse_u32(n)?);
        }
        other => return Err(format!("unknown knob '{other}'")),
    }
    Ok(())
}

fn main() {
    let mut args = Args::parse("salam_report", USAGE);
    if let Some(path) = args.opt("--spans") {
        let top = args.opt_u64("--top").unwrap_or(50) as usize;
        if !args.finish().is_empty() {
            eprintln!("salam_report: --spans takes no other arguments");
            std::process::exit(salam_bench::cli::EXIT_USAGE);
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("salam_report: cannot read {path}: {e}");
            std::process::exit(EXIT_FINDINGS);
        });
        let spans = spans_from_chrome(&text).unwrap_or_else(|e| {
            eprintln!("salam_report: cannot parse {path}: {e}");
            std::process::exit(EXIT_FINDINGS);
        });
        if spans.is_empty() {
            eprintln!("salam_report: {path} contains no closed spans");
            std::process::exit(EXIT_FINDINGS);
        }
        // e2e (and the marker) always cover every span; the table may be
        // trimmed to the longest `top` to stay readable on engine traces.
        let t0 = spans.iter().map(|s| s.start_us).fold(f64::MAX, f64::min);
        let t1 = spans.iter().map(|s| s.end_us).fold(0.0f64, f64::max);
        let shown = if top > 0 && spans.len() > top {
            let mut by_dur: Vec<&TraceSpan> = spans.iter().collect();
            by_dur.sort_by(|a, b| {
                (b.end_us - b.start_us)
                    .partial_cmp(&(a.end_us - a.start_us))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            by_dur.truncate(top);
            let mut shown: Vec<TraceSpan> = by_dur
                .into_iter()
                .map(|s| TraceSpan {
                    track: s.track.clone(),
                    name: s.name.clone(),
                    start_us: s.start_us,
                    end_us: s.end_us,
                })
                .collect();
            shown.sort_by(|a, b| {
                a.start_us
                    .partial_cmp(&b.start_us)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            println!(
                "showing the {top} longest of {} spans (--top 0 for all)",
                spans.len()
            );
            shown
        } else {
            spans.clone()
        };
        print!("{}", render_spans_against(&shown, t0, t1));
        println!("spans: {} spans, e2e {:.3} us", spans.len(), t1 - t0);
        return;
    }
    let mut cfg = StandaloneConfig::default();
    for knob in ["ports", "spm-latency", "window", "reads", "writes"] {
        if let Some(val) = args.opt(&format!("--{knob}")) {
            if let Err(e) = apply_knob(&mut cfg, knob, &val) {
                args.fail(&e);
            }
        }
    }
    for val in args.opts("--limit") {
        if let Err(e) = apply_knob(&mut cfg, "limit", &val) {
            args.fail(&e);
        }
    }
    let mut format = args.opt("--format").unwrap_or_else(|| "table".to_string());
    if args.flag("--json") {
        format = "json".to_string();
    }
    let out: Option<String> = args.opt("--out");
    let trace: Option<String> = args.opt("--trace");
    let diff: Option<String> = args.opt("--diff");
    if !matches!(format.as_str(), "table" | "csv" | "json") {
        args.fail(&format!("unknown format '{format}'"));
    }
    let fail = |msg: &str| -> ! {
        eprintln!("salam_report: {msg}");
        eprintln!("usage: salam_report {USAGE}");
        std::process::exit(salam_bench::cli::EXIT_USAGE);
    };
    let bench = match args.finish().as_slice() {
        [id] => bench_by_id(id).unwrap_or_else(|| fail(&format!("unknown bench '{id}'"))),
        [] => fail("a bench is required"),
        _ => fail("more than one bench given"),
    };

    let kernel = bench.build_standard();
    let run = profile(&kernel, &cfg);
    if let Err(e) = check_invariants(&run) {
        eprintln!("salam_report: INVARIANT VIOLATION: {e}");
        std::process::exit(EXIT_FINDINGS);
    }

    let rendered = match diff {
        // Simulated vs replayed at the *same* configuration: the delta
        // column is the replay model's per-class attribution error.
        Some(mode) if mode == "replay" => {
            let replayed = match replay_profile(&kernel, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("salam_report: replay diff failed: {e}");
                    std::process::exit(EXIT_FINDINGS);
                }
            };
            render_diff(&run, &replayed)
        }
        Some(overrides) => {
            let mut other = cfg.clone();
            for kv in overrides.split(',').filter(|s| !s.is_empty()) {
                let Some((k, v)) = kv.split_once('=') else {
                    fail(&format!("--diff expects key=val, got '{kv}'"));
                };
                if let Err(e) = apply_knob(&mut other, k, v) {
                    fail(&e);
                }
            }
            let vs = profile(&kernel, &other);
            if let Err(e) = check_invariants(&vs) {
                eprintln!("salam_report: INVARIANT VIOLATION (diff run): {e}");
                std::process::exit(1);
            }
            render_diff(&run, &vs)
        }
        None => match format.as_str() {
            "csv" => render_csv(&run),
            "json" => render_json(&run),
            _ => render_table(&run),
        },
    };

    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("salam_report: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &trace {
        let rec = salam_obs::depstream_to_trace(
            &run.depstream,
            &run.critpath.path,
            cfg.engine.clock_period_ps,
        );
        match salam_obs::write_chrome_trace(&rec, std::path::Path::new(path)) {
            Ok(()) => println!("chrome trace written to {path}"),
            Err(e) => {
                eprintln!("salam_report: cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Stable marker for CI: grep-able proof the accounting invariant held.
    println!(
        "invariant: attribution==cycles ok ({} cycles, critical path {})",
        run.report.stats.cycles, run.critpath.length
    );
}
