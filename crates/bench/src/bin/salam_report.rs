//! `salam_report` — the bottleneck-report CLI.
//!
//! Runs one MachSuite kernel with cycle attribution and dependency-stream
//! recording on, checks the accounting invariant (attribution buckets sum
//! exactly to total cycles; critical path fits in the run), and renders a
//! bottleneck report.
//!
//! ```text
//! salam_report gemm                                  # aligned table
//! salam_report gemm --format csv --out report.csv    # CSV to a file
//! salam_report gemm --format json --trace gemm.json  # JSON + Chrome trace
//! salam_report gemm --ports 1 --diff ports=8         # this run vs variant
//! salam_report gemm --ports 1 --diff replay          # simulated vs replayed
//! salam_report spmv --limit fp_mul_f64=2 --window 32
//! ```
//!
//! Knobs: `--ports N` (symmetric SPM ports), `--spm-latency N`,
//! `--window N` (reservation entries), `--reads N` / `--writes N`
//! (outstanding memory limits), `--limit FU=N` (functional-unit pool,
//! repeatable). `--diff key=val[,key=val...]` reruns with the overrides
//! applied on top of the base configuration and prints a side-by-side
//! delta table. The special form `--diff replay` compares the simulated
//! run (column `a`) against the trace-replay re-schedule of the same
//! configuration (column `b`), so replay error is debuggable per
//! attribution class. Output is byte-identical across repeat runs.

use hw_profile::FuKind;
use salam::standalone::StandaloneConfig;
use salam_bench::bottleneck::{
    bench_by_id, check_invariants, profile, render_csv, render_diff, render_json, render_table,
    replay_profile,
};
use salam_bench::cli::{Args, EXIT_FINDINGS};

const USAGE: &str = "<bench> [--ports N] [--spm-latency N] [--window N]\n\
     \x20            [--reads N] [--writes N] [--limit FU=N]...\n\
     \x20            [--format table|csv|json] [--json] [--out PATH] [--trace PATH]\n\
     \x20            [--diff key=val[,key=val...] | --diff replay]\n\
     benches: bfs, fft, gemm, md-grid, md-knn, nw, spmv, stencil2d, stencil3d";

/// Applies one `key=val` knob to a config. Shared by the CLI flags and the
/// `--diff` override list so both spell knobs identically.
fn apply_knob(cfg: &mut StandaloneConfig, key: &str, val: &str) -> Result<(), String> {
    let parse_u32 = |v: &str| v.parse::<u32>().map_err(|_| format!("bad number '{v}'"));
    let parse_u64 = |v: &str| v.parse::<u64>().map_err(|_| format!("bad number '{v}'"));
    match key {
        "ports" => {
            let n = parse_u32(val)?;
            cfg.spm_read_ports = n.max(1);
            cfg.spm_write_ports = n.max(1);
        }
        "spm-latency" => cfg.spm_latency = parse_u64(val)?.max(1),
        "window" => {
            cfg.engine.reservation_entries = parse_u64(val)?.max(1) as usize;
        }
        "reads" => cfg.engine.max_outstanding_reads = parse_u64(val)?.max(1) as usize,
        "writes" => cfg.engine.max_outstanding_writes = parse_u64(val)?.max(1) as usize,
        "limit" => {
            let (fu, n) = val
                .split_once([':', '='])
                .ok_or_else(|| format!("--limit expects FU=N, got '{val}'"))?;
            let kind =
                FuKind::from_name(fu).ok_or_else(|| format!("unknown functional unit '{fu}'"))?;
            cfg.constraints = cfg.constraints.clone().with_limit(kind, parse_u32(n)?);
        }
        other => return Err(format!("unknown knob '{other}'")),
    }
    Ok(())
}

fn main() {
    let mut args = Args::parse("salam_report", USAGE);
    let mut cfg = StandaloneConfig::default();
    for knob in ["ports", "spm-latency", "window", "reads", "writes"] {
        if let Some(val) = args.opt(&format!("--{knob}")) {
            if let Err(e) = apply_knob(&mut cfg, knob, &val) {
                args.fail(&e);
            }
        }
    }
    for val in args.opts("--limit") {
        if let Err(e) = apply_knob(&mut cfg, "limit", &val) {
            args.fail(&e);
        }
    }
    let mut format = args.opt("--format").unwrap_or_else(|| "table".to_string());
    if args.flag("--json") {
        format = "json".to_string();
    }
    let out: Option<String> = args.opt("--out");
    let trace: Option<String> = args.opt("--trace");
    let diff: Option<String> = args.opt("--diff");
    if !matches!(format.as_str(), "table" | "csv" | "json") {
        args.fail(&format!("unknown format '{format}'"));
    }
    let fail = |msg: &str| -> ! {
        eprintln!("salam_report: {msg}");
        eprintln!("usage: salam_report {USAGE}");
        std::process::exit(salam_bench::cli::EXIT_USAGE);
    };
    let bench = match args.finish().as_slice() {
        [id] => bench_by_id(id).unwrap_or_else(|| fail(&format!("unknown bench '{id}'"))),
        [] => fail("a bench is required"),
        _ => fail("more than one bench given"),
    };

    let kernel = bench.build_standard();
    let run = profile(&kernel, &cfg);
    if let Err(e) = check_invariants(&run) {
        eprintln!("salam_report: INVARIANT VIOLATION: {e}");
        std::process::exit(EXIT_FINDINGS);
    }

    let rendered = match diff {
        // Simulated vs replayed at the *same* configuration: the delta
        // column is the replay model's per-class attribution error.
        Some(mode) if mode == "replay" => {
            let replayed = match replay_profile(&kernel, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("salam_report: replay diff failed: {e}");
                    std::process::exit(EXIT_FINDINGS);
                }
            };
            render_diff(&run, &replayed)
        }
        Some(overrides) => {
            let mut other = cfg.clone();
            for kv in overrides.split(',').filter(|s| !s.is_empty()) {
                let Some((k, v)) = kv.split_once('=') else {
                    fail(&format!("--diff expects key=val, got '{kv}'"));
                };
                if let Err(e) = apply_knob(&mut other, k, v) {
                    fail(&e);
                }
            }
            let vs = profile(&kernel, &other);
            if let Err(e) = check_invariants(&vs) {
                eprintln!("salam_report: INVARIANT VIOLATION (diff run): {e}");
                std::process::exit(1);
            }
            render_diff(&run, &vs)
        }
        None => match format.as_str() {
            "csv" => render_csv(&run),
            "json" => render_json(&run),
            _ => render_table(&run),
        },
    };

    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("salam_report: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &trace {
        let rec = salam_obs::depstream_to_trace(
            &run.depstream,
            &run.critpath.path,
            cfg.engine.clock_period_ps,
        );
        match salam_obs::write_chrome_trace(&rec, std::path::Path::new(path)) {
            Ok(()) => println!("chrome trace written to {path}"),
            Err(e) => {
                eprintln!("salam_report: cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Stable marker for CI: grep-able proof the accounting invariant held.
    println!(
        "invariant: attribution==cycles ok ({} cycles, critical path {})",
        run.report.stats.cycles, run.critpath.length
    );
}
