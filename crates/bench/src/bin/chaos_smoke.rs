//! `chaos_smoke` — the resilience chaos harness (PR 9).
//!
//! Phase A drives an in-process [`ServeCore`] through every resilience
//! mechanism with faults injected on purpose:
//!
//! * a job with a tight deadline fails typed `timeout`, cancelled
//!   cooperatively at an engine cycle-batch boundary;
//! * explicit cancel stops queued and running jobs (and is idempotent);
//! * injected worker panics trip the per-fingerprint circuit breaker
//!   open → half-open → closed, and the transition log is byte-identical
//!   between a 1-slot and an 8-slot server (determinism gate);
//! * a single injected panic is absorbed by one seeded-backoff retry;
//! * a full accept queue sheds load with a `retry_after_ms` hint, and
//!   queue pressure degrades a fresh sweep to the replay fast path;
//! * a terminal job evicted from retention reports typed `evicted`.
//!
//! Phase B is the crash-recovery drill: it spawns a real `salam_serve`
//! with `--journal`, submits jobs over the wire, SIGKILLs the server
//! mid-flight, restarts it on the same journal, and asserts the
//! exactly-once invariants — every open job completes after recovery
//! (`lost=0`), no job is admitted or finished twice (`dup=0`), and a
//! recovered job's report is byte-identical to a fresh run of the same
//! configuration. `/healthz` and `/readyz` are probed over the HTTP shim.
//!
//! Prints one final marker line:
//!
//! ```text
//! chaos: timeout=1 cancelled=3 breaker=deterministic retry=ok shed=1
//!   degraded=1 evicted=ok restart: open=K recovered=K lost=0 dup=0
//!   identical=1 p99_ms=F ok
//! ```
//!
//! and, when `CHAOS_OUT` is set, writes the same facts as a JSON artifact.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use salam_fault::FaultPlan;
use salam_resilience::BackoffPolicy;
use salam_serve::wire::{parse_journal_line, JournalEvent};
use salam_serve::{JobRequest, JobState, ServeConfig, ServeCore, SubmitOpts, WireAxis};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("salam-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create chaos tmp dir");
    dir
}

fn cfg(tag: &str) -> ServeConfig {
    ServeConfig {
        cache_dir: Some(tmp(tag).join("cache")),
        no_cache: true,
        ..ServeConfig::default()
    }
}

fn kernel(bench: &str, knobs: &[(&str, u64)]) -> JobRequest {
    JobRequest::Kernel {
        bench: bench.into(),
        knobs: knobs.iter().map(|(k, v)| ((*k).into(), *v)).collect(),
        trace: false,
    }
}

/// A job that deadlocks (nearly every memory response dropped) with a
/// watchdog horizon far enough out that, at simulation speed, it runs
/// "forever" — the canonical victim for deadline and cancel drills. The
/// rate stays below 1.0 so the static deadlock gate (F004) classifies it
/// `Possible` and admits it; the seeded draw still wedges immediately.
fn stuck_job(seed: u64) -> JobRequest {
    let mut plan = FaultPlan::seeded(seed);
    plan.mem_drop_rate = 0.999;
    JobRequest::Faulted {
        bench: "gemm".into(),
        knobs: vec![("deadlock-cycles".into(), 2_000_000_000)],
        plan,
    }
}

/// Poll until the job leaves the queue (a worker holds it).
fn wait_running(core: &ServeCore, id: u64) {
    for _ in 0..4000 {
        match core.status(id).expect("job exists").state {
            JobState::Running => return,
            JobState::Done | JobState::Failed => {
                panic!("job {id} finished before it was seen running")
            }
            JobState::Queued => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    panic!("job {id} never started running");
}

fn detail(core: &ServeCore, id: u64) -> String {
    core.wait(id)
        .expect("job exists")
        .detail
        .unwrap_or_default()
}

/// Phase A1: an un-meetable deadline fails typed `timeout` long before the
/// job's own (enormous) watchdog horizon.
fn drill_deadline() -> u64 {
    let core = ServeCore::start(cfg("deadline"));
    let id = core
        .submit_with(
            "chaos",
            stuck_job(1),
            SubmitOpts {
                deadline_ms: Some(40),
            },
        )
        .expect("admitted");
    let s = core.wait(id).expect("job exists");
    assert_eq!(s.state, JobState::Failed, "deadline job must fail");
    assert_eq!(s.detail.as_deref(), Some("error=timeout"));
    let timeouts = core.metrics().get("serve.jobs.timeout");
    assert_eq!(timeouts, Some(1.0), "timeout metric must count the job");
    core.shutdown();
    1
}

/// Phase A2: explicit cancel of a running job, a queued job, and a second
/// (idempotent) cancel of an already-cancelled job.
fn drill_cancel() -> u64 {
    let core = ServeCore::start(ServeConfig {
        slots: 1,
        ..cfg("cancel")
    });
    let running = core.submit("chaos", stuck_job(2)).expect("admitted");
    wait_running(&core, running);
    let queued = core.submit("chaos", kernel("gemm", &[])).expect("admitted");

    // Cancel the queued job first: it never gets a slot, so it must go
    // terminal immediately.
    let s = core.cancel(queued).expect("job exists");
    assert!(s.state.is_terminal(), "queued cancel is immediate");
    assert_eq!(detail(&core, queued), "error=cancelled");

    // Cancel the running job: cooperative, observed at the next
    // cycle-batch boundary.
    core.cancel(running).expect("job exists");
    assert_eq!(detail(&core, running), "error=cancelled");
    // Idempotent: cancelling a terminal job returns its snapshot.
    let again = core.cancel(running).expect("job exists");
    assert!(again.state.is_terminal());

    let cancelled = core.metrics().get("serve.jobs.cancelled");
    assert_eq!(cancelled, Some(2.0), "both cancels must be counted");
    core.shutdown();
    2
}

/// Phase A3: breaker lifecycle under injected panics, run at two worker
/// counts. Submissions are serialized, so the per-key admit/outcome
/// sequence — and therefore the transition log — must be byte-identical.
fn drill_breaker(slots: usize) -> Vec<String> {
    let core = ServeCore::start(ServeConfig {
        slots,
        chaos: true,
        retries: 0,
        ..cfg(&format!("breaker{slots}"))
    });
    core.inject_panics(3);
    // Three real failures trip the breaker (threshold 3).
    for _ in 0..3 {
        let id = core
            .submit("chaos", kernel("__chaos-panic", &[]))
            .expect("admitted while breaker closed");
        assert_eq!(detail(&core, id), "error=panic");
    }
    // Cooldown: the next two submissions fast-fail with a retry hint.
    for _ in 0..2 {
        let r = core
            .submit("chaos", kernel("__chaos-panic", &[]))
            .expect_err("breaker must fast-fail");
        assert_eq!(r.code, "circuit-open");
        assert!(r.retry_after_ms.is_some(), "fast-fail carries a retry hint");
    }
    // The panic budget is spent, so the half-open probe succeeds and the
    // breaker closes.
    let probe = core
        .submit("chaos", kernel("__chaos-panic", &[]))
        .expect("probe admitted after cooldown");
    assert_eq!(
        core.wait(probe).expect("probe exists").state,
        JobState::Done
    );
    assert_eq!(core.metrics().get("serve.breaker.fastfail"), Some(2.0));
    let log = core.breaker_log();
    core.shutdown();
    log
}

/// Phase A4: one injected panic is absorbed by one seeded-backoff retry —
/// the job still completes.
fn drill_retry() {
    let core = ServeCore::start(ServeConfig {
        chaos: true,
        retries: 1,
        backoff: BackoffPolicy {
            base_ms: 1,
            cap_ms: 4,
            ..BackoffPolicy::default()
        },
        ..cfg("retry")
    });
    core.inject_panics(1);
    let id = core
        .submit("chaos", kernel("__chaos-panic", &[]))
        .expect("admitted");
    assert_eq!(
        core.wait(id).expect("job exists").state,
        JobState::Done,
        "one retry must absorb one injected panic"
    );
    core.shutdown();
}

/// Phase A5: a full accept queue sheds with a retry hint.
fn drill_shed() -> u64 {
    let core = ServeCore::start(ServeConfig {
        slots: 1,
        max_pending: 1,
        ..cfg("shed")
    });
    let running = core.submit("chaos", stuck_job(3)).expect("admitted");
    wait_running(&core, running);
    let queued = core
        .submit("chaos", kernel("gemm", &[]))
        .expect("queue has room");
    let r = core
        .submit("chaos", kernel("spmv", &[]))
        .expect_err("queue is full; must shed");
    assert_eq!(r.code, "overloaded");
    assert!(r.retry_after_ms.is_some(), "shed carries a retry hint");
    core.cancel(queued).expect("job exists");
    core.cancel(running).expect("job exists");
    let shed = core.metrics().get("serve.jobs.shed");
    assert_eq!(shed, Some(1.0));
    core.shutdown();
    1
}

/// Phase A6: queue pressure degrades a fresh sweep to the replay engine.
fn drill_degrade() -> u64 {
    let core = ServeCore::start(ServeConfig {
        slots: 1,
        degrade_pressure: 1,
        ..cfg("degrade")
    });
    let running = core.submit("chaos", stuck_job(4)).expect("admitted");
    wait_running(&core, running);
    let queued = core.submit("chaos", kernel("gemm", &[])).expect("admitted");
    let sweep = core
        .submit(
            "chaos",
            JobRequest::Sweep {
                name: "pressure".into(),
                kernels: vec!["spmv".into()],
                axes: vec![WireAxis {
                    knob: "spm-latency".into(),
                    values: vec![1, 2],
                }],
                replay: false,
            },
        )
        .expect("sweep admitted (degraded, not shed)");
    assert_eq!(core.metrics().get("serve.jobs.degraded"), Some(1.0));
    core.cancel(running).expect("job exists");
    // With the slot free again, the queued single and the (replay) sweep
    // drain normally.
    assert_eq!(core.wait(queued).expect("exists").state, JobState::Done);
    assert_eq!(core.wait(sweep).expect("exists").state, JobState::Done);
    core.shutdown();
    1
}

/// Phase A7: eviction is a typed condition, distinct from never-existed.
fn drill_evicted() {
    let core = ServeCore::start(ServeConfig {
        retain_terminal: 1,
        ..cfg("evict")
    });
    let first = core.submit("chaos", kernel("gemm", &[])).expect("admitted");
    assert_eq!(core.wait(first).expect("exists").state, JobState::Done);
    let second = core
        .submit("chaos", kernel("gemm", &[("ports", 2)]))
        .expect("admitted");
    assert_eq!(core.wait(second).expect("exists").state, JobState::Done);
    let err = core.status(first).expect_err("first is evicted");
    assert_eq!(err.code(), "evicted");
    let err = core.status(9999).expect_err("never existed");
    assert_eq!(err.code(), "not-found");
    assert!(core.ready(), "serving core is ready");
    core.shutdown();
    assert!(!core.ready(), "shutdown flips readiness");
}

/// Wire round trip against a spawned server: one line out, one line back.
fn wire(addr: &str, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| stream.flush())
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("recv");
    resp
}

fn wire_u64(resp: &str, key: &str) -> u64 {
    let v = salam_obs::json::parse(resp).expect("response parses");
    v.get(key)
        .and_then(salam_obs::json::Value::as_f64)
        .unwrap_or_else(|| panic!("response missing {key}: {resp}")) as u64
}

/// Raw HTTP GET against the shim; `None` when the server is unreachable
/// or hangs up without answering.
fn try_http_status(addr: &str, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .ok()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).ok()?;
    let status = status.trim_end().to_string();
    (!status.is_empty()).then_some(status)
}

fn http_status(addr: &str, path: &str) -> String {
    try_http_status(addr, path).expect("http response")
}

/// Per-id (admits, terminals) counts from a journal file, tolerating a
/// torn final line (the SIGKILL can land mid-write).
fn journal_counts(path: &std::path::Path) -> BTreeMap<u64, (u64, u64)> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut counts: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for line in text.lines() {
        match parse_journal_line(line) {
            Ok(JournalEvent::Admit(a)) => counts.entry(a.id).or_default().0 += 1,
            Ok(JournalEvent::Terminal { id }) => counts.entry(id).or_default().1 += 1,
            Err(_) => {} // torn tail
        }
    }
    counts
}

struct RestartOutcome {
    open: usize,
    recovered: u64,
    lost: usize,
    dup: usize,
    identical: bool,
    p99_ms: f64,
}

/// Phase B: kill a journaled server mid-flight, restart it on the same
/// journal, and verify exactly-once completion with identical artifacts.
fn drill_restart() -> RestartOutcome {
    let serve_bin = std::env::var("SALAM_SERVE_BIN").map_or_else(
        |_| {
            std::env::current_exe()
                .expect("current exe")
                .with_file_name("salam_serve")
        },
        Into::into,
    );
    assert!(
        serve_bin.exists(),
        "sibling salam_serve binary not found at {} (build it first or set SALAM_SERVE_BIN)",
        serve_bin.display()
    );
    let dir = tmp("restart");
    let journal = dir.join("jobs.journal");
    let cache = dir.join("cache");
    let spawn = |log: &std::path::Path| -> (std::process::Child, String) {
        let out = std::fs::File::create(log).expect("create server log");
        let child = std::process::Command::new(&serve_bin)
            .args(["--addr", "127.0.0.1:0", "--slots", "1"])
            .arg("--journal")
            .arg(&journal)
            .arg("--cache-dir")
            .arg(&cache)
            .stdout(out)
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn salam_serve");
        let mut addr = String::new();
        for _ in 0..400 {
            let text = std::fs::read_to_string(log).unwrap_or_default();
            if let Some(a) = text
                .lines()
                .find_map(|l| l.strip_prefix("salam_serve: listening on "))
            {
                addr = a.to_string();
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(!addr.is_empty(), "server never reported its address");
        (child, addr)
    };

    // Server #1: admit four jobs on one slot, then SIGKILL it mid-flight.
    let log1 = dir.join("serve1.log");
    let (mut child, addr) = spawn(&log1);
    let mut ids = Vec::new();
    for lat in 1..=4u64 {
        let resp = wire(
            &addr,
            &format!(
                r#"{{"op":"submit","tenant":"chaos","job":{{"type":"kernel","bench":"gemm","knobs":{{"spm-latency":{lat}}}}}}}"#
            ),
        );
        ids.push(wire_u64(&resp, "id"));
    }
    child.kill().expect("SIGKILL server 1");
    let _ = child.wait();

    // What the journal says is still open decides what recovery owes us.
    let before = journal_counts(&journal);
    let open: Vec<u64> = before
        .iter()
        .filter(|(_, (a, t))| *a > 0 && *t == 0)
        .map(|(id, _)| *id)
        .collect();
    assert!(
        !open.is_empty(),
        "kill raced all four jobs to completion; nothing left to recover"
    );

    // Server #2 on the same journal: the open jobs must be re-admitted
    // under their original ids and complete exactly once.
    let log2 = dir.join("serve2.log");
    let (mut child, addr) = spawn(&log2);
    assert!(http_status(&addr, "/healthz").contains("200"), "healthz up");
    assert!(http_status(&addr, "/readyz").contains("200"), "readyz up");
    let metrics = wire(&addr, r#"{"op":"metrics"}"#);
    let recovered = {
        let v = salam_obs::json::parse(&metrics).expect("metrics parse");
        v.get("metrics")
            .and_then(|m| m.get("serve.jobs.recovered"))
            .and_then(salam_obs::json::Value::as_f64)
            .unwrap_or(0.0) as u64
    };
    let mut lost = 0usize;
    let mut reports = BTreeMap::new();
    for &id in &open {
        let resp = wire(&addr, &format!(r#"{{"op":"wait","id":{id}}}"#));
        let state = salam_obs::json::parse(&resp)
            .ok()
            .and_then(|v| {
                v.get("status")
                    .and_then(|s| s.get("state"))
                    .and_then(|s| s.as_str().map(String::from))
            })
            .unwrap_or_default();
        if state == "done" {
            let art = wire(
                &addr,
                &format!(r#"{{"op":"result","id":{id},"artifact":"report"}}"#),
            );
            reports.insert(id, art);
        } else {
            eprintln!("chaos: job {id} after recovery: {resp}");
            lost += 1;
        }
    }

    // Byte-identical artifacts: a fresh submit of the first recovered
    // job's exact configuration must produce the same report.
    let identical = if let Some((&first, recovered_report)) = reports.iter().next() {
        let lat = first; // ids 1..=4 were submitted with spm-latency == id
        let resp = wire(
            &addr,
            &format!(
                r#"{{"op":"submit","tenant":"ref","job":{{"type":"kernel","bench":"gemm","knobs":{{"spm-latency":{lat}}}}}}}"#
            ),
        );
        let ref_id = wire_u64(&resp, "id");
        wire(&addr, &format!(r#"{{"op":"wait","id":{ref_id}}}"#));
        let ref_report = wire(
            &addr,
            &format!(r#"{{"op":"result","id":{ref_id},"artifact":"report"}}"#),
        );
        ref_report == *recovered_report
    } else {
        false
    };

    wire(&addr, r#"{"op":"shutdown"}"#);
    // Readiness must flip while the server drains; the listener may also
    // already be gone or hang up silently — all of those prove "not ready".
    if let Some(status) = try_http_status(&addr, "/readyz") {
        assert!(status.contains("503"), "draining readyz: {status}");
    }
    let _ = child.wait();

    // Exactly-once, as the journal tells it: every id admitted at most
    // once and finished at most once; every recovered id exactly once.
    let after = journal_counts(&journal);
    let dup = after.values().filter(|(a, t)| *a > 1 || *t > 1).count();
    for &id in &open {
        let (a, t) = after.get(&id).copied().unwrap_or((0, 0));
        assert_eq!((a, t), (1, 1), "job {id} must journal 1 admit + 1 terminal");
    }

    let p99_ms = std::fs::read_to_string(&log2)
        .unwrap_or_default()
        .lines()
        .last()
        .and_then(|l| l.split("e2e_p99_ms=").nth(1))
        .and_then(|t| t.split_whitespace().next())
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(f64::NAN);

    RestartOutcome {
        open: open.len(),
        recovered,
        lost,
        dup,
        identical,
        p99_ms,
    }
}

fn main() {
    // The breaker/retry drills inject worker panics on purpose; the default
    // hook would spray their backtraces over the CI log. Keep every other
    // panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("chaos: injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let timeouts = drill_deadline();
    println!("chaos_smoke: deadline drill ok");
    let cancelled = drill_cancel();
    println!("chaos_smoke: cancel drill ok");
    let log1 = drill_breaker(1);
    let log8 = drill_breaker(8);
    assert!(!log1.is_empty(), "breaker must log transitions");
    assert_eq!(
        log1, log8,
        "breaker transition log must be identical across worker counts"
    );
    let transitions: Vec<&str> = log1.iter().filter_map(|l| l.split(": ").nth(1)).collect();
    assert_eq!(
        transitions,
        ["closed->open", "open->half-open", "half-open->closed"],
        "breaker must open, probe, and recover"
    );
    println!("chaos_smoke: breaker drill ok ({})", log1.join(", "));
    drill_retry();
    println!("chaos_smoke: retry drill ok");
    let shed = drill_shed();
    println!("chaos_smoke: shed drill ok");
    let degraded = drill_degrade();
    println!("chaos_smoke: degrade drill ok");
    drill_evicted();
    println!("chaos_smoke: eviction drill ok");
    let r = drill_restart();
    println!("chaos_smoke: restart drill ok");

    assert_eq!(r.lost, 0, "no lost jobs after recovery");
    assert_eq!(r.dup, 0, "no double-admission or double-completion");
    assert!(r.identical, "recovered artifact must match a fresh run");
    assert!(
        r.p99_ms.is_finite() && r.p99_ms < 120_000.0,
        "post-recovery p99 must be bounded, got {}",
        r.p99_ms
    );

    let marker = format!(
        "chaos: timeout={timeouts} cancelled={cancelled} breaker=deterministic retry=ok \
         shed={shed} degraded={degraded} evicted=ok restart: open={} recovered={} \
         lost={} dup={} identical={} p99_ms={:.3} ok",
        r.open,
        r.recovered,
        r.lost,
        r.dup,
        u8::from(r.identical),
        r.p99_ms
    );
    if let Ok(path) = std::env::var("CHAOS_OUT") {
        let json = format!(
            "{{\"timeout\": {timeouts}, \"cancelled\": {cancelled}, \
             \"breaker_log\": [{}], \"shed\": {shed}, \"degraded\": {degraded}, \
             \"restart\": {{\"open\": {}, \"recovered\": {}, \"lost\": {}, \"dup\": {}, \
             \"identical\": {}, \"p99_ms\": {:.3}}}}}",
            log1.iter()
                .map(|l| format!("\"{}\"", salam_serve::wire::escape(l)))
                .collect::<Vec<_>>()
                .join(", "),
            r.open,
            r.recovered,
            r.lost,
            r.dup,
            r.identical,
            r.p99_ms
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("chaos_smoke: cannot write {path}: {e}");
        }
    }
    println!("{marker}");
}
