//! Fig. 16 — multi-accelerator integration scenarios for the CNN layer-1
//! pipeline: private SPMs + DMA (baseline), shared SPM with central
//! synchronization, and direct stream-buffer pipelining.

use salam_bench::fig16::{run_scenario, Scenario};
use salam_bench::table::Table;

fn main() {
    let mut t = Table::new(
        "Fig 16: producer-consumer accelerator scenarios",
        &[
            "scenario",
            "total(us)",
            "conv(us)",
            "relu(us)",
            "pool(us)",
            "speedup",
            "ok",
        ],
    );
    let mut baseline = None;
    for s in Scenario::ALL {
        let r = run_scenario(s);
        assert!(r.verified, "{} produced wrong output", s.label());
        let base = *baseline.get_or_insert(r.total_ns);
        let span = |i: usize| format!("{:.2}", r.accel_spans_ns[i].1 / 1000.0);
        t.row(vec![
            s.label().into(),
            format!("{:.2}", r.total_ns / 1000.0),
            span(0),
            span(1),
            span(2),
            format!("{:.2}x", base / r.total_ns),
            "yes".into(),
        ]);
    }
    println!("{}", t.render_auto());
    println!("(paper: shared SPM ~1.25x, stream buffers ~2.08x over the baseline)");
}
