//! Fig. 16 — multi-accelerator integration scenarios for the CNN layer-1
//! pipeline: private SPMs + DMA (baseline), shared SPM with central
//! synchronization, and direct stream-buffer pipelining.
//!
//! Runs on the DSE engine: the three scenarios are one sweep, simulated
//! across `SALAM_JOBS` workers and cached under `target/dse-cache/` so a
//! re-run is instant. `--sweep` additionally explores DMA-burst × stream
//! depth around each scenario.

use salam_bench::fig16::{Fig16Params, Fig16Point, Scenario};
use salam_dse::{run_sweep, DseOptions, SweepTable};

fn scenario_table(
    points: &[Fig16Point],
    run: &salam_dse::SweepRun<salam_bench::fig16::Fig16Record>,
) {
    let mut t = SweepTable::new(
        "Fig 16: producer-consumer accelerator scenarios",
        &[
            "scenario",
            "total(us)",
            "conv(us)",
            "relu(us)",
            "pool(us)",
            "speedup",
            "ok",
        ],
    );
    let mut baseline = None;
    for (point, outcome) in points.iter().zip(&run.outcomes) {
        let r = outcome.expect_payload();
        assert!(
            r.verified,
            "{} produced wrong output",
            point.scenario.label()
        );
        let base = *baseline.get_or_insert(r.total_ns);
        t.row(vec![
            point.scenario.label().into(),
            format!("{:.2}", r.total_ns / 1000.0),
            format!("{:.2}", r.spans_ns[0] / 1000.0),
            format!("{:.2}", r.spans_ns[1] / 1000.0),
            format!("{:.2}", r.spans_ns[2] / 1000.0),
            format!("{:.2}x", base / r.total_ns),
            "yes".into(),
        ]);
    }
    println!("{}", t.render_auto());
}

fn integration_sweep() {
    let mut points = Vec::new();
    for scenario in Scenario::ALL {
        for dma_burst in [16u32, 64, 256] {
            for stream_capacity in [4u32, 16, 64] {
                points.push(Fig16Point {
                    scenario,
                    params: Fig16Params {
                        dma_burst,
                        stream_capacity,
                        ..Fig16Params::default()
                    },
                });
            }
        }
    }
    let run = run_sweep(&points, &DseOptions::default());
    let mut t = SweepTable::new(
        "Fig 16 extended: integration-parameter sweep",
        &["scenario", "dma-burst", "stream-depth", "total(us)", "ok"],
    );
    for (point, outcome) in points.iter().zip(&run.outcomes) {
        let r = outcome.expect_payload();
        t.row(vec![
            point.scenario.label().into(),
            point.params.dma_burst.to_string(),
            point.params.stream_capacity.to_string(),
            format!("{:.2}", r.total_ns / 1000.0),
            if r.verified { "yes" } else { "NO" }.into(),
        ]);
    }
    println!("{}", t.render_auto());
    println!("dse: {}", run.summary());
}

fn main() {
    let points: Vec<Fig16Point> = Scenario::ALL
        .into_iter()
        .map(|scenario| Fig16Point {
            scenario,
            params: Fig16Params::default(),
        })
        .collect();
    let run = run_sweep(&points, &DseOptions::default());
    scenario_table(&points, &run);
    println!("dse: {}", run.summary());
    println!("(paper: shared SPM ~1.25x, stream buffers ~2.08x over the baseline)");

    if std::env::args().any(|a| a == "--sweep") {
        integration_sweep();
    }
}
