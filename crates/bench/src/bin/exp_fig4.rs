//! Fig. 4 — total power breakdown per benchmark with private SPM.
//!
//! For each MachSuite kernel, the contribution of each power category
//! (dynamic FU / registers / SPM-read / SPM-write, static FU / registers /
//! SPM) as a percentage of total power.

use machsuite::Bench;
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_bench::table::Table;

fn main() {
    let mut t = Table::new(
        "Fig 4: total power contribution (%) per benchmark, private SPM",
        &[
            "bench",
            "dynFU",
            "dynReg",
            "dynSPM-R",
            "dynSPM-W",
            "statFU",
            "statReg",
            "statSPM",
            "total(mW)",
        ],
    );
    for bench in Bench::ALL {
        let k = bench.build_standard();
        let r = run_kernel(&k, &StandaloneConfig::default());
        assert!(r.verified, "{} failed verification", k.name);
        let total = r.power.total_mw();
        let pct = |v: f64| format!("{:.1}", v / total * 100.0);
        let c = r.power;
        t.row(vec![
            bench.label().into(),
            pct(c.dynamic_fu_mw),
            pct(c.dynamic_reg_mw),
            pct(c.dynamic_spm_read_mw),
            pct(c.dynamic_spm_write_mw),
            pct(c.static_fu_mw),
            pct(c.static_reg_mw),
            pct(c.static_spm_mw),
            format!("{total:.3}"),
        ]);
    }
    println!("{}", t.render_auto());
}
