//! Ablations of the design decisions called out in DESIGN.md §5: what each
//! modeling choice in the runtime engine costs or buys.

use hw_profile::FuKind;
use machsuite::Bench;
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_bench::table::Table;
use salam_cdfg::FuConstraints;

fn run_with(bench: Bench, f: impl FnOnce(&mut StandaloneConfig)) -> u64 {
    let k = bench.build_standard();
    let mut cfg = StandaloneConfig::default();
    f(&mut cfg);
    let r = run_kernel(&k, &cfg);
    assert!(r.verified, "{bench:?} ablation broke correctness");
    r.cycles
}

fn main() {
    // 1. Register-hazard model: per-instance dynamic contexts (default,
    //    implicit renaming) vs strict WAR/WAW on architectural registers.
    let mut t = Table::new(
        "Ablation 1: register-hazard model (cycles)",
        &["bench", "renamed (default)", "strict WAR/WAW", "slowdown"],
    );
    for bench in [
        Bench::MdKnn,
        Bench::GemmNcubed,
        Bench::FftStrided,
        Bench::Stencil2d,
    ] {
        let renamed = run_with(bench, |_| {});
        let strict = run_with(bench, |c| c.engine.strict_register_hazards = true);
        t.row(vec![
            bench.label().into(),
            renamed.to_string(),
            strict.to_string(),
            format!("{:.2}x", strict as f64 / renamed as f64),
        ]);
    }
    println!("{}", t.render_auto());

    // 2. Functional-unit pipelining: units busy until commit (default,
    //    SALAM's model) vs initiation-interval-1 pipelines.
    let mut t = Table::new(
        "Ablation 2: functional-unit pipelining (cycles)",
        &[
            "bench",
            "unpipelined (default)",
            "pipelined II=1",
            "speedup",
        ],
    );
    for bench in [Bench::MdKnn, Bench::MdGrid, Bench::GemmNcubed] {
        let unpiped = run_with(bench, |_| {});
        let piped = run_with(bench, |c| c.engine.pipelined_fus = true);
        t.row(vec![
            bench.label().into(),
            unpiped.to_string(),
            piped.to_string(),
            format!("{:.2}x", unpiped as f64 / piped as f64),
        ]);
    }
    println!("{}", t.render_auto());

    // 3. Reservation-window depth: the block-fetch lookahead knob.
    let mut t = Table::new(
        "Ablation 3: reservation window (cycles)",
        &["bench", "w=32", "w=128", "w=512", "w=2048"],
    );
    for bench in [Bench::Nw, Bench::MdGrid, Bench::GemmNcubed] {
        let cells: Vec<String> = [32usize, 128, 512, 2048]
            .iter()
            .map(|&w| run_with(bench, |c| c.engine.reservation_entries = w).to_string())
            .collect();
        let mut row = vec![bench.label().to_string()];
        row.extend(cells);
        t.row(row);
    }
    println!("{}", t.render_auto());

    // 4. Datapath/memory decoupling: sweeping FU limits at fixed memory and
    //    memory ports at fixed FUs, independently — the knob separation
    //    gem5-Aladdin cannot offer (§II).
    let mut t = Table::new(
        "Ablation 4: independent datapath / memory sweeps on GEMM (cycles)",
        &["fmul limit", "ports=2", "ports=8", "ports=32"],
    );
    let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 8 });
    for fu in [1u32, 4, 16] {
        let mut row = vec![fu.to_string()];
        for ports in [2u32, 8, 32] {
            let mut cfg = StandaloneConfig::default()
                .with_ports(ports)
                .with_constraints(
                    FuConstraints::unconstrained()
                        .with_limit(FuKind::FpMulF64, fu)
                        .with_limit(FuKind::FpAddF64, fu),
                );
            cfg.engine.reservation_entries = 512;
            let r = run_kernel(&k, &cfg);
            assert!(r.verified);
            row.push(r.cycles.to_string());
        }
        t.row(row);
    }
    println!("{}", t.render_auto());
    println!(
        "Ablation 1 shows why per-instance contexts matter: strict register\n\
         hazards serialize every value consumed late in an iteration. Ablation 3\n\
         shows the window's role: NW's wavefront appears only with a window deep\n\
         enough to bridge rows."
    );
}
