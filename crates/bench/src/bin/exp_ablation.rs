//! Ablations of the design decisions called out in DESIGN.md §5: what each
//! modeling choice in the runtime engine costs or buys.
//!
//! Each ablation is a [`SweepSpec`] on the DSE engine — parallel across
//! `SALAM_JOBS` workers, cached under `target/dse-cache/` — and the tables
//! below are pivots of the sweep's outcomes.

use hw_profile::FuKind;
use machsuite::Bench;
use salam::standalone::StandaloneConfig;
use salam::RunReport;
use salam_bench::runners::wide_window;
use salam_dse::{run_sweep, Axis, DseOptions, KernelSpec, SweepRun, SweepSpec, SweepTable};

/// Runs a spec and returns its points with the verified outcomes.
fn sweep(
    spec: &SweepSpec,
    opts: &DseOptions,
    totals: &mut (usize, usize, usize),
) -> SweepRun<RunReport> {
    let run = run_sweep(&spec.points(), opts);
    for (point, outcome) in spec.points().iter().zip(&run.outcomes) {
        assert!(
            outcome.expect_payload().verified,
            "{} ablation broke correctness",
            point.label()
        );
    }
    totals.0 += run.hits;
    totals.1 += run.misses;
    totals.2 += run.corrupt;
    run
}

fn main() {
    let opts = DseOptions::default();
    let mut totals = (0usize, 0usize, 0usize);

    // 1. Register-hazard model: per-instance dynamic contexts (default,
    //    implicit renaming) vs strict WAR/WAW on architectural registers.
    let benches1 = [
        Bench::MdKnn,
        Bench::GemmNcubed,
        Bench::FftStrided,
        Bench::Stencil2d,
    ];
    let spec = benches1
        .iter()
        .fold(
            SweepSpec::new("ablation-hazards", StandaloneConfig::default()),
            |s, &b| s.kernel(KernelSpec::bench(b)),
        )
        .axis(Axis::toggle("strict", |c, on| {
            c.engine.strict_register_hazards = on;
        }));
    let run = sweep(&spec, &opts, &mut totals);
    let mut t = SweepTable::new(
        "Ablation 1: register-hazard model (cycles)",
        &["bench", "renamed (default)", "strict WAR/WAW", "slowdown"],
    );
    for (i, bench) in benches1.iter().enumerate() {
        let renamed = run.outcomes[2 * i].expect_payload().cycles;
        let strict = run.outcomes[2 * i + 1].expect_payload().cycles;
        t.row(vec![
            bench.label().into(),
            renamed.to_string(),
            strict.to_string(),
            format!("{:.2}x", strict as f64 / renamed as f64),
        ]);
    }
    println!("{}", t.render_auto());

    // 2. Functional-unit pipelining: units busy until commit (default,
    //    SALAM's model) vs initiation-interval-1 pipelines.
    let benches2 = [Bench::MdKnn, Bench::MdGrid, Bench::GemmNcubed];
    let spec = benches2
        .iter()
        .fold(
            SweepSpec::new("ablation-pipelining", StandaloneConfig::default()),
            |s, &b| s.kernel(KernelSpec::bench(b)),
        )
        .axis(Axis::toggle("pipelined", |c, on| {
            c.engine.pipelined_fus = on
        }));
    let run = sweep(&spec, &opts, &mut totals);
    let mut t = SweepTable::new(
        "Ablation 2: functional-unit pipelining (cycles)",
        &[
            "bench",
            "unpipelined (default)",
            "pipelined II=1",
            "speedup",
        ],
    );
    for (i, bench) in benches2.iter().enumerate() {
        let unpiped = run.outcomes[2 * i].expect_payload().cycles;
        let piped = run.outcomes[2 * i + 1].expect_payload().cycles;
        t.row(vec![
            bench.label().into(),
            unpiped.to_string(),
            piped.to_string(),
            format!("{:.2}x", unpiped as f64 / piped as f64),
        ]);
    }
    println!("{}", t.render_auto());

    // 3. Reservation-window depth: the block-fetch lookahead knob.
    let benches3 = [Bench::Nw, Bench::MdGrid, Bench::GemmNcubed];
    let windows = [32usize, 128, 512, 2048];
    let spec = benches3
        .iter()
        .fold(
            SweepSpec::new("ablation-window", StandaloneConfig::default()),
            |s, &b| s.kernel(KernelSpec::bench(b)),
        )
        .axis(Axis::reservation_entries(&windows));
    let run = sweep(&spec, &opts, &mut totals);
    let mut t = SweepTable::new(
        "Ablation 3: reservation window (cycles)",
        &["bench", "w=32", "w=128", "w=512", "w=2048"],
    );
    for (i, bench) in benches3.iter().enumerate() {
        let mut row = vec![bench.label().to_string()];
        row.extend((0..windows.len()).map(|j| {
            run.outcomes[windows.len() * i + j]
                .expect_payload()
                .cycles
                .to_string()
        }));
        t.row(row);
    }
    println!("{}", t.render_auto());

    // 4. Datapath/memory decoupling: sweeping FU limits at fixed memory and
    //    memory ports at fixed FUs, independently — the knob separation
    //    gem5-Aladdin cannot offer (§II).
    let fu_limits = [1u32, 4, 16];
    let ports = [2u32, 8, 32];
    let fu_axis = fu_limits.iter().fold(Axis::new("fu"), |a, &fu| {
        a.setting(fu.to_string(), move |c: &mut StandaloneConfig| {
            c.constraints = c
                .constraints
                .clone()
                .with_limit(FuKind::FpMulF64, fu)
                .with_limit(FuKind::FpAddF64, fu);
        })
    });
    let spec = SweepSpec::new(
        "ablation-decoupling",
        wide_window(StandaloneConfig::default()),
    )
    .kernel(KernelSpec::custom("gemm[n=16,u=8]", || {
        machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 8 })
    }))
    .axis(fu_axis)
    .axis(Axis::spm_ports(&ports));
    let run = sweep(&spec, &opts, &mut totals);
    let mut t = SweepTable::new(
        "Ablation 4: independent datapath / memory sweeps on GEMM (cycles)",
        &["fmul limit", "ports=2", "ports=8", "ports=32"],
    );
    for (i, fu) in fu_limits.iter().enumerate() {
        let mut row = vec![fu.to_string()];
        row.extend((0..ports.len()).map(|j| {
            run.outcomes[ports.len() * i + j]
                .expect_payload()
                .cycles
                .to_string()
        }));
        t.row(row);
    }
    println!("{}", t.render_auto());
    println!(
        "dse: hits={} misses={} corrupt={}",
        totals.0, totals.1, totals.2
    );
    println!(
        "Ablation 1 shows why per-instance contexts matter: strict register\n\
         hazards serialize every value consumed late in an iteration. Ablation 3\n\
         shows the window's role: NW's wavefront appears only with a window deep\n\
         enough to bridge rows."
    );
}
