//! `salam_lint` — the static-verification front end.
//!
//! Runs every `salam-verify` pass over its targets and renders the
//! diagnostics as a table (default) or JSON. Targets are MachSuite kernel
//! names (`gemm`, `spmv`, …), `all` for the paper's nine-kernel suite, or
//! paths to textual IR files (`*.ll`); with no targets, `all` is assumed.
//!
//! ```text
//! salam_lint [TARGET...] [--json] [--out FILE] [--deny warnings] [--bounds]
//!            [--flow] [--sarif FILE] [--explain CODE]
//! ```
//!
//! * `--json`          — print the report as one JSON object instead of a table
//! * `--out FILE`      — additionally write the JSON report to `FILE` (the CI
//!   artifact)
//! * `--deny warnings` — exit nonzero on warnings, not just errors
//! * `--bounds`        — also print each kernel's static schedule bound
//! * `--flow`          — print the dataflow facts per kernel: proven value
//!   ranges, per-loop trip counts, and the flow-tightened bound
//!   decomposition with its delta over the per-block floors
//! * `--sarif FILE`    — additionally write the diagnostics as a SARIF
//!   2.1.0 log to `FILE` (code-scanning upload format)
//! * `--explain CODE`  — print the stable documentation for a diagnostic
//!   code (e.g. `M003`, `F001`) and exit
//!
//! Built kernels get the full stack: IR verification, static memory
//! dependences, footprint bounds, and the schedule/watchdog cross-check.
//! `.ll` files are parsed (a parse failure is itself a `P001` diagnostic)
//! and IR-verified; without arguments or a memory image the address-level
//! passes have nothing to resolve, so they are skipped.
//!
//! Ends with the stable marker `lint: targets=N diagnostics=D errors=E
//! warnings=W` that CI asserts on.

use std::collections::HashMap;

use machsuite::{Bench, BuiltKernel};
use salam::standalone::StandaloneConfig;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_dse::SweepTable;
use salam_verify::{
    check_bounds, check_schedule, explain, flow_lower_bound, parse_and_verify, profile_memdeps,
    static_lower_bound, static_memdeps, to_sarif, verify_ir, BoundConfig, Diagnostic, MemRegion,
    Severity,
};

const USAGE: &str = "[TARGET...] [--json] [--out FILE] [--deny warnings] [--bounds]\n\
     [--flow] [--sarif FILE] [--explain CODE]\n\
     TARGET: a MachSuite kernel (bfs, fft, gemm, md-grid, md-knn, nw, spmv,\n\
     stencil2d, stencil3d), 'all' for the full suite, or a path to a .ll file";

fn bench_by_name(name: &str) -> Option<Bench> {
    Bench::ALL
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(name))
}

/// Every pass over one built kernel, in severity-stable order.
fn lint_kernel(k: &BuiltKernel, bounds: bool) -> (Vec<Diagnostic>, Option<String>) {
    let mut diags = verify_ir(&k.func);

    // Address-level passes, with the kernel's real arguments.
    diags.extend(static_memdeps(&k.func, &k.args).diags);
    let (lo, hi) = k.footprint;
    let region = MemRegion {
        lo,
        hi,
        label: "footprint".into(),
    };
    diags.extend(check_bounds(&k.func, &k.args, &[region]));

    // Schedule bound under the same resources a default standalone run
    // would get, cross-checked against its watchdog horizon.
    let cfg = StandaloneConfig::default();
    let profile = hw_profile::HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
    let (prof, _) = profile_memdeps(&k.func, &k.args, &k.init);
    let trips: HashMap<_, _> = prof.block_entries.clone();
    let report = static_lower_bound(&k.func, &cdfg, &trips, &BoundConfig::default());
    diags.extend(check_schedule(&report, cfg.engine.deadlock_cycles));

    let bound_line = bounds.then(|| {
        format!(
            "bounds: {} lower_bound={} chain={} fu={} mem=({},{})",
            k.name,
            report.lower_bound,
            report.chain_floor,
            report
                .fu_floor
                .as_ref()
                .map(|(kind, c)| format!("{kind}:{c}"))
                .unwrap_or_else(|| "-".into()),
            report.mem_floor.0,
            report.mem_floor.1,
        )
    });
    (diags, bound_line)
}

/// The dataflow report for one kernel: proven ranges, loop trips, and the
/// flow-tightened bound decomposition on *inferred* (not profiled) trips.
fn flow_lines(k: &BuiltKernel) -> Vec<String> {
    let facts = salam_flow::analyze(&k.func, &k.args);
    let mut lines = Vec::new();
    let bounded = facts
        .ranges
        .values
        .iter()
        .filter(|(_, i)| i.is_bounded())
        .count();
    let resolved = facts
        .accesses
        .iter()
        .filter(|a| a.interval.is_some())
        .count();
    lines.push(format!(
        "flow: {} ranges={}/{} accesses-resolved={}/{}",
        k.name,
        bounded,
        facts.ranges.values.len(),
        resolved,
        facts.accesses.len(),
    ));
    // Per-op ranges for named instruction results, bounded ones only.
    for (bid, b) in k.func.blocks() {
        for &id in &b.insts {
            let inst = k.func.inst(id);
            if inst.name.is_empty() {
                continue;
            }
            let Some(v) = k.func.inst_result(id) else {
                continue;
            };
            let Some(i) = facts.ranges.of(v).filter(salam_flow::Interval::is_bounded) else {
                continue;
            };
            lines.push(format!(
                "flow: {} range {}.{} = [{}, {}]",
                k.name,
                k.func.block(bid).name,
                inst.name,
                i.lo,
                i.hi
            ));
        }
    }
    for l in &facts.trips.loops {
        lines.push(format!(
            "flow: {} loop {} iterations={} entries={} total={}",
            k.name,
            k.func.block(l.header).name,
            opt(l.iterations),
            opt(l.entries),
            opt(l.total_iterations),
        ));
    }
    // Flow-tightened bound over the inferred trips, with the delta each
    // new floor adds over the PR-5 per-block floors.
    let profile = hw_profile::HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
    let trips: HashMap<_, _> = facts
        .trips
        .block_trips
        .iter()
        .map(|(&b, &t)| (b, t))
        .collect();
    let deps = static_memdeps(&k.func, &k.args);
    let r = flow_lower_bound(&k.func, &cdfg, &trips, &BoundConfig::default(), &deps.edges);
    for lb in &r.loops {
        lines.push(format!(
            "flow: {} bound-loop {} latches={} entries={} adv_chain={} adv_rec={} adv_mem={} value={}",
            k.name,
            lb.name,
            lb.latch_traversals,
            lb.entries,
            lb.adv_chain,
            lb.adv_recurrence,
            lb.adv_mem,
            lb.value,
        ));
    }
    if let Some(rv) = &r.resv {
        lines.push(format!(
            "flow: {} bound-resv {} trips={} advance={}",
            k.name, rv.name, rv.trips, rv.advance
        ));
    }
    lines.push(format!(
        "flow: {} bound base={} flow={} recur_floor={} resv_floor={} delta=+{}",
        k.name,
        r.base.lower_bound,
        r.lower_bound,
        r.recur_floor,
        r.resv_floor,
        r.tightening(),
    ));
    lines
}

fn opt(v: Option<u64>) -> String {
    v.map(|v| v.to_string()).unwrap_or_else(|| "?".into())
}

fn main() {
    let mut args = salam_bench::cli::Args::parse("salam_lint", USAGE);
    let json = args.flag("--json");
    let bounds = args.flag("--bounds");
    let flow = args.flag("--flow");
    let sarif_out: Option<String> = args.opt("--sarif");
    if let Some(code) = args.opt("--explain") {
        match explain(&code.to_ascii_uppercase()) {
            Some(text) => {
                println!("{}: {text}", code.to_ascii_uppercase());
                return;
            }
            None => args.fail(&format!("--explain: unknown diagnostic code '{code}'")),
        }
    }
    let deny_warnings = match args.opt("--deny").as_deref() {
        None => false,
        Some("warnings") => true,
        Some(other) => args.fail(&format!("--deny supports 'warnings', got '{other}'")),
    };
    let out: Option<String> = args.opt("--out");
    let mut targets: Vec<String> = args.finish();
    if targets.is_empty() {
        targets.push("all".into());
    }
    if targets.iter().any(|t| t == "all") {
        targets.retain(|t| t != "all");
        for b in Bench::ALL {
            targets.push(b.label().to_ascii_lowercase());
        }
    }

    // (target name, diagnostics) in target order.
    let mut results: Vec<(String, Vec<Diagnostic>)> = Vec::new();
    let mut bound_lines: Vec<String> = Vec::new();
    for t in &targets {
        let diags = if let Some(b) = bench_by_name(t) {
            let k = b.build_standard();
            let (diags, bound) = lint_kernel(&k, bounds);
            bound_lines.extend(bound);
            if flow {
                bound_lines.extend(flow_lines(&k));
            }
            diags
        } else if t.ends_with(".ll") {
            match std::fs::read_to_string(t) {
                Ok(text) => match parse_and_verify(&text) {
                    Ok((_, diags)) => diags,
                    Err(d) => vec![d],
                },
                Err(e) => {
                    eprintln!("salam_lint: cannot read {t}: {e}");
                    std::process::exit(salam_bench::cli::EXIT_USAGE)
                }
            }
        } else {
            eprintln!("salam_lint: unknown target '{t}' (not a kernel name or .ll file)");
            eprintln!("usage: salam_lint {USAGE}");
            std::process::exit(salam_bench::cli::EXIT_USAGE)
        };
        results.push((t.clone(), diags));
    }

    let all: Vec<&Diagnostic> = results.iter().flat_map(|(_, d)| d).collect();
    let errors = all.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = all
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();

    let json_report = {
        let items: Vec<String> = results
            .iter()
            .map(|(t, diags)| {
                format!(
                    "{{\"target\":\"{t}\",\"diagnostics\":{}}}",
                    salam_verify::to_json(diags)
                )
            })
            .collect();
        format!(
            "{{\"targets\":{},\"errors\":{},\"warnings\":{},\"results\":[{}]}}",
            results.len(),
            errors,
            warnings,
            items.join(",")
        )
    };
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &json_report) {
            eprintln!("salam_lint: cannot write {path}: {e}");
            std::process::exit(salam_bench::cli::EXIT_USAGE)
        }
    }
    if let Some(path) = &sarif_out {
        let owned: Vec<Diagnostic> = all.iter().map(|d| (*d).clone()).collect();
        if let Err(e) = std::fs::write(path, to_sarif(&owned)) {
            eprintln!("salam_lint: cannot write {path}: {e}");
            std::process::exit(salam_bench::cli::EXIT_USAGE)
        }
    }

    if json {
        println!("{json_report}");
    } else {
        let mut t = SweepTable::new(
            "static verification",
            &["target", "severity", "code", "span", "message"],
        );
        for (target, diags) in &results {
            for d in diags {
                t.row(vec![
                    target.clone(),
                    d.severity.name().into(),
                    d.code.into(),
                    d.span.to_string(),
                    d.message.clone(),
                ]);
            }
        }
        println!("{}", t.render_auto());
    }
    for line in &bound_lines {
        println!("{line}");
    }
    println!(
        "lint: targets={} diagnostics={} errors={} warnings={}",
        results.len(),
        all.len(),
        errors,
        warnings
    );
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(salam_bench::cli::EXIT_FINDINGS)
    }
}
