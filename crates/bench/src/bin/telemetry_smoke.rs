//! `telemetry_smoke` — the telemetry non-perturbation gate for CI.
//!
//! Runs every MachSuite kernel twice through the full simulation entry
//! point: once with the flight recorder disabled (the telemetry-off
//! baseline) and once with an enabled recorder and a nonzero trace id —
//! the exact observer wiring `salam-serve` uses. The run fails (exit 1)
//! when any kernel's `RunReport` JSON is not byte-identical across the
//! two modes, or when the telemetry-on pass costs more than the wall-
//! clock overhead gate (default 5%, min-of-reps on both sides).
//!
//! `--reps N` (default 3) controls the timing repetitions;
//! `--max-overhead-pct N` moves the gate. The last stdout line is always
//! the stable `telemetry: …` marker CI greps.

use std::time::Instant;

use machsuite::Bench;
use salam::standalone::{try_run_kernel_observed, try_run_kernel_traced, StandaloneConfig};
use salam_bench::cli::{Args, EXIT_FINDINGS, EXIT_USAGE};
use salam_dse::SweepTable;
use salam_obs::SharedTrace;
use salam_telemetry::{flight, FlightRecorder};

fn main() {
    let mut args = Args::parse("telemetry_smoke", "[--reps N] [--max-overhead-pct N]");
    let reps = args.opt_u64("--reps").unwrap_or(3).max(1) as usize;
    let max_overhead_pct = args.opt_u64("--max-overhead-pct").unwrap_or(5) as f64;
    if !args.finish().is_empty() {
        eprintln!("telemetry_smoke: takes no positional arguments");
        std::process::exit(EXIT_USAGE);
    }

    let cfg = StandaloneConfig::default();
    let kernels: Vec<_> = Bench::ALL
        .into_iter()
        .map(|b| (b.label().to_ascii_lowercase(), b.build_standard()))
        .collect();
    let recorder = FlightRecorder::enabled(flight::DEFAULT_CAPACITY);

    // Correctness first: per-kernel byte-identity of the report JSON.
    let mut findings: Vec<String> = Vec::new();
    let mut rows: Vec<(String, u64, bool)> = Vec::new();
    for (name, kernel) in &kernels {
        let off = try_run_kernel_traced(kernel, &cfg, &SharedTrace::disabled(), None)
            .unwrap_or_else(|e| {
                eprintln!("telemetry_smoke: {name} failed telemetry-off: {e}");
                std::process::exit(EXIT_FINDINGS);
            });
        let on = try_run_kernel_observed(
            kernel,
            &cfg,
            &SharedTrace::disabled(),
            None,
            &recorder,
            0xfeed_0000 + rows.len() as u64,
        )
        .unwrap_or_else(|e| {
            eprintln!("telemetry_smoke: {name} failed telemetry-on: {e}");
            std::process::exit(EXIT_FINDINGS);
        });
        let identical = off.to_json() == on.to_json();
        if !identical {
            findings.push(format!("{name}: report JSON differs with telemetry on"));
        }
        rows.push((name.clone(), off.stats.cycles, identical));
    }
    if !recorder.is_enabled() || recorder.tail_json(8) == "[]" {
        findings.push("flight recorder captured no events while enabled".into());
    }

    // Then the overhead gate: total wall time over all kernels, min of
    // `reps` repetitions per mode so scheduler noise can only help.
    let time_all = |observed: bool| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..reps {
            let t0 = Instant::now();
            for (_, kernel) in &kernels {
                let r = if observed {
                    try_run_kernel_observed(
                        kernel,
                        &cfg,
                        &SharedTrace::disabled(),
                        None,
                        &recorder,
                        1,
                    )
                } else {
                    try_run_kernel_traced(kernel, &cfg, &SharedTrace::disabled(), None)
                };
                assert!(r.is_ok(), "timed pass must not fail");
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let off_s = time_all(false);
    let on_s = time_all(true);
    let overhead_pct = if off_s > 0.0 {
        100.0 * (on_s - off_s) / off_s
    } else {
        0.0
    };
    if overhead_pct > max_overhead_pct {
        findings.push(format!(
            "telemetry overhead {overhead_pct:.2}% exceeds the {max_overhead_pct:.0}% gate \
             (off {off_s:.3}s, on {on_s:.3}s)"
        ));
    }

    let mut t = SweepTable::new(
        "Telemetry non-perturbation smoke",
        &["kernel", "cycles", "identical"],
    );
    for (name, cycles, identical) in &rows {
        t.row(vec![
            name.clone(),
            cycles.to_string(),
            if *identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", t.render_auto());

    let identical = rows.iter().filter(|(_, _, i)| *i).count();
    // Stable marker — always the last line.
    println!(
        "telemetry: kernels={} identical={identical}/{} overhead_pct={overhead_pct:.2} {}",
        rows.len(),
        rows.len(),
        if findings.is_empty() {
            "ok"
        } else {
            "FINDINGS"
        }
    );
    if !findings.is_empty() {
        for f in &findings {
            eprintln!("telemetry_smoke: {f}");
        }
        std::process::exit(EXIT_FINDINGS);
    }
}
