//! Fig. 14 — GEMM stall breakdown vs. memory bandwidth.
//!
//! (a) stalled vs. new-execution cycle shares as read/write ports sweep
//!     64 → 4; (b) the stalled cycles broken down by which unfinished
//!     operation types were pending.
//!
//! Set `SALAM_TRACE=/path/to/trace.json` to also record the 4-port run
//! (the most stall-heavy point) as a Chrome trace_event file — open it in
//! Perfetto to see each op's issue→retire span and the stall instants.

use salam::standalone::{run_kernel, StandaloneConfig};
use salam_bench::runners::{run_kernel_observed, wide_window};
use salam_bench::table::Table;

fn main() {
    let kernel = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 16 });

    let mut a = Table::new(
        "Fig 14a: scheduling vs stalls (% of total cycles)",
        &["ports", "new-exec%", "stall%", "cycles"],
    );
    let mut b = Table::new(
        "Fig 14b: stall-source breakdown (% of stalled cycles)",
        &["ports", "load+compute%", "load+store+compute%", "other%"],
    );
    for ports in [64u32, 32, 16, 8, 4] {
        let r = run_kernel(
            &kernel,
            &wide_window(StandaloneConfig::default().with_ports(ports)),
        );
        assert!(r.verified);
        let st = &r.stats;
        let total = st.cycles as f64;
        a.row(vec![
            ports.to_string(),
            format!("{:.1}", st.new_exec_cycles as f64 / total * 100.0),
            format!("{:.1}", st.stall_cycles as f64 / total * 100.0),
            st.cycles.to_string(),
        ]);
        let stalls = st.stall_cycles.max(1) as f64;
        let get = |k: &str| st.stall_breakdown.get(k).copied().unwrap_or(0) as f64;
        let lc = get("load+compute");
        let lsc = get("load+store+compute");
        let other = st.stall_cycles as f64 - lc - lsc;
        b.row(vec![
            ports.to_string(),
            format!("{:.1}", lc / stalls * 100.0),
            format!("{:.1}", lsc / stalls * 100.0),
            format!("{:.1}", other / stalls * 100.0),
        ]);
    }
    println!("{}", a.render_auto());
    println!("{}", b.render_auto());

    if let Ok(path) = std::env::var("SALAM_TRACE") {
        let path = std::path::PathBuf::from(path);
        let cfg = wide_window(StandaloneConfig::default().with_ports(4));
        let (r, reg) = run_kernel_observed(&kernel, &cfg, Some(&path));
        assert!(r.verified);
        println!(
            "\nwrote Chrome trace for the 4-port run to {}",
            path.display()
        );
        println!("{}", reg.to_table());
    }
}
