//! Fig. 12 — area validation: gem5-SALAM's profile-driven area estimate vs.
//! the gate-level netlist estimate (the Design Compiler stand-in).

use machsuite::Bench;
use salam_bench::runners::profile_kernel;
use salam_bench::table::{mean_abs_pct, pct_err, Table};
use salam_hls::estimate_netlist;

fn main() {
    let profile = hw_profile::HardwareProfile::default_40nm();
    let mut t = Table::new(
        "Fig 12: datapath area validation (um^2)",
        &["bench", "gem5-SALAM", "netlist(DC)", "error%"],
    );
    let mut errors = Vec::new();
    // MD-Grid is excluded, as in the paper (custom IPs blocked Design
    // Compiler's area estimation).
    for bench in Bench::ALL
        .into_iter()
        .filter(|b| !matches!(b, Bench::MdGrid | Bench::Bfs))
    {
        let k = bench.build_standard();
        let (cdfg, obs) = profile_kernel(&k);
        let salam = cdfg.area_report(&profile).total_um2;
        let dc = estimate_netlist(&k.func, &cdfg, &obs, 1000.0).area_um2;
        let err = pct_err(salam, dc);
        errors.push(err);
        t.row(vec![
            bench.label().into(),
            format!("{salam:.0}"),
            format!("{dc:.0}"),
            format!("{err:+.2}"),
        ]);
    }
    println!("{}", t.render_auto());
    println!(
        "average |error|: {:.2}%  (paper: ~2.24%)",
        mean_abs_pct(&errors)
    );
}
