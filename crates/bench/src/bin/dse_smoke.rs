//! A tiny DSE smoke sweep for CI: 2 kernels × 4 design points.
//!
//! Honors the engine's environment knobs (`SALAM_JOBS`, `SALAM_DSE_CACHE`,
//! `SALAM_DSE_NO_CACHE`) and ends with the `dse: hits=… misses=…` summary
//! line CI asserts on: the second invocation against the same cache
//! directory must report `misses=0`.
//!
//! With `--inject-panic`, one design point's job deliberately panics; CI
//! uses this to assert that the sweep still completes, reports `failed=1`
//! in the summary, and renders that point as a `failed:<cause>` row. With
//! `--inject-invalid`, one point carries a statically invalid config
//! (zero SPM ports): the pre-flight validator must reject it as an
//! `invalid:C001` row, counted as `invalid=1`, without simulating it.

use salam::standalone::StandaloneConfig;
use salam_dse::{
    run_replay_sweep, run_sweep, Axis, CacheId, DseOptions, KernelSpec, ReplayOptions,
    StandalonePoint, SweepJob, SweepSpec, SweepTable,
};

/// A standalone point that can be told to panic instead of simulating, or
/// handed a broken config — the CI probes for panic isolation and static
/// screening in `run_sweep`.
struct SmokeJob {
    inner: StandalonePoint,
    poisoned: bool,
}

impl SweepJob for SmokeJob {
    type Output = salam::RunReport;

    fn cache_id(&self) -> CacheId {
        self.inner.cache_id()
    }

    fn validate(&self) -> Result<(), salam_verify::Diagnostic> {
        self.inner.validate()
    }

    fn run(&self) -> salam::RunReport {
        if self.poisoned {
            panic!("injected panic for CI");
        }
        self.inner.run()
    }
}

fn main() {
    let mut args = salam_bench::cli::Args::parse(
        "dse_smoke",
        "[--replay] [--inject-panic] [--inject-invalid] [--json]",
    );
    let inject_panic = args.flag("--inject-panic");
    let inject_invalid = args.flag("--inject-invalid");
    let replay = args.flag("--replay");
    let json = args.flag("--json");
    if replay && inject_panic {
        args.fail("--replay and --inject-panic are mutually exclusive");
    }
    if !args.finish().is_empty() {
        eprintln!("dse_smoke: takes no positional arguments");
        std::process::exit(salam_bench::cli::EXIT_USAGE);
    }
    let spec = SweepSpec::new("smoke", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=8,u=2]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 })
        }))
        .kernel(KernelSpec::bench(machsuite::Bench::SpmvCrs))
        .axis(Axis::spm_ports(&[1, 2]))
        .axis(Axis::reservation_entries(&[8, 64]));
    let points = spec.points();

    // --replay: the same sweep through the trace-replay fast path. Rows
    // gain an `engine` column (sim / replay / sim-fallback); the summary
    // line reports the replayed/simulated split CI asserts on.
    if replay {
        let mut pts = points.clone();
        if inject_invalid {
            pts[0].config.spm_read_ports = 0; // C001: rejected pre-flight
        }
        let opts = ReplayOptions {
            inner: DseOptions::default(),
            check: false,
        };
        let run = run_replay_sweep(&pts, &StandaloneConfig::default(), &opts);
        let mut t = SweepTable::new(
            "DSE smoke sweep (replay)",
            &["point", "cycles", "dominant_bottleneck", "engine", "cached"],
        );
        for ((point, outcome), prov) in pts.iter().zip(&run.outcomes).zip(&run.provenance) {
            match outcome.payload() {
                Some(r) => {
                    assert!(r.verified, "{} failed verification", point.label());
                    t.row(vec![
                        point.label(),
                        r.cycles.to_string(),
                        r.dominant_bottleneck().to_string(),
                        prov.engine.label().to_string(),
                        if outcome.from_cache { "yes" } else { "no" }.into(),
                    ]);
                }
                None => t.row(vec![
                    point.label(),
                    outcome.failure_label().unwrap(),
                    String::new(),
                    String::new(),
                    "no".into(),
                ]),
            }
        }
        t.set_summary(run.summary_pairs());
        if json {
            print!("{}", t.to_json());
        } else {
            println!("{}", t.render_auto());
        }
        println!("dse: {}", run.summary());
        return;
    }

    let jobs: Vec<SmokeJob> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut inner = p.clone();
            if inject_invalid && i == 0 {
                inner.config.spm_read_ports = 0; // C001: rejected pre-flight
            }
            SmokeJob {
                inner,
                poisoned: inject_panic && i == 0,
            }
        })
        .collect();
    let run = run_sweep(&jobs, &DseOptions::default());

    let mut t = SweepTable::new(
        "DSE smoke sweep",
        &["point", "cycles", "dominant_bottleneck", "cached"],
    );
    for (point, outcome) in points.iter().zip(&run.outcomes) {
        match outcome.payload() {
            Some(r) => {
                assert!(r.verified, "{} failed verification", point.label());
                t.row(vec![
                    point.label(),
                    r.cycles.to_string(),
                    r.dominant_bottleneck().to_string(),
                    if outcome.from_cache { "yes" } else { "no" }.into(),
                ]);
            }
            None => t.row(vec![
                point.label(),
                outcome.failure_label().unwrap(),
                String::new(),
                "no".into(),
            ]),
        }
    }
    t.set_summary(run.summary_pairs());
    if json {
        print!("{}", t.to_json());
    } else {
        println!("{}", t.render_auto());
    }
    // The stable marker CI asserts on — always the last line, in both
    // output modes.
    println!("dse: {}", run.summary());
}
