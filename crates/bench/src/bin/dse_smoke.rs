//! A tiny DSE smoke sweep for CI: 2 kernels × 4 design points.
//!
//! Honors the engine's environment knobs (`SALAM_JOBS`, `SALAM_DSE_CACHE`,
//! `SALAM_DSE_NO_CACHE`) and ends with the `dse: hits=… misses=…` summary
//! line CI asserts on: the second invocation against the same cache
//! directory must report `misses=0`.
//!
//! With `--inject-panic`, one design point's job deliberately panics; CI
//! uses this to assert that the sweep still completes, reports `failed=1`
//! in the summary, and renders that point as a `failed:<cause>` row. With
//! `--inject-invalid`, one point carries a statically invalid config
//! (zero SPM ports): the pre-flight validator must reject it as an
//! `invalid:C001` row, counted as `invalid=1`, without simulating it.
//! With `--prune`, the sweep runs through flow-based pre-flight pruning:
//! dominated points surface as `pruned:F005` rows (counted as `pruned=`),
//! and the probe re-simulates each one to prove it never could have won.

use salam::standalone::StandaloneConfig;
use salam_dse::{
    run_replay_sweep, run_sweep, run_sweep_pruned, Axis, CacheId, DseOptions, KernelSpec,
    PrunableJob, ReplayOptions, StandalonePoint, SweepJob, SweepSpec, SweepTable,
};

/// A standalone point that can be told to panic instead of simulating, or
/// handed a broken config — the CI probes for panic isolation and static
/// screening in `run_sweep`.
struct SmokeJob {
    inner: StandalonePoint,
    poisoned: bool,
}

impl SweepJob for SmokeJob {
    type Output = salam::RunReport;

    fn cache_id(&self) -> CacheId {
        self.inner.cache_id()
    }

    fn validate(&self) -> Result<(), salam_verify::Diagnostic> {
        self.inner.validate()
    }

    fn run(&self) -> salam::RunReport {
        if self.poisoned {
            panic!("injected panic for CI");
        }
        self.inner.run()
    }
}

fn main() {
    let mut args = salam_bench::cli::Args::parse(
        "dse_smoke",
        "[--replay] [--prune] [--inject-panic] [--inject-invalid] [--json]",
    );
    let inject_panic = args.flag("--inject-panic");
    let inject_invalid = args.flag("--inject-invalid");
    let replay = args.flag("--replay");
    let prune = args.flag("--prune");
    let json = args.flag("--json");
    if replay && inject_panic {
        args.fail("--replay and --inject-panic are mutually exclusive");
    }
    if prune && (replay || inject_panic || inject_invalid) {
        args.fail("--prune is mutually exclusive with the other modes");
    }
    if !args.finish().is_empty() {
        eprintln!("dse_smoke: takes no positional arguments");
        std::process::exit(salam_bench::cli::EXIT_USAGE);
    }
    let spec = SweepSpec::new("smoke", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=8,u=2]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 })
        }))
        .kernel(KernelSpec::bench(machsuite::Bench::SpmvCrs))
        .axis(Axis::spm_ports(&[1, 2]))
        .axis(Axis::reservation_entries(&[8, 64]));
    let points = spec.points();

    // --prune: the same sweep through flow-based pre-flight pruning. Per
    // kernel, the cheapest-ports / largest-window point is the reference;
    // any sibling whose static flow bound proves it can never beat that
    // reference becomes a `pruned:F005` row without simulating. The probe
    // then re-simulates every pruned point once and asserts the dominance
    // chain held — the CI proof that pruned rows were never winners.
    if prune {
        let refs: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.label().ends_with("/ports=1/window=64"))
            .map(|(i, _)| i)
            .collect();
        let run = run_sweep_pruned(&points, &refs, &DseOptions::default());
        let mut t = SweepTable::new(
            "DSE smoke sweep (pruned)",
            &["point", "cycles", "dominant_bottleneck", "cached"],
        );
        for (point, outcome) in points.iter().zip(&run.outcomes) {
            match outcome.payload() {
                Some(r) => {
                    assert!(r.verified, "{} failed verification", point.label());
                    t.row(vec![
                        point.label(),
                        r.cycles.to_string(),
                        r.dominant_bottleneck().to_string(),
                        if outcome.from_cache { "yes" } else { "no" }.into(),
                    ]);
                }
                None => t.row(vec![
                    point.label(),
                    outcome.failure_label().unwrap(),
                    String::new(),
                    "no".into(),
                ]),
            }
        }
        for (point, outcome) in points.iter().zip(&run.outcomes) {
            let Some(diag) = outcome.pruned() else {
                continue;
            };
            // Prove the pruned point was never a winner: its measured
            // cycles must respect the static bound, and the reference the
            // verdict cites must be at least as fast.
            let bound = point.static_profile().expect("pruned points have profiles");
            let resim = point.run();
            assert!(
                resim.cycles >= bound.cycle_bound,
                "{}: simulated {} cycles below its static bound {} — unsound",
                point.label(),
                resim.cycles,
                bound.cycle_bound,
            );
            let best_ref = refs
                .iter()
                .filter(|&&r| points[r].kernel.id == point.kernel.id)
                .filter_map(|&r| run.outcomes[r].payload())
                .map(|r| r.cycles)
                .min()
                .expect("a same-kernel reference simulated");
            assert!(
                best_ref <= resim.cycles,
                "{}: pruned ({}) but re-simulation beat the reference: {} < {}",
                point.label(),
                diag.message,
                resim.cycles,
                best_ref,
            );
            eprintln!(
                "dse_smoke: pruned {} verified: bound {} <= resimulated {} and reference {} wins",
                point.label(),
                bound.cycle_bound,
                resim.cycles,
                best_ref,
            );
        }
        assert!(
            run.pruned > 0,
            "prune probe expected at least one pruned point"
        );
        t.set_summary(run.summary_pairs());
        if json {
            print!("{}", t.to_json());
        } else {
            println!("{}", t.render_auto());
        }
        println!("dse: {}", run.summary());
        return;
    }

    // --replay: the same sweep through the trace-replay fast path. Rows
    // gain an `engine` column (sim / replay / sim-fallback); the summary
    // line reports the replayed/simulated split CI asserts on.
    if replay {
        let mut pts = points.clone();
        if inject_invalid {
            pts[0].config.spm_read_ports = 0; // C001: rejected pre-flight
        }
        let opts = ReplayOptions {
            inner: DseOptions::default(),
            check: false,
        };
        let run = run_replay_sweep(&pts, &StandaloneConfig::default(), &opts);
        let mut t = SweepTable::new(
            "DSE smoke sweep (replay)",
            &["point", "cycles", "dominant_bottleneck", "engine", "cached"],
        );
        for ((point, outcome), prov) in pts.iter().zip(&run.outcomes).zip(&run.provenance) {
            match outcome.payload() {
                Some(r) => {
                    assert!(r.verified, "{} failed verification", point.label());
                    t.row(vec![
                        point.label(),
                        r.cycles.to_string(),
                        r.dominant_bottleneck().to_string(),
                        prov.engine.label().to_string(),
                        if outcome.from_cache { "yes" } else { "no" }.into(),
                    ]);
                }
                None => t.row(vec![
                    point.label(),
                    outcome.failure_label().unwrap(),
                    String::new(),
                    String::new(),
                    "no".into(),
                ]),
            }
        }
        t.set_summary(run.summary_pairs());
        if json {
            print!("{}", t.to_json());
        } else {
            println!("{}", t.render_auto());
        }
        println!("dse: {}", run.summary());
        return;
    }

    let jobs: Vec<SmokeJob> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut inner = p.clone();
            if inject_invalid && i == 0 {
                inner.config.spm_read_ports = 0; // C001: rejected pre-flight
            }
            SmokeJob {
                inner,
                poisoned: inject_panic && i == 0,
            }
        })
        .collect();
    let run = run_sweep(&jobs, &DseOptions::default());

    let mut t = SweepTable::new(
        "DSE smoke sweep",
        &["point", "cycles", "dominant_bottleneck", "cached"],
    );
    for (point, outcome) in points.iter().zip(&run.outcomes) {
        match outcome.payload() {
            Some(r) => {
                assert!(r.verified, "{} failed verification", point.label());
                t.row(vec![
                    point.label(),
                    r.cycles.to_string(),
                    r.dominant_bottleneck().to_string(),
                    if outcome.from_cache { "yes" } else { "no" }.into(),
                ]);
            }
            None => t.row(vec![
                point.label(),
                outcome.failure_label().unwrap(),
                String::new(),
                "no".into(),
            ]),
        }
    }
    t.set_summary(run.summary_pairs());
    if json {
        print!("{}", t.to_json());
    } else {
        println!("{}", t.render_auto());
    }
    // The stable marker CI asserts on — always the last line, in both
    // output modes.
    println!("dse: {}", run.summary());
}
