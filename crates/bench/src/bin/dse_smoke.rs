//! A tiny DSE smoke sweep for CI: 2 kernels × 4 design points.
//!
//! Honors the engine's environment knobs (`SALAM_JOBS`, `SALAM_DSE_CACHE`,
//! `SALAM_DSE_NO_CACHE`) and ends with the `dse: hits=… misses=…` summary
//! line CI asserts on: the second invocation against the same cache
//! directory must report `misses=0`.

use salam::standalone::StandaloneConfig;
use salam_dse::{run_sweep, Axis, DseOptions, KernelSpec, SweepSpec, SweepTable};

fn main() {
    let spec = SweepSpec::new("smoke", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=8,u=2]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 })
        }))
        .kernel(KernelSpec::bench(machsuite::Bench::SpmvCrs))
        .axis(Axis::spm_ports(&[1, 2]))
        .axis(Axis::reservation_entries(&[8, 64]));
    let points = spec.points();
    let run = run_sweep(&points, &DseOptions::default());

    let mut t = SweepTable::new(
        "DSE smoke sweep",
        &["point", "cycles", "dominant_bottleneck", "cached"],
    );
    for (point, outcome) in points.iter().zip(&run.outcomes) {
        assert!(
            outcome.payload.verified,
            "{} failed verification",
            point.label()
        );
        t.row(vec![
            point.label(),
            outcome.payload.cycles.to_string(),
            outcome.payload.dominant_bottleneck().to_string(),
            if outcome.from_cache { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{}", t.render_auto());
    println!("dse: {}", run.summary());
}
