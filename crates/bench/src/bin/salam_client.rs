//! `salam_client` — the command-line client for `salam_serve`.
//!
//! One subcommand per wire op; the server's JSON response is printed to
//! stdout verbatim (except `prom`, which unwraps the response and prints
//! the raw Prometheus text exposition). Exits 0 when the server answered
//! `ok: true`, 1 when it answered with a rejection or error (the typed
//! code is in the output), and 2 on usage errors.
//!
//! ```text
//! salam_client ADDR submit TENANT JOB_JSON     # JOB_JSON: {"type":"kernel",...}
//! salam_client ADDR status ID
//! salam_client ADDR wait ID
//! salam_client ADDR cancel ID
//! salam_client ADDR result ID ARTIFACT         # report|trace|csv|table|error|lint|postmortem
//! salam_client ADDR metrics
//! salam_client ADDR prom                       # metrics, Prometheus text format
//! salam_client ADDR stats
//! salam_client ADDR shutdown
//! ```
//!
//! Resilience options (PR 9): `--deadline-ms N` attaches a deadline to a
//! `submit` — the server cancels the job cooperatively once it expires.
//! `--retry N` retries a submit up to N times when the server sheds load
//! (`overloaded`) or fast-fails (`circuit-open`), sleeping the server's
//! `retry_after_ms` hint between attempts.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use salam_bench::cli::{Args, EXIT_FINDINGS, EXIT_USAGE};

const USAGE: &str = "ADDR (submit [--deadline-ms N] [--retry N] TENANT JOB_JSON |\n\
     \x20            status ID | wait ID | cancel ID |\n\
     \x20            result ID ARTIFACT | metrics | prom | stats | shutdown)";

/// One request/response round trip on a fresh connection.
fn round_trip(addr: &str, request: &str) -> String {
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("salam_client: cannot connect to {addr}: {e}");
            std::process::exit(EXIT_FINDINGS);
        }
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    stream
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| stream.flush())
        .unwrap_or_else(|e| {
            eprintln!("salam_client: send failed: {e}");
            std::process::exit(EXIT_FINDINGS);
        });
    let mut response = String::new();
    if reader.read_line(&mut response).unwrap_or(0) == 0 {
        eprintln!("salam_client: server closed the connection");
        std::process::exit(EXIT_FINDINGS);
    }
    response
}

/// `true` when the rejection code is transient and worth retrying.
fn retryable(parsed: Option<&salam_obs::json::Value>) -> bool {
    parsed
        .and_then(|v| v.get("code").and_then(|c| c.as_str()))
        .is_some_and(|code| code == "overloaded" || code == "circuit-open")
}

fn main() {
    let mut args = Args::parse("salam_client", USAGE);
    let deadline_ms = args.opt_u64("--deadline-ms");
    let retry = args.opt_u64("--retry").unwrap_or(0);
    let argv = args.finish();
    let mut it = argv.iter().map(String::as_str);
    let usage = || -> ! {
        eprintln!("usage: salam_client {USAGE}");
        std::process::exit(EXIT_USAGE);
    };
    let Some(addr) = it.next() else { usage() };
    let Some(cmd) = it.next() else { usage() };
    let rest: Vec<&str> = it.collect();

    let request = match (cmd, rest.as_slice()) {
        ("submit", [tenant, job]) => match deadline_ms {
            Some(ms) => {
                format!(r#"{{"op":"submit","tenant":"{tenant}","deadline_ms":{ms},"job":{job}}}"#)
            }
            None => format!(r#"{{"op":"submit","tenant":"{tenant}","job":{job}}}"#),
        },
        ("status", [id]) => format!(r#"{{"op":"status","id":{id}}}"#),
        ("wait", [id]) => format!(r#"{{"op":"wait","id":{id}}}"#),
        ("cancel", [id]) => format!(r#"{{"op":"cancel","id":{id}}}"#),
        ("result", [id, artifact]) => {
            format!(r#"{{"op":"result","id":{id},"artifact":"{artifact}"}}"#)
        }
        ("metrics", []) => r#"{"op":"metrics"}"#.to_string(),
        ("prom", []) => r#"{"op":"metrics","format":"prom"}"#.to_string(),
        ("stats", []) => r#"{"op":"stats"}"#.to_string(),
        ("shutdown", []) => r#"{"op":"shutdown"}"#.to_string(),
        _ => usage(),
    };

    let mut response = round_trip(addr, &request);
    let mut parsed = salam_obs::json::parse(&response).ok();
    // Honor the server's backpressure hint: a shed or fast-failed submit
    // carries `retry_after_ms`; sleep that long and try again.
    let mut attempts = 0;
    while cmd == "submit"
        && attempts < retry
        && parsed
            .as_ref()
            .and_then(|v| v.get("ok").and_then(|b| b.as_bool()))
            == Some(false)
        && retryable(parsed.as_ref())
    {
        let delay_ms = parsed
            .as_ref()
            .and_then(|v| v.get("retry_after_ms").and_then(|d| d.as_f64()))
            .map_or(250, |f| f as u64);
        attempts += 1;
        eprintln!("salam_client: retry {attempts}/{retry} after {delay_ms}ms");
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        response = round_trip(addr, &request);
        parsed = salam_obs::json::parse(&response).ok();
    }

    // `prom` responses wrap a text document in a JSON string; unwrap it so
    // the output is scrape-able Prometheus exposition, not a JSON line.
    let prom_text = (cmd == "prom")
        .then_some(parsed.as_ref())
        .flatten()
        .and_then(|v| v.get("prom").and_then(|p| p.as_str().map(String::from)));
    match &prom_text {
        Some(text) => print!("{text}"),
        None => print!("{response}"),
    }

    let ok = parsed
        .and_then(|v| v.get("ok").and_then(|b| b.as_bool()))
        .unwrap_or(false);
    if !ok {
        std::process::exit(EXIT_FINDINGS);
    }
}
