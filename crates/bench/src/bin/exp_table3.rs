//! Table III — system validation: simulated end-to-end times (compute, bulk
//! transfer, total) against the analytical FPGA-style reference.

use machsuite::Bench;
use salam_bench::table::{mean_abs_pct, pct_err, Table};
use salam_bench::table3::{reference_model, simulate_system};

fn main() {
    let mut t = Table::new(
        "Table III: system validation (us)",
        &[
            "bench",
            "ref comp",
            "ref xfer",
            "ref total",
            "sim comp",
            "sim xfer",
            "sim total",
            "e_comp%",
            "e_xfer%",
            "e_tot%",
        ],
    );
    let (mut ec, mut ex, mut et) = (Vec::new(), Vec::new(), Vec::new());
    for bench in [
        Bench::FftStrided,
        Bench::GemmNcubed,
        Bench::Stencil2d,
        Bench::Stencil3d,
        Bench::MdKnn,
    ] {
        let k = bench.build_standard();
        let reference = reference_model(&k);
        let (sim, verified) = simulate_system(&k);
        assert!(verified, "{} failed system verification", k.name);
        let e1 = pct_err(sim.compute_us, reference.compute_us);
        let e2 = pct_err(sim.xfer_us, reference.xfer_us);
        let e3 = pct_err(sim.total_us, reference.total_us);
        ec.push(e1);
        ex.push(e2);
        et.push(e3);
        t.row(vec![
            bench.label().into(),
            format!("{:.2}", reference.compute_us),
            format!("{:.2}", reference.xfer_us),
            format!("{:.2}", reference.total_us),
            format!("{:.2}", sim.compute_us),
            format!("{:.2}", sim.xfer_us),
            format!("{:.2}", sim.total_us),
            format!("{e1:+.2}"),
            format!("{e2:+.2}"),
            format!("{e3:+.2}"),
        ]);
    }
    println!("{}", t.render_auto());
    println!(
        "average |error|: compute {:.2}%, transfer {:.2}%, total {:.2}%  (paper: 1.94 / 2.35 / 1.62)",
        mean_abs_pct(&ec),
        mean_abs_pct(&ex),
        mean_abs_pct(&et)
    );
}
