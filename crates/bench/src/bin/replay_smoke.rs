//! `replay_smoke` — the trace-replay accuracy/speedup gate for CI.
//!
//! Runs every MachSuite kernel over a three-axis replay-safe grid in
//! *check mode*: each replay-eligible point is both re-scheduled
//! analytically and fully simulated, so the measured cycle error and
//! wall-clock speedup are real, not projected. The run fails (exit 1)
//! when any kernel's error exceeds 2%, any kernel's median speedup is
//! not > 1, or any replayed point fell back below the static lower
//! bound.
//!
//! `--out PATH` writes the per-kernel rollup as `BENCH_replay.json`
//! (per-kernel max error + median/max speedup; the workflow uploads it
//! as an artifact). `--json` prints the result table as JSON instead of
//! the aligned text table. The last stdout line is always the stable
//! `replay: …` marker CI greps.

use machsuite::Bench;
use salam::standalone::StandaloneConfig;
use salam_bench::cli::{Args, EXIT_FINDINGS, EXIT_USAGE};
use salam_dse::{
    run_replay_sweep, Axis, DseOptions, EngineKind, KernelSpec, ReplayOptions, SweepSpec,
    SweepTable,
};

/// Median of an unsorted sample (mean of the middle pair when even).
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// One kernel's accuracy/speedup rollup over the grid.
struct KernelRollup {
    name: String,
    points: usize,
    replayed: usize,
    max_err_pct: f64,
    speedups: Vec<f64>,
}

fn main() {
    let mut args = Args::parse("replay_smoke", "[--json] [--out PATH]");
    let json = args.flag("--json");
    let out: Option<String> = args.opt("--out");
    if !args.finish().is_empty() {
        eprintln!("replay_smoke: takes no positional arguments");
        std::process::exit(EXIT_USAGE);
    }

    // Three replay-safe axes (ports, SPM latency, outstanding-read cap)
    // over all nine kernels — the acceptance grid from the paper issue.
    let reads = [8usize, 64].iter().fold(Axis::new("reads"), |a, &v| {
        a.setting(v.to_string(), move |c| c.engine.max_outstanding_reads = v)
    });
    let mut spec = SweepSpec::new("replay-smoke", StandaloneConfig::default())
        .axis(Axis::spm_ports(&[1, 2]))
        .axis(Axis::spm_latency(&[1, 3]))
        .axis(reads);
    for bench in Bench::ALL {
        spec = spec.kernel(KernelSpec::bench(bench));
    }
    let points = spec.points();
    let opts = ReplayOptions {
        // Check-mode timings are only honest when nothing hits a cache.
        inner: DseOptions::default().without_cache(),
        check: true,
    };
    let run = run_replay_sweep(&points, &StandaloneConfig::default(), &opts);

    let mut rollups: Vec<KernelRollup> = Bench::ALL
        .into_iter()
        .map(|b| KernelRollup {
            name: b.label().to_ascii_lowercase(),
            points: 0,
            replayed: 0,
            max_err_pct: 0.0,
            speedups: Vec::new(),
        })
        .collect();
    for (point, prov) in points.iter().zip(&run.provenance) {
        let roll = rollups
            .iter_mut()
            .find(|r| r.name == point.kernel.id)
            .expect("every point belongs to a MachSuite kernel");
        roll.points += 1;
        if prov.engine == EngineKind::Replay {
            roll.replayed += 1;
            if let Some(err) = prov.err_pct {
                roll.max_err_pct = roll.max_err_pct.max(err);
            }
            if let Some(s) = prov.speedup {
                roll.speedups.push(s);
            }
        }
    }

    let mut findings: Vec<String> = Vec::new();
    if run.failed > 0 || run.invalid > 0 {
        findings.push(format!(
            "grid had failed={} invalid={} points",
            run.failed, run.invalid
        ));
    }
    if run.fallbacks > 0 {
        findings.push(format!(
            "{} replayed point(s) undercut the static lower bound and fell back to simulation",
            run.fallbacks
        ));
    }
    for roll in &rollups {
        if roll.max_err_pct > 2.0 {
            findings.push(format!(
                "{}: replay error {:.3}% exceeds the 2% gate",
                roll.name, roll.max_err_pct
            ));
        }
        if median(&roll.speedups) <= 1.0 {
            findings.push(format!(
                "{}: median replay speedup {:.2}x is not > 1",
                roll.name,
                median(&roll.speedups)
            ));
        }
    }

    let mut t = SweepTable::new(
        "Trace-replay accuracy/speedup smoke",
        &[
            "kernel",
            "points",
            "replayed",
            "max_err_pct",
            "median_speedup",
            "max_speedup",
        ],
    );
    for roll in &rollups {
        let max_speedup = roll.speedups.iter().cloned().fold(0.0f64, f64::max);
        t.row(vec![
            roll.name.to_string(),
            roll.points.to_string(),
            roll.replayed.to_string(),
            format!("{:.3}", roll.max_err_pct),
            format!("{:.1}", median(&roll.speedups)),
            format!("{max_speedup:.1}"),
        ]);
    }
    t.set_summary(run.summary_pairs());
    if json {
        print!("{}", t.to_json());
    } else {
        println!("{}", t.render_auto());
    }

    // BENCH_replay.json: the machine-readable artifact the workflow
    // uploads — per-kernel max error and speedup distribution, plus the
    // grid-wide medians.
    let all_speedups: Vec<f64> = rollups.iter().flat_map(|r| r.speedups.clone()).collect();
    let max_err = rollups.iter().map(|r| r.max_err_pct).fold(0.0f64, f64::max);
    if let Some(path) = &out {
        let mut j = String::from("{\"bench\": \"replay\", \"grid\": {\"axes\": [\"ports\", \"spm-latency\", \"reads\"], \"points_per_kernel\": 8}, \"kernels\": [");
        for (i, roll) in rollups.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let max_speedup = roll.speedups.iter().cloned().fold(0.0f64, f64::max);
            j.push_str(&format!(
                "{{\"kernel\": \"{}\", \"points\": {}, \"replayed\": {}, \"max_err_pct\": {:.4}, \"median_speedup\": {:.2}, \"max_speedup\": {:.2}}}",
                roll.name,
                roll.points,
                roll.replayed,
                roll.max_err_pct,
                median(&roll.speedups),
                max_speedup
            ));
        }
        j.push_str(&format!(
            "], \"summary\": {{\"points\": {}, \"replayed\": {}, \"fallbacks\": {}, \"max_err_pct\": {:.4}, \"median_speedup\": {:.2}}}}}\n",
            run.outcomes.len(),
            run.replayed,
            run.fallbacks,
            max_err,
            median(&all_speedups)
        ));
        if let Err(e) = std::fs::write(path, &j) {
            eprintln!("replay_smoke: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("replay benchmark written to {path}");
    }

    // Stable marker — always the last line, in both output modes.
    println!(
        "replay: kernels={} points={} replayed={} fallbacks={} max_err_pct={:.3} median_speedup={:.1}x {}",
        rollups.len(),
        run.outcomes.len(),
        run.replayed,
        run.fallbacks,
        max_err,
        median(&all_speedups),
        if findings.is_empty() { "ok" } else { "FINDINGS" }
    );
    if !findings.is_empty() {
        for f in &findings {
            eprintln!("replay_smoke: {f}");
        }
        std::process::exit(EXIT_FINDINGS);
    }
}
