//! CNN layer-1 kernels (§IV-E): 2-D convolution, ReLU, and 2×2 max-pool,
//! in both memory-addressed and streaming forms.
//!
//! Dimensions are fixed to the experiment: a 24×24 single-channel input,
//! a 3×3 kernel (valid padding → 22×22), ReLU, then 2×2/stride-2 pooling
//! (→ 11×11).

use salam_ir::{FloatPredicate, Function, FunctionBuilder, IntPredicate, Type};

/// Input width/height.
pub const IN_DIM: usize = 24;
/// Convolution kernel size.
pub const K: usize = 3;
/// Convolution output dimension (valid padding).
pub const CONV_DIM: usize = IN_DIM - K + 1; // 22
/// Pool output dimension.
pub const POOL_DIM: usize = CONV_DIM / 2; // 11

/// Golden layer: returns `(conv_out, relu_out, pool_out)`.
pub fn golden(input: &[f32], weights: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut conv = vec![0.0f32; CONV_DIM * CONV_DIM];
    for r in 0..CONV_DIM {
        for c in 0..CONV_DIM {
            let mut acc = 0.0;
            for k1 in 0..K {
                for k2 in 0..K {
                    acc += weights[k1 * K + k2] * input[(r + k1) * IN_DIM + (c + k2)];
                }
            }
            conv[r * CONV_DIM + c] = acc;
        }
    }
    let relu: Vec<f32> = conv.iter().map(|&x| x.max(0.0)).collect();
    let mut pool = vec![0.0f32; POOL_DIM * POOL_DIM];
    for r in 0..POOL_DIM {
        for c in 0..POOL_DIM {
            let mut m = f32::MIN;
            for dr in 0..2 {
                for dc in 0..2 {
                    m = m.max(relu[(2 * r + dr) * CONV_DIM + (2 * c + dc)]);
                }
            }
            pool[r * POOL_DIM + c] = m;
        }
    }
    (conv, relu, pool)
}

/// 3×3 convolution. `stream_out` writes every output to the bare `out`
/// pointer (a stream buffer) instead of indexed memory.
pub fn conv_kernel(stream_out: bool) -> Function {
    let mut fb = FunctionBuilder::new(
        "cnn_conv",
        &[
            ("input", Type::Ptr),
            ("weights", Type::Ptr),
            ("out", Type::Ptr),
        ],
    );
    let (input, weights, out) = (fb.arg(0), fb.arg(1), fb.arg(2));
    let zero = fb.i64c(0);
    let od = fb.i64c(CONV_DIM as i64);
    fb.counted_loop("r", zero, od, |fb, r| {
        let zero = fb.i64c(0);
        let od = fb.i64c(CONV_DIM as i64);
        fb.counted_loop("c", zero, od, |fb, c| {
            let in_dim = fb.i64c(IN_DIM as i64);
            let mut acc = fb.f32c(0.0);
            for k1 in 0..K as i64 {
                for k2 in 0..K as i64 {
                    let widx = fb.i64c(k1 * K as i64 + k2);
                    let pw = fb.gep1(Type::F32, weights, widx, "pw");
                    let w = fb.load(Type::F32, pw, "w");
                    let k1v = fb.i64c(k1);
                    let rr = fb.add(r, k1v, "rr");
                    let roff = fb.mul(rr, in_dim, "roff");
                    let k2v = fb.i64c(k2);
                    let cc = fb.add(c, k2v, "cc");
                    let idx = fb.add(roff, cc, "idx");
                    let pi = fb.gep1(Type::F32, input, idx, "pi");
                    let x = fb.load(Type::F32, pi, "x");
                    let prod = fb.fmul(w, x, "prod");
                    acc = fb.fadd(acc, prod, "acc");
                }
            }
            if stream_out {
                fb.store(acc, out);
            } else {
                let od = fb.i64c(CONV_DIM as i64);
                let roff = fb.mul(r, od, "oroff");
                let oidx = fb.add(roff, c, "oidx");
                let po = fb.gep1(Type::F32, out, oidx, "po");
                fb.store(acc, po);
            }
        });
    });
    fb.ret();
    fb.finish()
}

/// Elementwise ReLU over `CONV_DIM²` values. Stream sides read/write the
/// bare pointers.
pub fn relu_kernel(stream_in: bool, stream_out: bool) -> Function {
    let mut fb = FunctionBuilder::new("cnn_relu", &[("input", Type::Ptr), ("out", Type::Ptr)]);
    let (input, out) = (fb.arg(0), fb.arg(1));
    let zero = fb.i64c(0);
    let n = fb.i64c((CONV_DIM * CONV_DIM) as i64);
    fb.counted_loop("i", zero, n, |fb, i| {
        let x = if stream_in {
            fb.load(Type::F32, input, "x")
        } else {
            let p = fb.gep1(Type::F32, input, i, "p");
            fb.load(Type::F32, p, "x")
        };
        let zf = fb.f32c(0.0);
        let pos = fb.fcmp(FloatPredicate::Ogt, x, zf, "pos");
        let y = fb.select(pos, x, zf, "y");
        if stream_out {
            fb.store(y, out);
        } else {
            let po = fb.gep1(Type::F32, out, i, "po");
            fb.store(y, po);
        }
    });
    fb.ret();
    fb.finish()
}

/// 2×2 stride-2 max-pool.
///
/// * memory form (`stream_in = false`): reads the full `CONV_DIM²` input.
/// * streaming form: pops row-major values from the bare `input` pointer,
///   staging rows in a two-row line buffer at `linebuf` (private SPM) —
///   the classic streaming-pooler structure.
pub fn pool_kernel(stream_in: bool) -> Function {
    let mut fb = FunctionBuilder::new(
        "cnn_pool",
        &[
            ("input", Type::Ptr),
            ("linebuf", Type::Ptr),
            ("out", Type::Ptr),
        ],
    );
    let (input, linebuf, out) = (fb.arg(0), fb.arg(1), fb.arg(2));
    let fmax = |fb: &mut FunctionBuilder, a, b| {
        let c = fb.fcmp(FloatPredicate::Ogt, a, b, "c");
        fb.select(c, a, b, "m")
    };
    if !stream_in {
        let zero = fb.i64c(0);
        let pd = fb.i64c(POOL_DIM as i64);
        fb.counted_loop("r", zero, pd, |fb, r| {
            let zero = fb.i64c(0);
            let pd = fb.i64c(POOL_DIM as i64);
            fb.counted_loop("c", zero, pd, |fb, c| {
                let cd = fb.i64c(CONV_DIM as i64);
                let two = fb.i64c(2);
                let r2 = fb.mul(r, two, "r2");
                let c2 = fb.mul(c, two, "c2");
                let mut vals = Vec::new();
                for dr in 0..2i64 {
                    for dc in 0..2i64 {
                        let drv = fb.i64c(dr);
                        let rr = fb.add(r2, drv, "rr");
                        let roff = fb.mul(rr, cd, "roff");
                        let dcv = fb.i64c(dc);
                        let cc = fb.add(c2, dcv, "cc");
                        let idx = fb.add(roff, cc, "idx");
                        let p = fb.gep1(Type::F32, input, idx, "p");
                        vals.push(fb.load(Type::F32, p, "v"));
                    }
                }
                let m1 = fmax(fb, vals[0], vals[1]);
                let m2 = fmax(fb, vals[2], vals[3]);
                let m = fmax(fb, m1, m2);
                let pdv = fb.i64c(POOL_DIM as i64);
                let roff = fb.mul(r, pdv, "oroff");
                let oidx = fb.add(roff, c, "oidx");
                let po = fb.gep1(Type::F32, out, oidx, "po");
                fb.store(m, po);
            });
        });
    } else {
        // Streaming pooler with a two-row line buffer.
        let zero = fb.i64c(0);
        let cd = fb.i64c(CONV_DIM as i64);
        fb.counted_loop("r", zero, cd, |fb, r| {
            let zero = fb.i64c(0);
            let cd = fb.i64c(CONV_DIM as i64);
            fb.counted_loop("c", zero, cd, |fb, c| {
                let x = fb.load(Type::F32, input, "x"); // stream pop
                let one = fb.i64c(1);
                let rpar = fb.and(r, one, "rpar");
                let cdv = fb.i64c(CONV_DIM as i64);
                let lb_row = fb.mul(rpar, cdv, "lb_row");
                let lb_idx = fb.add(lb_row, c, "lb_idx");
                let plb = fb.gep1(Type::F32, linebuf, lb_idx, "plb");
                fb.store(x, plb);

                // Emit a pooled value on odd rows at odd columns.
                let odd_r = fb.icmp(IntPredicate::Eq, rpar, one, "odd_r");
                let cpar = fb.and(c, one, "cpar");
                let odd_c = fb.icmp(IntPredicate::Eq, cpar, one, "odd_c");
                let emit = fb.and(odd_r, odd_c, "emit");
                let emit_b = fb.add_block("emit");
                let skip_b = fb.add_block("skip");
                fb.cond_br(emit, emit_b, skip_b);
                fb.position_at(emit_b);
                let cm1 = fb.sub(c, one, "cm1");
                let p00 = fb.gep1(Type::F32, linebuf, cm1, "p00");
                let v00 = fb.load(Type::F32, p00, "v00");
                let p01 = fb.gep1(Type::F32, linebuf, c, "p01");
                let v01 = fb.load(Type::F32, p01, "v01");
                let row1m1 = fb.add(cdv, cm1, "row1m1");
                let p10 = fb.gep1(Type::F32, linebuf, row1m1, "p10");
                let v10 = fb.load(Type::F32, p10, "v10");
                let m1 = fmax(fb, v00, v01);
                let m2 = fmax(fb, v10, x);
                let m = fmax(fb, m1, m2);
                let two = fb.i64c(2);
                let orow = fb.sdiv(r, two, "orow");
                let ocol = fb.sdiv(c, two, "ocol");
                let pdv = fb.i64c(POOL_DIM as i64);
                let roff = fb.mul(orow, pdv, "roff");
                let oidx = fb.add(roff, ocol, "oidx");
                let po = fb.gep1(Type::F32, out, oidx, "po");
                fb.store(m, po);
                fb.br(skip_b);
                fb.position_at(skip_b);
            });
        });
    }
    fb.ret();
    fb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::interp::{run_function, NullObserver, RtVal, SparseMemory};

    fn input_and_weights() -> (Vec<f32>, Vec<f32>) {
        let mut rng = machsuite::data::rng(0xC44);
        let input = machsuite::data::f32_vec(&mut rng, IN_DIM * IN_DIM, -1.0, 1.0);
        let weights = machsuite::data::f32_vec(&mut rng, K * K, -1.0, 1.0);
        (input, weights)
    }

    #[test]
    fn memory_form_pipeline_matches_golden() {
        let (input, weights) = input_and_weights();
        let (want_conv, want_relu, want_pool) = golden(&input, &weights);

        let mut mem = SparseMemory::new();
        mem.write_f32_slice(0x1000, &input);
        mem.write_f32_slice(0x2000, &weights);
        let conv = conv_kernel(false);
        salam_ir::verify_function(&conv).unwrap();
        run_function(
            &conv,
            &[RtVal::P(0x1000), RtVal::P(0x2000), RtVal::P(0x3000)],
            &mut mem,
            &mut NullObserver,
            50_000_000,
        )
        .unwrap();
        let got_conv = mem.read_f32_slice(0x3000, CONV_DIM * CONV_DIM);
        machsuite::data::check_f32_close("conv", &got_conv, &want_conv, 1e-4).unwrap();

        let relu = relu_kernel(false, false);
        run_function(
            &relu,
            &[RtVal::P(0x3000), RtVal::P(0x4000)],
            &mut mem,
            &mut NullObserver,
            50_000_000,
        )
        .unwrap();
        let got_relu = mem.read_f32_slice(0x4000, CONV_DIM * CONV_DIM);
        machsuite::data::check_f32_close("relu", &got_relu, &want_relu, 1e-4).unwrap();

        let pool = pool_kernel(false);
        run_function(
            &pool,
            &[RtVal::P(0x4000), RtVal::P(0x5000), RtVal::P(0x6000)],
            &mut mem,
            &mut NullObserver,
            50_000_000,
        )
        .unwrap();
        let got_pool = mem.read_f32_slice(0x6000, POOL_DIM * POOL_DIM);
        machsuite::data::check_f32_close("pool", &got_pool, &want_pool, 1e-4).unwrap();
    }

    #[test]
    fn streaming_pooler_matches_memory_pooler() {
        // Feed the relu output "stream" through interpreter memory: since
        // the interpreter reads the same address repeatedly, emulate the
        // stream by running the line-buffer pooler against a memory where
        // the stream address is rewritten per pop. Simplest check: the
        // streaming pooler against a constant stream (all values equal)
        // yields that constant everywhere.
        let pool = pool_kernel(true);
        salam_ir::verify_function(&pool).unwrap();
        let mut mem = SparseMemory::new();
        mem.write_f32_slice(0x100, &[2.5]);
        run_function(
            &pool,
            &[RtVal::P(0x100), RtVal::P(0x1000), RtVal::P(0x2000)],
            &mut mem,
            &mut NullObserver,
            50_000_000,
        )
        .unwrap();
        let got = mem.read_f32_slice(0x2000, POOL_DIM * POOL_DIM);
        assert!(got.iter().all(|&v| (v - 2.5).abs() < 1e-6), "{got:?}");
    }

    #[test]
    fn stream_variants_verify() {
        for f in [
            conv_kernel(true),
            relu_kernel(true, true),
            pool_kernel(true),
        ] {
            salam_ir::verify_function(&f).unwrap();
        }
    }
}
