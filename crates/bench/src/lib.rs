//! # salam-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures.
//!
//! * [`table`] — plain-text/CSV table rendering and error metrics.
//! * [`cli`] — the shared argument-parsing helper and exit-code
//!   conventions every workspace binary follows.
//! * [`bottleneck`] — profiled runs (cycle attribution + dynamic critical
//!   path) and the deterministic renderers behind `salam_report`.
//! * [`runners`] — timed runs of the three execution models (SALAM engine,
//!   HLS static schedule, Aladdin trace flow) on MachSuite kernels.
//! * [`cnn`] — the CNN layer-1 kernels (conv/ReLU/pool) of §IV-E, including
//!   streaming variants with a line-buffered pooler.
//! * [`fig16`] — the three producer-consumer integration scenarios of
//!   Fig. 16 as full-system simulations.
//! * [`table3`] — the end-to-end system-validation flow of Table III
//!   (DMA in → accelerate → DMA out) with its analytical reference model.
//!
//! One binary per table/figure lives in `src/bin/exp_*.rs`; plain-timing
//! benches ([`microbench`]) covering the same experiments at reduced scale
//! live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod cli;
pub mod cnn;
pub mod fig16;
pub mod microbench;
pub mod runners;
pub mod table;
pub mod table3;
