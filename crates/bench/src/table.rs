//! Minimal table rendering for experiment output.

/// A printable results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders CSV when the process was invoked with `--csv` (or
    /// `SALAM_CSV=1`), aligned plain text otherwise.
    pub fn render_auto(&self) -> String {
        let csv = std::env::args().any(|a| a == "--csv")
            || std::env::var("SALAM_CSV")
                .map(|v| v == "1")
                .unwrap_or(false);
        if csv {
            format!(
                "# {}
{}",
                self.title,
                self.to_csv()
            )
        } else {
            self.render()
        }
    }

    /// Renders aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

/// Signed percentage error of `sim` against `reference`.
pub fn pct_err(sim: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (sim - reference) / reference * 100.0
    }
}

/// Mean of absolute percentage errors.
pub fn mean_abs_pct(errors: &[f64]) -> f64 {
    if errors.is_empty() {
        0.0
    } else {
        errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    fn errors() {
        assert!((pct_err(102.0, 100.0) - 2.0).abs() < 1e-12);
        assert!((pct_err(98.0, 100.0) + 2.0).abs() < 1e-12);
        assert_eq!(pct_err(5.0, 0.0), 0.0);
        assert!((mean_abs_pct(&[2.0, -4.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
