//! Shared command-line conventions for the workspace binaries.
//!
//! Every CLI (`salam_report`, `salam_lint`, `fault_smoke`, `dse_smoke`,
//! `salam_serve`, `salam_client`) speaks the same dialect:
//!
//! * `--help` / `-h` prints usage to stdout and exits [`EXIT_OK`];
//! * unknown flags and malformed values print usage to stderr and exit
//!   [`EXIT_USAGE`];
//! * a run that completes but has findings (lint errors, violated
//!   invariants, a server-side rejection) exits [`EXIT_FINDINGS`];
//! * `--json` selects machine-readable output where the tool has one.
//!
//! [`Args`] is a deliberately small remove-as-you-match parser: binaries
//! pull out their flags and options, then call [`Args::finish`] to collect
//! positionals — anything left that still looks like a flag is a usage
//! error, so typos can't silently become positional arguments.

/// Successful run, no findings.
pub const EXIT_OK: i32 = 0;
/// The tool ran to completion and found problems (lint errors, a violated
/// invariant, a rejected submission).
pub const EXIT_FINDINGS: i32 = 1;
/// Bad invocation: unknown flag, missing value, malformed argument.
pub const EXIT_USAGE: i32 = 2;

/// One binary's argument list, consumed flag-by-flag.
pub struct Args {
    program: &'static str,
    usage: &'static str,
    args: Vec<String>,
}

impl Args {
    /// Captures `std::env::args`, handling `--help`/`-h` immediately
    /// (usage to stdout, exit 0).
    pub fn parse(program: &'static str, usage: &'static str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("usage: {program} {usage}");
            std::process::exit(EXIT_OK);
        }
        Args {
            program,
            usage,
            args,
        }
    }

    /// A parser over an explicit argument list (tests).
    pub fn from_vec(program: &'static str, usage: &'static str, args: Vec<String>) -> Self {
        Args {
            program,
            usage,
            args,
        }
    }

    /// Prints an error plus usage to stderr and exits [`EXIT_USAGE`].
    pub fn fail(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.program);
        eprintln!("usage: {} {}", self.program, self.usage);
        std::process::exit(EXIT_USAGE);
    }

    /// Consumes a boolean flag; `true` if it was present (any number of
    /// times).
    pub fn flag(&mut self, name: &str) -> bool {
        let before = self.args.len();
        self.args.retain(|a| a != name);
        self.args.len() != before
    }

    /// Consumes `name VALUE`; usage error when the value is missing.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let i = self.args.iter().position(|a| a == name)?;
        if i + 1 >= self.args.len() {
            self.fail(&format!("{name} needs a value"));
        }
        let value = self.args.remove(i + 1);
        self.args.remove(i);
        Some(value)
    }

    /// Consumes every `name VALUE` occurrence, in order (repeatable
    /// options like `--limit FU=N`).
    pub fn opts(&mut self, name: &str) -> Vec<String> {
        let mut values = Vec::new();
        while let Some(v) = self.opt(name) {
            values.push(v);
        }
        values
    }

    /// Consumes `name VALUE` and parses it; usage error on a bad number.
    pub fn opt_u64(&mut self, name: &str) -> Option<u64> {
        self.opt(name).map(|v| {
            v.parse::<u64>()
                .unwrap_or_else(|_| self.fail(&format!("{name} expects a number, got '{v}'")))
        })
    }

    /// Returns the remaining positional arguments; any leftover `-`-prefixed
    /// token is a usage error (an unknown flag, not a positional).
    pub fn finish(self) -> Vec<String> {
        if let Some(stray) = self.args.iter().find(|a| a.starts_with('-')) {
            self.fail(&format!("unknown flag '{stray}'"));
        }
        self.args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_vec("t", "u", v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_options_and_positionals_separate() {
        let mut a = args(&[
            "gemm", "--json", "--out", "x.json", "--limit", "a=1", "--limit", "b=2",
        ]);
        assert!(a.flag("--json"));
        assert!(!a.flag("--json"), "consumed");
        assert_eq!(a.opt("--out").as_deref(), Some("x.json"));
        assert_eq!(a.opts("--limit"), vec!["a=1", "b=2"]);
        assert_eq!(a.finish(), vec!["gemm"]);
    }

    #[test]
    fn numeric_options_parse() {
        let mut a = args(&["--ports", "4"]);
        assert_eq!(a.opt_u64("--ports"), Some(4));
        assert_eq!(a.opt_u64("--absent"), None);
        assert!(a.finish().is_empty());
    }
}
