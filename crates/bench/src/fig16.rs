//! The three producer-consumer integration scenarios of Fig. 16, as
//! full-system simulations of the CNN layer-1 pipeline.

use memsys::{DmaCmd, MemMsg, ScratchpadConfig, StreamBuffer, StreamBufferConfig};
use salam::{
    scratchpad_canonical_repr, AcceleratorConfig, ClusterBuilder, ClusterConfig, ComputeUnit, Host,
    HostConfig, HostOp, MemoryStyle,
};
use salam_dse::{CacheId, CachePayload, SweepJob};
use salam_ir::Function;
use sim_core::{CompId, Simulation, Tick};

use crate::cnn;

/// Which integration style to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Fig. 16a — private SPMs, DMA data movement, host synchronization.
    PrivateSpm,
    /// Fig. 16b — shared cluster SPM, host-sequenced stages.
    SharedSpm,
    /// Fig. 16c — direct stream-buffer pipelining, self-synchronized.
    Stream,
}

impl Scenario {
    /// All three, in the paper's order.
    pub const ALL: [Scenario; 3] = [Scenario::PrivateSpm, Scenario::SharedSpm, Scenario::Stream];

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::PrivateSpm => "private-spm+dma",
            Scenario::SharedSpm => "shared-spm",
            Scenario::Stream => "stream-buffers",
        }
    }
}

/// The cluster-integration knobs the Fig. 16 sweep explores. Everything
/// else in the scenario (kernel shapes, address maps, host program) is
/// fixed; these four are where the paper's integration trade-offs live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig16Params {
    /// Cluster DMA burst size in bytes.
    pub dma_burst: u32,
    /// Local crossbar width in bytes per cycle.
    pub xbar_width: u32,
    /// Stream-buffer capacity in beats (scenario C only).
    pub stream_capacity: u32,
    /// Symmetric read/write ports on every SPM (private and shared).
    pub spm_ports: u32,
}

impl Default for Fig16Params {
    /// The values the paper's Fig. 16 runs used.
    fn default() -> Self {
        Fig16Params {
            dma_burst: 64,
            xbar_width: 8,
            stream_capacity: 16,
            spm_ports: 4,
        }
    }
}

impl Fig16Params {
    fn spm_cfg(&self) -> ScratchpadConfig {
        ScratchpadConfig::default().with_ports(self.spm_ports, self.spm_ports)
    }

    fn cluster_cfg(&self, scenario: Scenario) -> ClusterConfig {
        let mut cfg = ClusterConfig {
            dma_burst: self.dma_burst,
            xbar_width: self.xbar_width,
            shared_spm: self.spm_cfg(),
            ..ClusterConfig::default()
        };
        if scenario != Scenario::SharedSpm {
            cfg.shared_spm_bytes = 0;
        }
        cfg
    }

    fn stream_cfg(&self) -> StreamBufferConfig {
        StreamBufferConfig {
            capacity_beats: self.stream_capacity,
            beat_bytes: 4,
            ..Default::default()
        }
    }

    /// Canonical knob text for the DSE cache: covers every parameter that
    /// can change a scenario's result, including the derived cluster and
    /// stream configurations.
    pub fn canonical_repr(&self, scenario: Scenario) -> String {
        let stream = self.stream_cfg();
        format!(
            "cluster: {}\nstream: capacity_beats={};beat_bytes={};latency={};period_ps={}\nprivate_spm: {}\nwindow=512",
            self.cluster_cfg(scenario).canonical_repr(),
            stream.capacity_beats,
            stream.beat_bytes,
            stream.latency_cycles,
            stream.clock.period(),
            scratchpad_canonical_repr(&self.spm_cfg()),
        )
    }
}

/// Outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// End-to-end time in nanoseconds (host program start to finish).
    pub total_ns: f64,
    /// Busy span of each accelerator `(name, ns)`.
    pub accel_spans_ns: Vec<(&'static str, f64)>,
    /// Final output verified against the golden model.
    pub verified: bool,
}

const DRAM_BASE: u64 = 0x8000_0000;
const DRAM_IN: u64 = DRAM_BASE;
const DRAM_W: u64 = DRAM_BASE + 0x1000;
const DRAM_OUT: u64 = DRAM_BASE + 0x2000;

const IN_BYTES: u64 = (cnn::IN_DIM * cnn::IN_DIM * 4) as u64;
const W_BYTES: u64 = (cnn::K * cnn::K * 4) as u64;
const CONV_BYTES: u64 = (cnn::CONV_DIM * cnn::CONV_DIM * 4) as u64;
const POOL_BYTES: u64 = (cnn::POOL_DIM * cnn::POOL_DIM * 4) as u64;

fn mmr_args(via: CompId, mmr_base: u64, args: &[u64]) -> Vec<HostOp> {
    let mut ops = Vec::new();
    for (i, &v) in args.iter().enumerate() {
        ops.push(HostOp::WriteMmr {
            via,
            addr: mmr_base + ((2 + i) as u64) * 8,
            value: v,
        });
    }
    ops
}

/// Builds and runs one scenario with the paper's default parameters.
pub fn run_scenario(scenario: Scenario) -> ScenarioResult {
    run_scenario_with(scenario, &Fig16Params::default())
}

/// Builds and runs one scenario under explicit integration parameters.
pub fn run_scenario_with(scenario: Scenario, params: &Fig16Params) -> ScenarioResult {
    let mut rng = machsuite::data::rng(0xC44);
    let input = machsuite::data::f32_vec(&mut rng, cnn::IN_DIM * cnn::IN_DIM, -1.0, 1.0);
    let weights = machsuite::data::f32_vec(&mut rng, cnn::K * cnn::K, -1.0, 1.0);
    let (_, _, want_pool) = cnn::golden(&input, &weights);

    let mut sim: Simulation<MemMsg> = Simulation::new();
    let profile = hw_profile::HardwareProfile::default_40nm();

    let mut builder = ClusterBuilder::new(params.cluster_cfg(scenario), profile.clone());

    // Kernels per scenario.
    let (conv_f, relu_f, pool_f): (Function, Function, Function) = match scenario {
        Scenario::Stream => (
            cnn::conv_kernel(true),
            cnn::relu_kernel(true, true),
            cnn::pool_kernel(true),
        ),
        _ => (
            cnn::conv_kernel(false),
            cnn::relu_kernel(false, false),
            cnn::pool_kernel(false),
        ),
    };

    // Stream buffers (scenario C) are created up front so their ranges can
    // route through the local crossbar.
    let stream_a_base = 0x3000_0000u64;
    let stream_b_base = 0x3000_1000u64;
    let (stream_a, stream_b) = if scenario == Scenario::Stream {
        let cfg = params.stream_cfg();
        let a = sim.add_component(StreamBuffer::new("stream_a", cfg));
        let b = sim.add_component(StreamBuffer::new("stream_b", cfg));
        builder.add_local_range(stream_a_base, stream_a_base + 0x100, a);
        builder.add_local_range(stream_b_base, stream_b_base + 0x100, b);
        (Some(a), Some(b))
    } else {
        (None, None)
    };

    // Accelerator memory styles.
    let conv_spm = 0x1000_0000u64;
    let relu_spm = 0x1100_0000u64;
    let pool_spm = 0x1200_0000u64;
    let style = |base| MemoryStyle::PrivateSpm {
        base,
        size: 0x4000,
        spm: params.spm_cfg(),
    };
    let conv_style = match scenario {
        Scenario::SharedSpm => MemoryStyle::GlobalOnly,
        _ => style(conv_spm),
    };
    let relu_style = match scenario {
        Scenario::PrivateSpm => style(relu_spm),
        _ => MemoryStyle::GlobalOnly,
    };
    let pool_style = match scenario {
        Scenario::SharedSpm => MemoryStyle::GlobalOnly,
        _ => style(pool_spm),
    };

    let conv_mmr = 0x4000_0000u64;
    let relu_mmr = 0x4000_1000u64;
    let pool_mmr = 0x4000_2000u64;
    // A deeper reservation window (identical in every scenario) hides the
    // cluster-interconnect latency.
    let acc_cfg = |name: &str| {
        let mut c = AcceleratorConfig::new(name);
        c.engine.reservation_entries = 512;
        c
    };
    builder.add_accelerator(acc_cfg("conv"), conv_f, conv_style, conv_mmr, None);
    builder.add_accelerator(acc_cfg("relu"), relu_f, relu_style, relu_mmr, None);
    builder.add_accelerator(acc_cfg("pool"), pool_f, pool_style, pool_mmr, None);

    let (cluster, dram, gxbar) = salam::build_system(&mut sim, builder, DRAM_BASE, 1 << 20);
    let _ = stream_a;
    let _ = stream_b;

    // Stage the inputs in DRAM.
    {
        let d = sim.component_as_mut::<memsys::Dram>(dram).unwrap();
        d.poke(DRAM_IN, &machsuite::data::f32_bytes(&input));
        d.poke(DRAM_W, &machsuite::data::f32_bytes(&weights));
    }

    let conv = cluster.accels[0];
    let relu = cluster.accels[1];
    let pool = cluster.accels[2];

    // Argument layouts and host program per scenario.
    let shared = 0x2000_0000u64;
    let host_id_placeholder = sim.add_component(Host::new(HostConfig::default(), vec![]));
    for h in [&conv, &relu, &pool] {
        sim.component_as_mut::<ComputeUnit>(h.unit)
            .unwrap()
            .subscribe_done(host_id_placeholder);
    }
    let via = gxbar;
    let mut ops: Vec<HostOp> = Vec::new();
    let pool_out_addr;
    match scenario {
        Scenario::PrivateSpm => {
            let (c_in, c_w, c_out) = (conv_spm, conv_spm + 0xA00, conv_spm + 0xC00);
            let (r_in, r_out) = (relu_spm, relu_spm + 0x1000);
            let (p_in, p_lb, p_out) = (pool_spm, pool_spm + 0x1000, pool_spm + 0x1800);
            pool_out_addr = p_out;
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(1, DRAM_IN, c_in, IN_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 1 });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(2, DRAM_W, c_w, W_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 2 });
            ops.extend(mmr_args(via, conv_mmr, &[c_in, c_w, c_out]));
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: conv_mmr,
            });
            ops.push(HostOp::WaitAccDone { unit: conv.unit });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(3, c_out, r_in, CONV_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 3 });
            ops.extend(mmr_args(via, relu_mmr, &[r_in, r_out]));
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: relu_mmr,
            });
            ops.push(HostOp::WaitAccDone { unit: relu.unit });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(4, r_out, p_in, CONV_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 4 });
            ops.extend(mmr_args(via, pool_mmr, &[p_in, p_lb, p_out]));
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: pool_mmr,
            });
            ops.push(HostOp::WaitAccDone { unit: pool.unit });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(5, p_out, DRAM_OUT, POOL_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 5 });
        }
        Scenario::SharedSpm => {
            let (c_in, c_w, c_out) = (shared, shared + 0xA00, shared + 0x1000);
            let r_out = shared + 0x2000;
            let (p_lb, p_out) = (shared + 0x3000, shared + 0x3800);
            pool_out_addr = p_out;
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(1, DRAM_IN, c_in, IN_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 1 });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(2, DRAM_W, c_w, W_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 2 });
            ops.extend(mmr_args(via, conv_mmr, &[c_in, c_w, c_out]));
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: conv_mmr,
            });
            ops.push(HostOp::WaitAccDone { unit: conv.unit });
            // No data movement: relu reads conv's output in place.
            ops.extend(mmr_args(via, relu_mmr, &[c_out, r_out]));
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: relu_mmr,
            });
            ops.push(HostOp::WaitAccDone { unit: relu.unit });
            ops.extend(mmr_args(via, pool_mmr, &[r_out, p_lb, p_out]));
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: pool_mmr,
            });
            ops.push(HostOp::WaitAccDone { unit: pool.unit });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(5, p_out, DRAM_OUT, POOL_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 5 });
        }
        Scenario::Stream => {
            let (c_in, c_w) = (conv_spm, conv_spm + 0xA00);
            let (p_lb, p_out) = (pool_spm + 0x1000, pool_spm + 0x1800);
            pool_out_addr = p_out;
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(1, DRAM_IN, c_in, IN_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 1 });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(2, DRAM_W, c_w, W_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 2 });
            // Program everything, then start consumers before producers so
            // the pipeline self-synchronizes through the stream handshakes —
            // no host involvement between stages.
            ops.extend(mmr_args(via, pool_mmr, &[stream_b_base, p_lb, p_out]));
            ops.extend(mmr_args(via, relu_mmr, &[stream_a_base, stream_b_base]));
            ops.extend(mmr_args(via, conv_mmr, &[c_in, c_w, stream_a_base]));
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: pool_mmr,
            });
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: relu_mmr,
            });
            ops.push(HostOp::StartAccelerator {
                via,
                mmr_base: conv_mmr,
            });
            ops.push(HostOp::WaitAccDone { unit: pool.unit });
            ops.push(HostOp::StartDma {
                dma: cluster.dma,
                cmd: DmaCmd::new(5, p_out, DRAM_OUT, POOL_BYTES, host_id_placeholder),
            });
            ops.push(HostOp::WaitDmaDone { id: 5 });
        }
    }

    *sim.component_as_mut::<Host>(host_id_placeholder).unwrap() =
        Host::new(HostConfig::default(), ops);
    sim.post(host_id_placeholder, 0, MemMsg::Start);
    sim.run_until(Tick::MAX);

    let host = sim.component_as::<Host>(host_id_placeholder).unwrap();
    let total_ns = host
        .finished_at()
        .unwrap_or_else(|| panic!("{}: host program did not finish", scenario.label()))
        as f64
        / 1000.0;

    let span_of = |id: CompId| -> f64 {
        let cu = sim.component_as::<ComputeUnit>(id).unwrap();
        match cu.span() {
            (Some(s), Some(e)) => (e - s) as f64 / 1000.0,
            _ => 0.0,
        }
    };
    let accel_spans_ns = vec![
        ("conv", span_of(conv.unit)),
        ("relu", span_of(relu.unit)),
        ("pool", span_of(pool.unit)),
    ];

    // Verify the final output in DRAM.
    let d = sim.component_as::<memsys::Dram>(dram).unwrap();
    let got: Vec<f32> = d
        .peek(DRAM_OUT, cnn::POOL_DIM * cnn::POOL_DIM * 4)
        .chunks(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let verified = machsuite::data::check_f32_close("pool_out", &got, &want_pool, 1e-4).is_ok();
    let _ = pool_out_addr;

    ScenarioResult {
        scenario,
        total_ns,
        accel_spans_ns,
        verified,
    }
}

/// The distilled, cacheable result of one Fig. 16 design point — the
/// fields the sweep report needs, decoupled from the full `Simulation`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16Record {
    /// Scenario label (see [`Scenario::label`]).
    pub scenario: String,
    /// End-to-end time in nanoseconds.
    pub total_ns: f64,
    /// Busy span of each stage in nanoseconds, `[conv, relu, pool]`.
    pub spans_ns: [f64; 3],
    /// Final output verified against the golden model.
    pub verified: bool,
}

impl From<&ScenarioResult> for Fig16Record {
    fn from(r: &ScenarioResult) -> Self {
        Fig16Record {
            scenario: r.scenario.label().to_string(),
            total_ns: r.total_ns,
            spans_ns: [
                r.accel_spans_ns[0].1,
                r.accel_spans_ns[1].1,
                r.accel_spans_ns[2].1,
            ],
            verified: r.verified,
        }
    }
}

impl CachePayload for Fig16Record {
    fn payload_to_json(&self) -> String {
        format!(
            "{{\"scenario\": \"{}\", \"total_ns\": {}, \"conv_ns\": {}, \"relu_ns\": {}, \"pool_ns\": {}, \"verified\": {}}}",
            self.scenario,
            self.total_ns,
            self.spans_ns[0],
            self.spans_ns[1],
            self.spans_ns[2],
            self.verified,
        )
    }

    fn payload_from_json(v: &salam_obs::json::Value) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("missing number '{key}'"))
        };
        Ok(Fig16Record {
            scenario: v
                .get("scenario")
                .and_then(|x| x.as_str())
                .ok_or("missing 'scenario'")?
                .to_string(),
            total_ns: num("total_ns")?,
            spans_ns: [num("conv_ns")?, num("relu_ns")?, num("pool_ns")?],
            verified: v
                .get("verified")
                .and_then(salam_obs::json::Value::as_bool)
                .ok_or("missing 'verified'")?,
        })
    }
}

/// One point of the Fig. 16 integration sweep: a scenario plus its
/// parameters, runnable (and cacheable) by the DSE engine.
#[derive(Debug, Clone, Copy)]
pub struct Fig16Point {
    /// Which integration style.
    pub scenario: Scenario,
    /// The swept knobs.
    pub params: Fig16Params,
}

impl SweepJob for Fig16Point {
    type Output = Fig16Record;

    fn cache_id(&self) -> CacheId {
        CacheId::new(
            format!("fig16/{}", self.scenario.label()),
            self.params.canonical_repr(self.scenario),
        )
    }

    fn run(&self) -> Fig16Record {
        let result = run_scenario_with(self.scenario, &self.params);
        assert!(
            result.verified,
            "{} produced wrong output",
            self.scenario.label()
        );
        (&result).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_spm_scenario_is_correct() {
        let r = run_scenario(Scenario::PrivateSpm);
        assert!(r.verified, "wrong output");
        assert!(r.total_ns > 0.0);
        assert!(r.accel_spans_ns.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn shared_spm_is_faster_than_private() {
        let a = run_scenario(Scenario::PrivateSpm);
        let b = run_scenario(Scenario::SharedSpm);
        assert!(b.verified);
        assert!(
            b.total_ns < a.total_ns,
            "shared SPM ({:.0} ns) should beat private+DMA ({:.0} ns)",
            b.total_ns,
            a.total_ns
        );
    }

    #[test]
    fn record_json_roundtrips_exactly() {
        let rec = Fig16Record {
            scenario: "stream-buffers".into(),
            total_ns: 1234.5,
            spans_ns: [100.25, 90.0, 80.125],
            verified: true,
        };
        let text = rec.payload_to_json();
        let v = salam_obs::json::parse(&text).unwrap();
        let back = Fig16Record::payload_from_json(&v).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.payload_to_json(), text);
    }

    #[test]
    fn params_change_the_cache_identity() {
        let base = Fig16Point {
            scenario: Scenario::PrivateSpm,
            params: Fig16Params::default(),
        };
        let wide_dma = Fig16Point {
            params: Fig16Params {
                dma_burst: 256,
                ..Fig16Params::default()
            },
            ..base
        };
        let other_scenario = Fig16Point {
            scenario: Scenario::Stream,
            ..base
        };
        assert_ne!(base.cache_id().key(), wide_dma.cache_id().key());
        assert_ne!(base.cache_id().key(), other_scenario.cache_id().key());
        assert_eq!(base.cache_id().key(), base.cache_id().key());
    }

    #[test]
    fn wider_dma_bursts_do_not_slow_the_baseline() {
        let slow = run_scenario_with(
            Scenario::PrivateSpm,
            &Fig16Params {
                dma_burst: 16,
                ..Fig16Params::default()
            },
        );
        let fast = run_scenario_with(
            Scenario::PrivateSpm,
            &Fig16Params {
                dma_burst: 256,
                ..Fig16Params::default()
            },
        );
        assert!(slow.verified && fast.verified);
        assert!(
            fast.total_ns <= slow.total_ns,
            "256 B bursts ({:.0} ns) should not lose to 16 B ({:.0} ns)",
            fast.total_ns,
            slow.total_ns
        );
    }

    #[test]
    fn streaming_is_fastest_and_correct() {
        let a = run_scenario(Scenario::PrivateSpm);
        let c = run_scenario(Scenario::Stream);
        assert!(c.verified, "stream pipeline output wrong");
        assert!(
            c.total_ns < a.total_ns,
            "streams ({:.0} ns) should beat baseline ({:.0} ns)",
            c.total_ns,
            a.total_ns
        );
    }
}
