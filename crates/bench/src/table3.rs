//! End-to-end system validation (Table III): DMA in → accelerate → DMA out,
//! compared against an analytical FPGA-style reference.

use machsuite::BuiltKernel;
use memsys::{DmaCmd, MemMsg, ScratchpadConfig};
use salam::{
    AcceleratorConfig, ClusterBuilder, ClusterConfig, ComputeUnit, Host, HostConfig, HostOp,
    MemoryStyle,
};
use salam_cdfg::FuConstraints;
use salam_hls::HlsConfig;
use sim_core::Simulation;

/// Timing split of one end-to-end run, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct EndToEnd {
    /// Kernel compute time.
    pub compute_us: f64,
    /// Bulk transfer time (input + output DMA).
    pub xfer_us: f64,
    /// Total end-to-end time.
    pub total_us: f64,
}

const DRAM_BASE: u64 = 0x8000_0000;

/// Runs `kernel` through the full system: the host DMAs the kernel's data
/// footprint from DRAM into the accelerator's private SPM, starts it via
/// MMRs, waits for completion, and DMAs the footprint back.
///
/// Returns the measured split plus whether the DRAM output verified.
pub fn simulate_system(kernel: &BuiltKernel) -> (EndToEnd, bool) {
    let (lo, hi) = kernel.footprint;
    let len = hi - lo;
    let spm_size = len.next_power_of_two().max(4096);
    let dram_stage = DRAM_BASE + 0x10_0000; // staging copy of the footprint

    let mut sim: Simulation<MemMsg> = Simulation::new();
    let mut builder = ClusterBuilder::new(
        ClusterConfig {
            shared_spm_bytes: 0,
            ..ClusterConfig::default()
        },
        hw_profile::HardwareProfile::default_40nm(),
    );
    let mmr_base = 0x7F00_0000u64; // clear of every kernel footprint
    builder.add_accelerator(
        AcceleratorConfig::new(&kernel.name.clone()),
        kernel.func.clone(),
        // The kernel addresses its data absolutely, so the SPM sits at the
        // footprint's own base.
        MemoryStyle::PrivateSpm {
            base: lo,
            size: spm_size,
            spm: ScratchpadConfig::default().with_ports(4, 4),
        },
        mmr_base,
        None,
    );
    let (cluster, dram, gxbar) = salam::build_system(&mut sim, builder, DRAM_BASE, 4 << 20);
    let acc = cluster.accels[0];

    // Stage the initial image in DRAM at `dram_stage + (addr - lo)`.
    {
        let d = sim.component_as_mut::<memsys::Dram>(dram).unwrap();
        for (addr, bytes) in &kernel.init {
            d.poke(dram_stage + (addr - lo), bytes);
        }
    }

    // Host program: bulk in, program + run, bulk out.
    let host = sim.add_component(Host::new(HostConfig::default(), vec![]));
    sim.component_as_mut::<ComputeUnit>(acc.unit)
        .unwrap()
        .subscribe_done(host);
    let mut ops = vec![
        HostOp::StartDma {
            dma: cluster.dma,
            cmd: DmaCmd::new(1, dram_stage, lo, len, host),
        },
        HostOp::WaitDmaDone { id: 1 },
    ];
    for (i, arg) in kernel.args.iter().enumerate() {
        let raw = match arg {
            salam_ir::interp::RtVal::P(p) => *p,
            salam_ir::interp::RtVal::I(v) => *v as u64,
            salam_ir::interp::RtVal::F(_) => panic!("float args not supported over MMRs"),
        };
        ops.push(HostOp::WriteMmr {
            via: gxbar,
            addr: mmr_base + ((2 + i) as u64) * 8,
            value: raw,
        });
    }
    ops.push(HostOp::StartAccelerator {
        via: gxbar,
        mmr_base,
    });
    ops.push(HostOp::WaitAccDone { unit: acc.unit });
    ops.push(HostOp::StartDma {
        dma: cluster.dma,
        cmd: DmaCmd::new(2, lo, dram_stage, len, host),
    });
    ops.push(HostOp::WaitDmaDone { id: 2 });
    let dma_in_wait = 1usize;
    let acc_wait = ops.len() - 3;
    let dma_out_wait = ops.len() - 1;
    *sim.component_as_mut::<Host>(host).unwrap() = Host::new(HostConfig::default(), ops);
    sim.post(host, 0, MemMsg::Start);
    sim.run();

    let h = sim.component_as::<Host>(host).unwrap();
    let t_in = h.op_finished_at(dma_in_wait).expect("input DMA finished") as f64;
    let t_acc = h.op_finished_at(acc_wait).expect("accelerator finished") as f64;
    let t_out = h.op_finished_at(dma_out_wait).expect("output DMA finished") as f64;
    let total = h.finished_at().expect("program finished") as f64;

    let cu = sim.component_as::<ComputeUnit>(acc.unit).unwrap();
    let compute_ps = match cu.span() {
        (Some(s), Some(e)) => (e - s) as f64,
        _ => t_acc - t_in,
    };
    let xfer_ps = t_in + (t_out - t_acc);
    let e2e = EndToEnd {
        compute_us: compute_ps / 1e6,
        xfer_us: xfer_ps / 1e6,
        total_us: total / 1e6,
    };

    // Verify: read the staged footprint back out of DRAM.
    let mut check_mem = salam_ir::interp::SparseMemory::new();
    {
        let d = sim.component_as::<memsys::Dram>(dram).unwrap();
        let bytes = d.peek(dram_stage, len as usize).to_vec();
        use salam_ir::interp::Memory as _;
        check_mem.write(lo, &bytes);
    }
    let verified = kernel.check(&mut check_mem).is_ok();
    (e2e, verified)
}

/// The FPGA-style analytical reference: compute time from the HLS static
/// schedule at the accelerator clock, transfer time from a bandwidth/latency
/// model of the data mover (burst setup cost plus streaming at bus width).
pub fn reference_model(kernel: &BuiltKernel) -> EndToEnd {
    let (lo, hi) = kernel.footprint;
    let bytes = (hi - lo) as f64;

    // The default device config (2R/2W, 2-cycle memory) approximates the
    // cluster accelerator's effective private-SPM interface: the comm
    // interface's port budget and SPM round-trip average out to the same
    // bandwidth/latency product.
    let hls = crate::runners::hls_cycles(
        kernel,
        &FuConstraints::unconstrained(),
        &HlsConfig::default(),
    );
    let compute_us = hls.cycles as f64 / 1e3; // 1 GHz: 1 cycle = 1 ns

    // Data mover: 64-byte bursts at 20 ns each (pipelined row activations
    // over an 8 B/ns bus) plus per-direction driver/descriptor setup —
    // round-trip for in + out.
    let burst = 64.0;
    let per_burst_ns = 20.0;
    let bursts = (bytes / burst).ceil();
    let one_way_ns = bursts * per_burst_ns + 655.0;
    let xfer_us = 2.0 * one_way_ns / 1e3;

    EndToEnd {
        compute_us,
        xfer_us,
        total_us: compute_us + xfer_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_system_run_verifies_and_splits_time() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let (e2e, verified) = simulate_system(&k);
        assert!(verified, "system run produced wrong results in DRAM");
        assert!(e2e.compute_us > 0.0);
        assert!(e2e.xfer_us > 0.0);
        assert!(e2e.total_us >= e2e.compute_us);
    }

    #[test]
    fn reference_model_is_positive() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
        let r = reference_model(&k);
        assert!(r.compute_us > 0.0 && r.xfer_us > 0.0);
    }
}
