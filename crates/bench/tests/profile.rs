//! Acceptance invariants of the profiling subsystem, locked across every
//! MachSuite kernel:
//!
//! * attribution buckets sum *exactly* to total engine cycles (the taxonomy
//!   is mutually exclusive and exhaustive by construction);
//! * the dynamic critical path never exceeds the run;
//! * rendered reports are byte-identical across repeat runs.

use machsuite::Bench;
use salam::standalone::StandaloneConfig;
use salam_bench::bottleneck::{check_invariants, profile, render_csv, render_json, render_table};

#[test]
fn attribution_and_critical_path_invariants_hold_for_every_kernel() {
    for bench in Bench::ALL {
        let k = bench.build_standard();
        let run = profile(&k, &StandaloneConfig::default());
        let st = &run.report.stats;
        assert!(run.report.verified, "{} failed verification", bench.label());
        assert_eq!(
            st.attribution.total(),
            st.cycles,
            "{}: attribution buckets must sum to total cycles",
            bench.label()
        );
        assert!(
            run.critpath.length <= st.cycles,
            "{}: critical path {} exceeds the {}-cycle run",
            bench.label(),
            run.critpath.length,
            st.cycles
        );
        check_invariants(&run).unwrap_or_else(|e| panic!("{}: {e}", bench.label()));
        // The stream is populated and the analysis covers it.
        assert!(!run.depstream.is_empty(), "{}: empty stream", bench.label());
        assert_eq!(run.critpath.slack.len(), run.depstream.len());
        assert!(!run.critpath.path.is_empty());
    }
}

#[test]
fn reports_are_byte_identical_across_repeat_runs() {
    for bench in [Bench::GemmNcubed, Bench::SpmvCrs, Bench::Bfs] {
        let k = bench.build_standard();
        let cfg = StandaloneConfig::default();
        let (a, b) = (profile(&k, &cfg), profile(&k, &cfg));
        assert_eq!(render_table(&a), render_table(&b), "{}", bench.label());
        assert_eq!(render_csv(&a), render_csv(&b), "{}", bench.label());
        assert_eq!(render_json(&a), render_json(&b), "{}", bench.label());
    }
}

#[test]
fn profiling_never_changes_the_schedule() {
    // record_depstream is observability-only: cycle counts (and every
    // attribution bucket) match a plain run exactly.
    for bench in [Bench::FftStrided, Bench::Nw] {
        let k = bench.build_standard();
        let cfg = StandaloneConfig::default();
        let plain = salam::standalone::run_kernel(&k, &cfg);
        let profiled = profile(&k, &cfg);
        assert_eq!(plain.cycles, profiled.report.cycles, "{}", bench.label());
        assert_eq!(
            plain.stats.attribution,
            profiled.report.stats.attribution,
            "{}",
            bench.label()
        );
    }
}
