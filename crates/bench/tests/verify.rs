//! Cross-crate locks for the static-verification stack (PR 5):
//!
//! 1. every MachSuite kernel passes every `salam-verify` pass with zero
//!    errors — the suite is the verifier's "known-good" corpus;
//! 2. the static schedule lower bound is *sound*: for every kernel, under
//!    both unconstrained and FU-starved configurations, the bound never
//!    exceeds the cycles the dynamic engine actually reports;
//! 3. every stable diagnostic code has a deliberately-broken fixture that
//!    triggers it — the codes are load-bearing API (CI greps, DSE
//!    `invalid:<code>` rows), so each one is pinned to a reproducer.

use std::collections::HashMap;

use hw_profile::FuKind;
use machsuite::{Bench, BuiltKernel};
use salam::standalone::{try_run_kernel, StandaloneConfig};
use salam_cdfg::StaticCdfg;
use salam_ir::interp::RtVal;
use salam_ir::{FunctionBuilder, Type};
use salam_verify::{
    check_bounds, check_schedule, codes, flow_lower_bound, parse_and_verify, profile_memdeps,
    static_lower_bound, static_memdeps, verify_ir, BoundConfig, Diagnostic, FlowBoundReport,
    MemRegion, Severity,
};

/// The static bound for `k` under exactly the resources `cfg` gives the
/// dynamic engine: same FU constraints, same SPM ports, same pipelining.
fn bound_under(k: &BuiltKernel, cfg: &StandaloneConfig) -> u64 {
    let cdfg = StaticCdfg::elaborate(&k.func, &cfg.profile, &cfg.constraints);
    let (prof, _) = profile_memdeps(&k.func, &k.args, &k.init);
    let trips: HashMap<_, _> = prof.block_entries.clone();
    let bc = BoundConfig {
        read_ports: cfg.spm_read_ports,
        write_ports: cfg.spm_write_ports,
        pipelined_fus: cfg.engine.pipelined_fus,
        reservation_entries: cfg.engine.reservation_entries,
    };
    static_lower_bound(&k.func, &cdfg, &trips, &bc).lower_bound
}

fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

#[test]
fn all_nine_kernels_verify_clean() {
    for bench in Bench::ALL {
        let k = bench.build_standard();
        let ir = verify_ir(&k.func);
        assert!(errors(&ir).is_empty(), "{}: {:?}", k.name, errors(&ir));
        let deps = static_memdeps(&k.func, &k.args);
        assert!(
            errors(&deps.diags).is_empty(),
            "{}: {:?}",
            k.name,
            errors(&deps.diags)
        );
        let (lo, hi) = k.footprint;
        let oob = check_bounds(&k.func, &k.args, &[MemRegion::new(lo, hi, "footprint")]);
        assert!(oob.is_empty(), "{}: {oob:?}", k.name);
    }
}

#[test]
fn static_bound_never_exceeds_dynamic_cycles_unconstrained() {
    for bench in Bench::ALL {
        let k = bench.build_standard();
        let cfg = StandaloneConfig::default();
        let bound = bound_under(&k, &cfg);
        let dynamic = try_run_kernel(&k, &cfg).unwrap().cycles;
        assert!(bound > 0, "{}: a vacuous bound proves nothing", k.name);
        assert!(
            bound <= dynamic,
            "{}: static lower bound {bound} > dynamic {dynamic}",
            k.name
        );
    }
}

#[test]
fn static_bound_never_exceeds_dynamic_cycles_fu_limited() {
    // Starve the compute units down to one of each: the bound's FU floor
    // rises with the constraint and must still stay under the (now much
    // slower) dynamic run.
    for bench in Bench::ALL {
        let k = bench.build_standard();
        let mut cfg = StandaloneConfig::default();
        for kind in [
            FuKind::FpAddF64,
            FuKind::FpMulF64,
            FuKind::FpDivF64,
            FuKind::FpAddF32,
            FuKind::FpMulF32,
            FuKind::IntMultiplier,
        ] {
            cfg.constraints = cfg.constraints.clone().with_limit(kind, 1);
        }
        let unconstrained = bound_under(&k, &StandaloneConfig::default());
        let bound = bound_under(&k, &cfg);
        let dynamic = try_run_kernel(&k, &cfg).unwrap().cycles;
        assert!(
            bound >= unconstrained,
            "{}: starving FUs cannot loosen the bound",
            k.name
        );
        assert!(
            bound <= dynamic,
            "{}: static lower bound {bound} > dynamic {dynamic} under FU limits",
            k.name
        );
    }
}

/// The flow-tightened bound for `k` under exactly the resources `cfg`
/// gives the dynamic engine, fed by the statically-proven dependence
/// edges.
fn flow_bound_under(k: &BuiltKernel, cfg: &StandaloneConfig) -> FlowBoundReport {
    let cdfg = StaticCdfg::elaborate(&k.func, &cfg.profile, &cfg.constraints);
    let (prof, _) = profile_memdeps(&k.func, &k.args, &k.init);
    let trips: HashMap<_, _> = prof.block_entries.clone();
    let bc = BoundConfig {
        read_ports: cfg.spm_read_ports,
        write_ports: cfg.spm_write_ports,
        pipelined_fus: cfg.engine.pipelined_fus,
        reservation_entries: cfg.engine.reservation_entries,
    };
    let deps = static_memdeps(&k.func, &k.args);
    flow_lower_bound(&k.func, &cdfg, &trips, &bc, &deps.edges)
}

/// PR-10 soundness gate: on every kernel and every configuration the
/// flow-tightened bound must sit between the PR-5 bound and the dynamic
/// cycle count. Asserts per-config minimums on how many kernels tighten
/// *strictly*, so a refactor that silently neuters the new floors fails
/// here rather than shipping a vacuous analysis.
#[test]
fn flow_bound_is_sound_and_strictly_tightens() {
    let default_cfg = StandaloneConfig::default();
    // A 48-entry reservation queue: large bodies stop double-buffering,
    // so the reservation-pressure floor binds on most kernels.
    let mut pressure = StandaloneConfig::default();
    pressure.engine.reservation_entries = 48;
    let mut starved = StandaloneConfig::default();
    for kind in [
        FuKind::FpAddF64,
        FuKind::FpMulF64,
        FuKind::FpDivF64,
        FuKind::FpAddF32,
        FuKind::FpMulF32,
        FuKind::IntMultiplier,
    ] {
        starved.constraints = starved.constraints.clone().with_limit(kind, 1);
    }
    for (cfg_name, cfg, want_tighter) in [
        ("default", &default_cfg, 1),
        ("pressure", &pressure, 3),
        ("fu-starved", &starved, 0),
    ] {
        let mut tighter = 0usize;
        for bench in Bench::ALL {
            let k = bench.build_standard();
            let r = flow_bound_under(&k, cfg);
            let dynamic = try_run_kernel(&k, cfg).unwrap().cycles;
            assert!(
                r.lower_bound >= r.base.lower_bound,
                "{} [{cfg_name}]: flow bound {} dropped below PR-5 bound {}",
                k.name,
                r.lower_bound,
                r.base.lower_bound
            );
            assert!(
                r.lower_bound <= dynamic,
                "{} [{cfg_name}]: flow bound {} > dynamic {dynamic} — UNSOUND",
                k.name,
                r.lower_bound
            );
            if r.lower_bound > r.base.lower_bound {
                tighter += 1;
            }
        }
        assert!(
            tighter >= want_tighter,
            "[{cfg_name}]: only {tighter} kernels tightened strictly, wanted ≥ {want_tighter}"
        );
    }
}

// ---- one deliberately-broken fixture per diagnostic code -----------------

/// Error-severity codes reported by `verify_ir` for a fixture built to
/// violate exactly one invariant: the expected code must be present and no
/// *other* error code may fire (warnings like a dead result are fine).
fn assert_only_error(f: &salam_ir::Function, expected: &'static str) {
    let diags = verify_ir(f);
    let errs = errors(&diags);
    assert!(
        errs.iter().any(|d| d.code == expected),
        "expected {expected}: {diags:?}"
    );
    assert!(
        errs.iter().all(|d| d.code == expected),
        "fixture for {expected} trips other errors: {errs:?}"
    );
}

#[test]
fn v001_use_not_dominated_by_definition() {
    let mut fb = FunctionBuilder::new("v001", &[("x", Type::I64), ("c", Type::I1)]);
    let x = fb.arg(0);
    let c = fb.arg(1);
    let then_b = fb.add_block("then");
    let join = fb.add_block("join");
    fb.cond_br(c, then_b, join);
    fb.position_at(then_b);
    let a = fb.add(x, x, "a");
    fb.br(join);
    fb.position_at(join);
    let s = fb.add(a, x, "s"); // `a` defined only on the then-path
    fb.ret_value(s);
    assert_only_error(&fb.finish(), codes::V001);
}

#[test]
fn v002_float_operands_on_integer_add() {
    let mut fb = FunctionBuilder::new("v002", &[]);
    let a = fb.f64c(1.0);
    let b = fb.f64c(2.0);
    let s = fb.add(a, b, "s"); // integer add over doubles
    fb.ret_value(s);
    assert_only_error(&fb.finish(), codes::V002);
}

#[test]
fn v003_reachable_block_left_empty() {
    let mut fb = FunctionBuilder::new("v003", &[]);
    let hole = fb.add_block("hole");
    fb.br(hole); // `hole` is reachable but never filled or terminated
    assert_only_error(&fb.finish(), codes::V003);
}

#[test]
fn v004_phi_missing_a_predecessor_edge() {
    let mut fb = FunctionBuilder::new("v004", &[("c", Type::I1)]);
    let c = fb.arg(0);
    let then_b = fb.add_block("then");
    let else_b = fb.add_block("else");
    let join = fb.add_block("join");
    fb.cond_br(c, then_b, else_b);
    fb.position_at(then_b);
    let one = fb.i64c(1);
    fb.br(join);
    fb.position_at(else_b);
    fb.br(join);
    fb.position_at(join);
    let (phi, v) = fb.phi(Type::I64, "v");
    fb.add_incoming(phi, one, then_b); // no edge for the `else` predecessor
    fb.ret_value(v);
    assert_only_error(&fb.finish(), codes::V004);
}

#[test]
fn v005_unreachable_block_is_linted() {
    let mut fb = FunctionBuilder::new("v005", &[]);
    fb.ret();
    let orphan = fb.add_block("orphan");
    fb.position_at(orphan);
    fb.ret(); // well-formed in isolation, but nothing branches here
    let diags = verify_ir(&fb.finish());
    assert!(diags.iter().any(|d| d.code == codes::V005), "{diags:?}");
    assert!(errors(&diags).is_empty(), "V005 is a lint: {diags:?}");
}

#[test]
fn v006_dead_value_is_linted() {
    let mut fb = FunctionBuilder::new("v006", &[("x", Type::I64)]);
    let x = fb.arg(0);
    let _dead = fb.add(x, x, "dead");
    fb.ret();
    let diags = verify_ir(&fb.finish());
    assert!(diags.iter().any(|d| d.code == codes::V006), "{diags:?}");
    assert!(errors(&diags).is_empty(), "V006 is a lint: {diags:?}");
}

#[test]
fn v007_widthless_zext() {
    let mut fb = FunctionBuilder::new("v007", &[("x", Type::I64)]);
    let x = fb.arg(0);
    let z = fb.zext(x, Type::I32, "z"); // "extension" that narrows
    fb.ret_value(z);
    assert_only_error(&fb.finish(), codes::V007);
}

/// `for i in 0..n { a[i+1] = a[i] }` — the canonical distance-1 recurrence.
fn shift_kernel() -> salam_ir::Function {
    let mut fb = FunctionBuilder::new("shift", &[("a", Type::Ptr), ("n", Type::I64)]);
    let a = fb.arg(0);
    let n = fb.arg(1);
    let zero = fb.i64c(0);
    fb.counted_loop("i", zero, n, |fb, iv| {
        let src = fb.gep1(Type::I64, a, iv, "src");
        let x = fb.load(Type::I64, src, "x");
        let one = fb.i64c(1);
        let i1 = fb.add(iv, one, "i1");
        let dst = fb.gep1(Type::I64, a, i1, "dst");
        fb.store(x, dst);
    });
    fb.ret();
    fb.finish()
}

#[test]
fn m001_loop_carried_raw_recurrence() {
    let deps = static_memdeps(&shift_kernel(), &[RtVal::P(0x1000), RtVal::I(8)]);
    assert!(
        deps.diags.iter().any(|d| d.code == codes::M001),
        "{:?}",
        deps.diags
    );
}

#[test]
fn m002_waw_between_stores() {
    let mut fb = FunctionBuilder::new("m002", &[("a", Type::Ptr)]);
    let a = fb.arg(0);
    let zero = fb.i64c(0);
    let n = fb.i64c(8);
    fb.counted_loop("i", zero, n, |fb, iv| {
        let p = fb.gep1(Type::I64, a, iv, "p");
        let one = fb.i64c(1);
        let two = fb.i64c(2);
        fb.store(one, p);
        fb.store(two, p); // the first store is dead every iteration
    });
    fb.ret();
    let deps = static_memdeps(&fb.finish(), &[RtVal::P(0x2000)]);
    assert!(
        deps.diags.iter().any(|d| d.code == codes::M002),
        "{:?}",
        deps.diags
    );
}

#[test]
fn m003_out_of_bounds_store() {
    // a[n] is written by the last iteration; a region of n slots is one
    // slot short.
    let f = shift_kernel();
    let args = [RtVal::P(0x1000), RtVal::I(8)];
    let oob = check_bounds(&f, &args, &[MemRegion::new(0x1000, 0x1000 + 8 * 8, "spm")]);
    assert_eq!(oob.len(), 1, "{oob:?}");
    assert_eq!(oob[0].code, codes::M003);
}

#[test]
fn m004_shared_spm_write_race() {
    let writer = |name: &str, base: i64| {
        let mut fb = FunctionBuilder::new(name, &[]);
        let addr = fb.i64c(base);
        let p = fb.inttoptr(addr, "p");
        let zero = fb.i64c(0);
        let n = fb.i64c(16);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let dst = fb.gep1(Type::I64, p, iv, "dst");
            fb.store(iv, dst);
        });
        fb.ret();
        fb.finish()
    };
    let a = writer("wr_a", 0x2000_0000);
    let b = writer("wr_b", 0x2000_0040); // overlaps wr_a's [0x..00, 0x..80)
    let diags =
        salam_verify::check_shared_spm(&[("wr_a", &a), ("wr_b", &b)], 0x2000_0000, 0x2001_0000);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, codes::M004);
}

#[test]
fn s001_bound_exceeding_the_watchdog() {
    // Any kernel's real bound against an absurdly short watchdog fuse.
    let k = Bench::GemmNcubed.build_standard();
    let cfg = StandaloneConfig::default();
    let cdfg = StaticCdfg::elaborate(&k.func, &cfg.profile, &cfg.constraints);
    let (prof, _) = profile_memdeps(&k.func, &k.args, &k.init);
    let trips: HashMap<_, _> = prof.block_entries.clone();
    let report = static_lower_bound(&k.func, &cdfg, &trips, &BoundConfig::default());
    let diags = check_schedule(&report, 10);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, codes::S001);
    // A sane horizon stays silent.
    assert!(check_schedule(&report, cfg.engine.deadlock_cycles).is_empty());
}

#[test]
fn p001_parse_error_is_a_diagnostic() {
    let d = parse_and_verify("define @broken( this is not IR").unwrap_err();
    assert_eq!(d.code, codes::P001);
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn b001_builder_misuse_is_a_diagnostic() {
    let fb = FunctionBuilder::new("b001", &[("x", Type::I64)]);
    let err = fb.try_arg(7).unwrap_err(); // only one parameter exists
    let d = Diagnostic::from(err);
    assert_eq!(d.code, codes::B001);
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn c001_invalid_config_rejects_a_sweep_point() {
    use salam_dse::{KernelSpec, StandalonePoint, SweepJob};
    let point = StandalonePoint {
        kernel: KernelSpec::bench(Bench::GemmNcubed),
        config: StandaloneConfig::default().with_ports(0),
        coords: vec![("ports".into(), "0".into())],
    };
    let d = point.validate().unwrap_err();
    assert_eq!(d.code, codes::C001);
    assert!(d.message.contains("spm_read_ports"), "{}", d.message);
}

/// The `F004` verdict contract against the live watchdog, over a fixture
/// matrix of kernels × drop rates: a `Deadlock` verdict implies the
/// watchdog fires; a `NoDeadlock` verdict implies it stays quiet;
/// `Possible` is consistent with either outcome.
#[test]
fn f004_predictions_agree_with_the_watchdog_on_every_fixture() {
    use salam::standalone::try_run_kernel_faulted;
    use salam_flow::{DeadlockVerdict, HazardSpec};

    let kernels = [
        machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 }),
        machsuite::spmv::build(&machsuite::spmv::Params::default()),
    ];
    let mut cfg = StandaloneConfig::default();
    // A short fuse keeps the doomed runs fast; clean runs make progress
    // every few cycles, so they never come near it.
    cfg.engine.deadlock_cycles = 2_000;
    for k in &kernels {
        let facts = salam_flow::analyze(&k.func, &k.args);
        for rate in [0.0, 0.5, 1.0] {
            let pred = facts.predict_deadlock(
                &k.func,
                &HazardSpec {
                    mem_drop_rate: rate,
                },
            );
            let mut plan = salam_fault::FaultPlan::seeded(11);
            plan.mem_drop_rate = rate;
            let outcome = try_run_kernel_faulted(k, &cfg, &plan);
            let dynamic_deadlock = matches!(&outcome, Err(e) if e.is_deadlock());
            match pred.verdict {
                DeadlockVerdict::Deadlock => assert!(
                    dynamic_deadlock,
                    "{} rate={rate}: static verdict Deadlock but the run finished ({:?})",
                    k.name,
                    outcome.map(|r| r.cycles),
                ),
                DeadlockVerdict::NoDeadlock => assert!(
                    !dynamic_deadlock,
                    "{} rate={rate}: static verdict NoDeadlock but the watchdog fired",
                    k.name,
                ),
                DeadlockVerdict::Possible { expected_drops } => assert!(
                    expected_drops > 0.0,
                    "{} rate={rate}: Possible verdict must carry a positive risk measure",
                    k.name,
                ),
            }
        }
    }
}

/// Flow facts are a pure function of the kernel: repeated analyses of the
/// same IR render byte-identically, so cached DSE rows and CI transcripts
/// never churn across runs or worker counts.
#[test]
fn flow_facts_are_deterministic_across_repeated_analyses() {
    for bench in [Bench::GemmNcubed, Bench::Nw, Bench::MdGrid] {
        let k = bench.build_standard();
        let first = format!("{:?}", salam_flow::analyze(&k.func, &k.args));
        for _ in 0..3 {
            let again = format!("{:?}", salam_flow::analyze(&k.func, &k.args));
            assert_eq!(
                first, again,
                "{}: flow facts drifted between analyses",
                k.name
            );
        }
    }
}
