//! Campaign-level properties of the fault-injection layer.
//!
//! * A zero-rate plan is observationally free: with the hooks installed
//!   but no fault able to fire, the `RunReport` JSON is byte-identical to
//!   a run without the fault layer — for every MachSuite kernel.
//! * A seeded campaign is deterministic: the same seed replays the same
//!   fault schedule and outcome across repeated runs and across worker
//!   counts, because every injection site derives its own decision stream
//!   from the plan seed alone.

use machsuite::Bench;
use salam::standalone::{run_kernel, try_run_kernel_faulted, StandaloneConfig};
use salam::{FaultPlan, RunReport, SimError};
use salam_dse::{CacheId, DseOptions, SweepJob};

#[test]
fn zero_rate_plan_is_observationally_free_for_every_kernel() {
    let cfg = StandaloneConfig::default();
    for bench in Bench::ALL {
        let kernel = bench.build_standard();
        let clean = run_kernel(&kernel, &cfg);
        let faulted = try_run_kernel_faulted(&kernel, &cfg, &FaultPlan::seeded(7))
            .unwrap_or_else(|e| panic!("{}: zero-rate run failed: {e}", bench.label()));
        assert_eq!(
            clean.to_json(),
            faulted.to_json(),
            "{}: armed-but-zero fault layer must not perturb the report",
            bench.label()
        );
    }
}

/// A data-corruption plan with no drops: every seed completes, so the
/// replay comparison can use the full report JSON.
fn flip_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        fu_bitflip_rate: 0.02,
        mem_bitflip_rate: 0.004,
        fu_jitter_rate: 0.01,
        fu_jitter_cycles: 3,
        ..FaultPlan::seeded(seed)
    }
}

/// One campaign point: gemm under `flip_plan(seed)`.
struct CampaignPoint {
    seed: u64,
}

impl SweepJob for CampaignPoint {
    type Output = RunReport;

    fn cache_id(&self) -> CacheId {
        CacheId::new(
            "fault-campaign/gemm[n=8,u=2]",
            flip_plan(self.seed).canonical_repr(),
        )
    }

    fn run(&self) -> RunReport {
        let kernel = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 });
        try_run_kernel_faulted(&kernel, &StandaloneConfig::default(), &flip_plan(self.seed))
            .expect("flip plan has no drops; the run completes")
    }
}

#[test]
fn same_seed_campaign_replays_identically_across_runs_and_workers() {
    let jobs: Vec<CampaignPoint> = (1..=6).map(|seed| CampaignPoint { seed }).collect();

    let serial = salam_dse::run_sweep(
        &jobs,
        &DseOptions::default().with_workers(1).without_cache(),
    );
    let parallel = salam_dse::run_sweep(
        &jobs,
        &DseOptions::default().with_workers(4).without_cache(),
    );
    let replay = salam_dse::run_sweep(
        &jobs,
        &DseOptions::default().with_workers(4).without_cache(),
    );
    for ((s, p), r) in serial
        .outcomes
        .iter()
        .zip(&parallel.outcomes)
        .zip(&replay.outcomes)
    {
        let s = s.expect_payload().to_json();
        assert_eq!(
            s,
            p.expect_payload().to_json(),
            "worker count changed a faulted run"
        );
        assert_eq!(
            s,
            r.expect_payload().to_json(),
            "re-run changed a faulted run"
        );
    }
    // The campaign injected something — these are not just clean runs.
    assert!(serial
        .outcomes
        .iter()
        .any(|o| o.expect_payload().stats.total_faults() > 0));
}

#[test]
fn same_seed_deadlock_replays_the_same_snapshot() {
    let kernel = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 });
    let mut cfg = StandaloneConfig::default();
    cfg.engine.deadlock_cycles = 2_000;
    let plan = FaultPlan {
        mem_drop_rate: 1.0,
        ..FaultPlan::seeded(11)
    };
    let snap = |r: Result<RunReport, SimError>| match r {
        Err(SimError::Deadlock(s)) => s,
        other => panic!("expected deadlock, got {other:?}"),
    };
    let a = snap(try_run_kernel_faulted(&kernel, &cfg, &plan));
    let b = snap(try_run_kernel_faulted(&kernel, &cfg, &plan));
    assert_eq!(a.cycle, b.cycle);
    assert_eq!(a.last_progress_cycle, b.last_progress_cycle);
    assert_eq!(a.mem_outstanding, b.mem_outstanding);
    assert_eq!(a.dominant_reject_cause, b.dominant_reject_cause);
}
