//! Microbenchmarks of the dynamic runtime engine itself, including the
//! guard that a disabled trace sink adds no measurable cost to the hot
//! loop.

use std::hint::black_box;

use hw_profile::HardwareProfile;
use salam_bench::microbench;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::{FunctionBuilder, Type};
use salam_obs::SharedTrace;
use salam_runtime::{Engine, EngineConfig, SimpleMem};

fn vadd_kernel() -> salam_ir::Function {
    let mut fb = FunctionBuilder::new(
        "vadd",
        &[
            ("a", Type::Ptr),
            ("b", Type::Ptr),
            ("c", Type::Ptr),
            ("n", Type::I64),
        ],
    );
    let (a, b, c, n) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));
    let zero = fb.i64c(0);
    fb.counted_loop("i", zero, n, |fb, i| {
        let pa = fb.gep1(Type::F64, a, i, "pa");
        let pb = fb.gep1(Type::F64, b, i, "pb");
        let pc = fb.gep1(Type::F64, c, i, "pc");
        let x = fb.load(Type::F64, pa, "x");
        let y = fb.load(Type::F64, pb, "y");
        let s = fb.fadd(x, y, "s");
        fb.store(s, pc);
    });
    fb.ret();
    fb.finish()
}

struct VaddRig {
    f: salam_ir::Function,
    cdfg: StaticCdfg,
    profile: HardwareProfile,
    n: u64,
}

impl VaddRig {
    fn new(n: u64) -> Self {
        let f = vadd_kernel();
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        VaddRig {
            f,
            cdfg,
            profile,
            n,
        }
    }

    fn run_once(&self, trace: Option<&SharedTrace>) -> u64 {
        let mut mem = SimpleMem::new(1, 4, 4);
        mem.memory_mut()
            .write_f64_slice(0x1000, &vec![1.0; self.n as usize]);
        mem.memory_mut()
            .write_f64_slice(0x9000, &vec![2.0; self.n as usize]);
        let mut e = Engine::new(
            self.f.clone(),
            self.cdfg.clone(),
            self.profile.clone(),
            EngineConfig::default(),
            vec![
                RtVal::P(0x1000),
                RtVal::P(0x9000),
                RtVal::P(0x11000),
                RtVal::I(self.n as i64),
            ],
        );
        if let Some(t) = trace {
            e.set_trace(t.clone());
        }
        e.run_to_completion(&mut mem)
    }
}

/// Dynamic-instruction throughput of the engine on a streaming kernel.
fn bench_engine_throughput(rig: &VaddRig) {
    let m = microbench::run("engine/vadd_256_elements", || black_box(rig.run_once(None)));
    let dyn_insts = rig.n as f64 * 10.0; // ~10 dynamic ops per iteration
    println!(
        "{:<44} {:>12.0} dyn-inst/s",
        "engine/vadd_256_elements (throughput)",
        m.per_sec() * dyn_insts
    );
}

/// The acceptance guard for the observability subsystem: an engine holding
/// the default (disabled) trace handle must run as fast as one with the
/// handle explicitly attached — the disabled path is a single branch.
fn bench_tracing_overhead(rig: &VaddRig) {
    let baseline = microbench::run("engine/vadd_trace_off_baseline", || {
        black_box(rig.run_once(None))
    });
    let disabled = SharedTrace::disabled();
    let with_noop = microbench::run("engine/vadd_trace_noop_sink", || {
        black_box(rig.run_once(Some(&disabled)))
    });
    let enabled = SharedTrace::enabled();
    let with_recording = microbench::run("engine/vadd_trace_recording", || {
        black_box(rig.run_once(Some(&enabled)))
    });
    let ratio = with_noop.ns_per_iter() / baseline.ns_per_iter();
    println!(
        "{:<44} {ratio:>11.3}x (recording: {:.3}x)",
        "engine/noop_sink_overhead_ratio",
        with_recording.ns_per_iter() / baseline.ns_per_iter()
    );
    // Guard, not a hard assert: timing noise on shared machines is real,
    // but anything past 10% means the disabled path grew a real cost.
    if ratio > 1.10 {
        eprintln!("WARNING: no-op trace sink shows {ratio:.3}x overhead (expected ~1.0x)");
    }
}

/// Static-elaboration (compile) latency — the preprocessing step of Table IV.
fn bench_elaboration() {
    let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 16 });
    let profile = HardwareProfile::default_40nm();
    microbench::run("static_elaboration_gemm_unroll16", || {
        black_box(StaticCdfg::elaborate(
            &k.func,
            &profile,
            &FuConstraints::unconstrained(),
        ))
    });
}

/// Reference-interpreter throughput (trace-generation cost driver).
fn bench_interpreter() {
    let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
    microbench::run("interpreter_gemm8", || {
        let mut mem = salam_ir::interp::SparseMemory::new();
        k.load_into(&mut mem);
        salam_ir::interp::run_function(
            &k.func,
            &k.args,
            &mut mem,
            &mut salam_ir::interp::NullObserver,
            100_000_000,
        )
        .unwrap();
    });
}

fn main() {
    let rig = VaddRig::new(256);
    bench_engine_throughput(&rig);
    bench_tracing_overhead(&rig);
    bench_elaboration();
    bench_interpreter();
}
