//! Microbenchmarks of the dynamic runtime engine itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use hw_profile::HardwareProfile;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_ir::interp::RtVal;
use salam_ir::{FunctionBuilder, Type};
use salam_runtime::{Engine, EngineConfig, SimpleMem};

fn vadd_kernel() -> salam_ir::Function {
    let mut fb = FunctionBuilder::new(
        "vadd",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, b, c, n) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));
    let zero = fb.i64c(0);
    fb.counted_loop("i", zero, n, |fb, i| {
        let pa = fb.gep1(Type::F64, a, i, "pa");
        let pb = fb.gep1(Type::F64, b, i, "pb");
        let pc = fb.gep1(Type::F64, c, i, "pc");
        let x = fb.load(Type::F64, pa, "x");
        let y = fb.load(Type::F64, pb, "y");
        let s = fb.fadd(x, y, "s");
        fb.store(s, pc);
    });
    fb.ret();
    fb.finish()
}

/// Dynamic-instruction throughput of the engine on a streaming kernel.
fn bench_engine_throughput(c: &mut Criterion) {
    let f = vadd_kernel();
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
    let n = 256u64;
    let dyn_insts = n * 10; // ~10 dynamic ops per iteration
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(dyn_insts));
    group.bench_function("vadd_256_elements", |b| {
        b.iter(|| {
            let mut mem = SimpleMem::new(1, 4, 4);
            mem.memory_mut().write_f64_slice(0x1000, &vec![1.0; n as usize]);
            mem.memory_mut().write_f64_slice(0x9000, &vec![2.0; n as usize]);
            let mut e = Engine::new(
                f.clone(),
                cdfg.clone(),
                profile.clone(),
                EngineConfig::default(),
                vec![RtVal::P(0x1000), RtVal::P(0x9000), RtVal::P(0x11000), RtVal::I(n as i64)],
            );
            black_box(e.run_to_completion(&mut mem))
        })
    });
    group.finish();
}

/// Static-elaboration (compile) latency — the preprocessing step of Table IV.
fn bench_elaboration(c: &mut Criterion) {
    let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 16, unroll: 16 });
    let profile = HardwareProfile::default_40nm();
    c.bench_function("static_elaboration_gemm_unroll16", |b| {
        b.iter(|| {
            black_box(StaticCdfg::elaborate(
                &k.func,
                &profile,
                &FuConstraints::unconstrained(),
            ))
        })
    });
}

/// Reference-interpreter throughput (trace-generation cost driver).
fn bench_interpreter(c: &mut Criterion) {
    let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 });
    c.bench_function("interpreter_gemm8", |b| {
        b.iter(|| {
            let mut mem = salam_ir::interp::SparseMemory::new();
            k.load_into(&mut mem);
            salam_ir::interp::run_function(
                &k.func,
                &k.args,
                &mut mem,
                &mut salam_ir::interp::NullObserver,
                100_000_000,
            )
            .unwrap();
        })
    });
}

criterion_group!(engine, bench_engine_throughput, bench_elaboration, bench_interpreter);
criterion_main!(engine);
