//! One timed case per paper table/figure, at reduced scale, so
//! `cargo bench` regenerates a timed proxy of the whole evaluation.

use std::hint::black_box;

use hw_profile::{FuKind, HardwareProfile};
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_aladdin::{derive_datapath, generate_trace, simulate_trace, AladdinMemModel};
use salam_bench::fig16::{run_scenario, Scenario};
use salam_bench::microbench;
use salam_bench::runners::{hls_cycles, profile_kernel};
use salam_bench::table3::simulate_system;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_hls::{estimate_netlist, HlsConfig};
use salam_ir::interp::SparseMemory;

fn small_spmv(trigger: bool) -> machsuite::BuiltKernel {
    machsuite::spmv::build(&machsuite::spmv::Params {
        rows: 16,
        nnz_per_row: 4,
        dataset_triggers_shift: trigger,
        ..machsuite::spmv::Params::default()
    })
}

fn small_gemm() -> machsuite::BuiltKernel {
    machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 4 })
}

/// Table I: trace → datapath derivation on both SpMV datasets.
fn bench_table1() {
    let profile = HardwareProfile::default_40nm();
    microbench::run("table1_spmv_datapath_derivation", || {
        for trigger in [false, true] {
            let k = small_spmv(trigger);
            let mut mem = SparseMemory::new();
            k.load_into(&mut mem);
            let t = generate_trace(&k.func, &k.args, &mut mem);
            let dp = derive_datapath(&k.func, &t, &profile, &AladdinMemModel::default_spm());
            black_box(dp.fu_count(FuKind::Shifter));
        }
    });
}

/// Table II: datapath derivation across a cache-size sweep.
fn bench_table2() {
    let profile = HardwareProfile::default_40nm();
    let k = small_gemm();
    let mut mem = SparseMemory::new();
    k.load_into(&mut mem);
    let trace = generate_trace(&k.func, &k.args, &mut mem);
    microbench::run("table2_gemm_cache_sweep", || {
        for size in [256u64, 1024, 4096] {
            let mm = AladdinMemModel::Cache {
                size_bytes: size,
                line_bytes: 64,
                hit_latency: 2,
                miss_latency: 40,
            };
            black_box(derive_datapath(&k.func, &trace, &profile, &mm));
        }
    });
}

/// Fig 4: full power-breakdown run.
fn bench_fig4() {
    let k = small_gemm();
    microbench::run("fig4_power_breakdown_run", || {
        black_box(run_kernel(&k, &StandaloneConfig::default()))
    });
}

/// Fig 10: SALAM engine + HLS reference on one kernel.
fn bench_fig10() {
    let k = small_gemm();
    microbench::run("fig10_salam_vs_hls", || {
        let s = run_kernel(&k, &StandaloneConfig::default());
        let h = hls_cycles(&k, &FuConstraints::unconstrained(), &HlsConfig::default());
        black_box((s.cycles, h.cycles))
    });
}

/// Figs 11+12: profile-model and netlist-model power/area.
fn bench_fig11_fig12() {
    let k = small_gemm();
    let profile = HardwareProfile::default_40nm();
    microbench::run("fig11_fig12_power_area_validation", || {
        let (cdfg, obs) = profile_kernel(&k);
        let net = estimate_netlist(&k.func, &cdfg, &obs, 1000.0);
        let area = cdfg.area_report(&profile);
        black_box((net.total_mw, area.total_um2))
    });
}

/// Table III: one full-system end-to-end run.
fn bench_table3() {
    let k = small_gemm();
    microbench::run("table3_full_system_run", || black_box(simulate_system(&k)));
}

/// Table IV: the two simulator flows head to head.
fn bench_table4() {
    let k = small_spmv(false);
    let profile = HardwareProfile::default_40nm();
    microbench::run("table4_aladdin_flow", || {
        let mut mem = SparseMemory::new();
        k.load_into(&mut mem);
        let t = generate_trace(&k.func, &k.args, &mut mem);
        let text = t.to_text();
        let loaded = salam_aladdin::Trace::parse(&text);
        let dp = derive_datapath(&k.func, &loaded, &profile, &AladdinMemModel::default_spm());
        black_box(simulate_trace(
            &k.func,
            &loaded,
            &dp,
            &profile,
            &AladdinMemModel::default_spm(),
        ))
    });
    microbench::run("table4_salam_flow", || {
        black_box(run_kernel(&k, &StandaloneConfig::default()).cycles)
    });
}

/// Fig 13: one DSE sweep point per series.
fn bench_fig13() {
    let k = small_gemm();
    microbench::run("fig13_dse_point", || {
        let cfg = StandaloneConfig::default()
            .with_ports(8)
            .with_constraints(FuConstraints::unconstrained().with_limit(FuKind::FpMulF64, 4));
        black_box(run_kernel(&k, &cfg).cycles)
    });
}

/// Figs 14+15: the stall/occupancy profiling run.
fn bench_fig14_fig15() {
    let k = small_gemm();
    microbench::run("fig14_fig15_stall_profile", || {
        let r = run_kernel(&k, &StandaloneConfig::default().with_ports(4));
        black_box((r.stats.stall_cycles, r.stats.fu_occupancy(FuKind::FpMulF64)))
    });
}

/// Fig 16: the streaming multi-accelerator scenario.
fn bench_fig16() {
    microbench::run("fig16_stream_scenario", || {
        black_box(run_scenario(Scenario::Stream).total_ns)
    });
}

/// Ablation: strict register hazards vs the default renamed-context model.
fn bench_ablation_hazards() {
    let k = machsuite::md_knn::build(&machsuite::md_knn::Params { n_atoms: 8, k: 4 });
    let profile = HardwareProfile::default_40nm();
    let cdfg = StaticCdfg::elaborate(&k.func, &profile, &FuConstraints::unconstrained());
    for (name, strict) in [("renamed", false), ("strict_hazards", true)] {
        microbench::run(&format!("ablation_register_hazards_{name}"), || {
            let cfg = salam_runtime::EngineConfig {
                strict_register_hazards: strict,
                ..Default::default()
            };
            let mut mem = salam_runtime::SimpleMem::new(1, 2, 2);
            k.load_into(mem.memory_mut());
            let mut e = salam_runtime::Engine::new(
                k.func.clone(),
                cdfg.clone(),
                profile.clone(),
                cfg,
                k.args.clone(),
            );
            black_box(e.run_to_completion(&mut mem))
        });
    }
}

fn main() {
    bench_table1();
    bench_table2();
    bench_fig4();
    bench_fig10();
    bench_fig11_fig12();
    bench_table3();
    bench_table4();
    bench_fig13();
    bench_fig14_fig15();
    bench_fig16();
    bench_ablation_hazards();
}
