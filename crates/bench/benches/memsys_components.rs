//! Microbenchmarks of the memory-system components.

use std::hint::black_box;

use memsys::{
    AddrMap, BlockDma, Cache, CacheConfig, DmaCmd, Dram, DramConfig, MemMsg, MemReq, Scratchpad,
    ScratchpadConfig, Xbar,
};
use salam_bench::microbench;
use sim_core::Simulation;

/// Raw scratchpad request throughput through the event kernel.
fn bench_spm() {
    let n = 4096u64;
    let m = microbench::run("memsys/scratchpad_4k_reads", || {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm = sim.add_component(Scratchpad::new(
            "spm",
            ScratchpadConfig::default().with_ports(4, 4),
            0,
            1 << 16,
        ));
        let col = sim.add_component(memsys::test_util::Collector::new());
        for i in 0..n {
            sim.post(
                spm,
                0,
                MemMsg::Req(MemReq::read(i, (i * 4) % (1 << 16), 4, col)),
            );
        }
        black_box(sim.run())
    });
    println!(
        "{:<44} {:>12.0} req/s",
        "memsys/scratchpad_4k_reads (throughput)",
        m.per_sec() * n as f64
    );
}

/// Cache hit/miss handling with a DRAM backing store.
fn bench_cache() {
    let n = 2048u64;
    microbench::run("memsys/cache_streaming_reads", || {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new("d", DramConfig::default(), 0, 1 << 20));
        let cache = sim.add_component(Cache::new("l1", CacheConfig::default(), dram));
        let col = sim.add_component(memsys::test_util::Collector::new());
        for i in 0..n {
            sim.post(cache, i * 1000, MemMsg::Req(MemReq::read(i, i * 8, 8, col)));
        }
        black_box(sim.run())
    });
}

/// DMA block transfer through a crossbar into DRAM.
fn bench_dma() {
    let bytes = 64 * 1024u64;
    let m = microbench::run("memsys/dma_64k_copy", || {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new("d", DramConfig::default(), 0, 1 << 20));
        let spm = sim.add_component(Scratchpad::new(
            "s",
            ScratchpadConfig::default().with_ports(8, 8),
            0x4000_0000,
            bytes,
        ));
        let mut map = AddrMap::new();
        map.add(0, 1 << 20, dram);
        map.add(0x4000_0000, 0x4000_0000 + bytes, spm);
        let xbar = sim.add_component(Xbar::new("x", map, 1, 8));
        let dma = sim.add_component(BlockDma::new("dma", xbar, 64, 4));
        let col = sim.add_component(memsys::test_util::Collector::new());
        sim.post(
            dma,
            0,
            MemMsg::DmaStart(DmaCmd::new(1, 0, 0x4000_0000, bytes, col)),
        );
        black_box(sim.run())
    });
    println!(
        "{:<44} {:>12.1} MB/s simulated-throughput",
        "memsys/dma_64k_copy (throughput)",
        m.per_sec() * bytes as f64 / 1e6
    );
}

fn main() {
    bench_spm();
    bench_cache();
    bench_dma();
}
