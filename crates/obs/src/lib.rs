//! `salam-obs` — the observability spine of the simulator.
//!
//! Everything in this crate is dependency-free on purpose: the workspace
//! builds offline, and the instrumentation layer must never be the reason a
//! simulation behaves differently. Three pieces:
//!
//! * [`trace`] — a [`TraceSink`] trait plus a ring-buffer [`TraceRecorder`]
//!   collecting sim-time-stamped spans (op issue→retire, DMA transfers,
//!   cache miss fills), instants (stalls, port rejects, interrupts) and
//!   counter samples. The [`SharedTrace`] handle is what components hold;
//!   a disabled handle costs one branch per hook.
//! * [`chrome`] — serialises a recorder into Chrome `trace_event` JSON so
//!   any run opens in Perfetto or `chrome://tracing`, one track per
//!   component, overlapping spans fanned out onto lanes.
//! * [`registry`] — a [`MetricsRegistry`] of dotted-path metrics
//!   (`cluster0.gemm.engine.stall_cycles`) unifying component stats,
//!   engine stats and memsys counters behind one JSON/table dump.
//!
//! The profiling layer builds on the spine: [`profile`] defines the
//! per-cycle attribution taxonomy ([`profile::Attribution`]) and the
//! compact dependency stream the engine records ([`profile::DepStream`]),
//! and [`critpath`] extracts the realized critical path, per-op slack and
//! per-FU-class headroom from that stream.
//!
//! Two support modules ride along: [`det`] (a SplitMix64 PRNG and a tiny
//! seeded-case property harness, replacing the `rand`/`proptest` crates.io
//! dependencies) and [`json`] (a minimal JSON reader the golden tests use
//! to validate exported traces).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod critpath;
pub mod det;
pub mod json;
pub mod profile;
pub mod registry;
pub mod trace;

pub use chrome::{export_chrome_json, write_chrome_trace};
pub use critpath::{analyze, CritPath};
pub use det::SplitMix64;
pub use profile::{
    depstream_to_trace, Attribution, CycleClass, DepMeta, DepOp, DepStream, OpKind,
    DEPSTREAM_FORMAT_VERSION,
};
pub use registry::MetricsRegistry;
pub use trace::{SharedTrace, SpanId, TraceEvent, TraceRecorder, TraceSink, TrackId};
