//! A minimal JSON reader — just enough for the golden tests to validate
//! exported Chrome traces and registry dumps without a crates.io parser.
//!
//! Supports the full JSON value grammar (objects keep key order, numbers
//! are f64). Not a validator of exotic corners (surrogate pairs are passed
//! through unpaired); good enough for machine-generated input.

/// A parsed JSON value. Objects preserve key order; all numbers are `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// `[...]`.
    Array(Vec<Value>),
    /// `{...}`, keys in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The number, if this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Escapes `s` for embedding inside a JSON string literal. Handles the
/// two mandatory characters (`"`, `\`), the common whitespace escapes
/// (`\n`, `\r`, `\t`) and every remaining control character in
/// `\u{0000}`–`\u{001F}` as `\uXXXX` — anything less produces invalid
/// JSON the moment a control character lands in a metric key or label.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8 scalar (input is a &str, so `pos`
                    // always lands on a boundary and the tail decodes).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn object_preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<_> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }
}
