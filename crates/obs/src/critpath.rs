//! Dynamic critical-path extraction over a recorded [`DepStream`].
//!
//! The stream is the *realized* dynamic DAG: every committed op with its
//! issue/commit cycles and producer uids. The analyzer answers three
//! questions a stall counter cannot:
//!
//! * **What bounds runtime?** The critical path — the chain of ops walked
//!   backward from the last commit, following at each step the producer
//!   that committed latest (the dependency that actually gated issue).
//! * **Which ops had room to slip?** Per-op slack: how many cycles an op's
//!   commit could slide — assuming each consumer re-issues as soon as its
//!   inputs are ready — before moving the end of the run. Ops on the
//!   critical chain have zero slack whenever their consumers issued as
//!   soon as they were ready.
//! * **What would relaxing a resource buy?** Per-class headroom: the sum of
//!   issue waits (`issue − ready`) of critical-path ops in each resource
//!   class — an upper bound on the speedup from giving that class more
//!   ports/units, in the spirit of the paper's FU-constraint sweeps.

use std::collections::{BTreeMap, HashMap};

use crate::profile::DepStream;

/// The analyzer's result. All fields are deterministic functions of the
/// stream (ties broken by uid), so repeated runs render identical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPath {
    /// Cycles spanned by the critical path: `commit(last) − issue(first) + 1`.
    /// Always ≤ the engine's total cycle count.
    pub length: u64,
    /// Cycle of the last commit in the stream.
    pub end_cycle: u64,
    /// Critical-path op uids in execution order (producer first).
    pub path: Vec<u64>,
    /// Per-resource-class upper bound on cycles reclaimable by relaxing
    /// that class, keyed by class name.
    pub headroom: BTreeMap<String, u64>,
    /// Per-op slack in cycles, parallel to `stream.ops()` order.
    pub slack: Vec<u64>,
    /// Number of ops with zero slack (the critical "front").
    pub zero_slack_ops: usize,
}

impl CritPath {
    /// Classes ranked by headroom, largest first (ties by name).
    pub fn headroom_ranked(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .headroom
            .iter()
            .map(|(k, &n)| (k.as_str(), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

/// Extracts the realized critical path, per-op slack, and per-class
/// headroom from a dependency stream. An empty stream yields a default
/// (all-zero) result.
pub fn analyze(stream: &DepStream) -> CritPath {
    let ops = stream.ops();
    if ops.is_empty() {
        return CritPath::default();
    }
    // uid → position in the stream. Deps referencing uids that never
    // committed (terminators, constants) are simply absent and skipped.
    let index: HashMap<u64, usize> = ops.iter().enumerate().map(|(i, o)| (o.uid, i)).collect();

    // Terminal: the op with the latest commit; ties break toward the
    // smaller uid (first in program order) for determinism.
    let mut terminal = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let best = &ops[terminal];
        if op.commit > best.commit || (op.commit == best.commit && op.uid < best.uid) {
            terminal = i;
        }
    }
    let end_cycle = ops[terminal].commit;

    // Backward walk: at each op, follow the producer that committed latest
    // (the dependency that actually gated readiness). Ties → smaller uid.
    let mut path_rev: Vec<usize> = vec![terminal];
    let mut cur = terminal;
    loop {
        let mut next: Option<usize> = None;
        for &dep in &ops[cur].deps {
            let Some(&di) = index.get(&dep) else { continue };
            match next {
                None => next = Some(di),
                Some(bi) => {
                    let (d, b) = (&ops[di], &ops[bi]);
                    if d.commit > b.commit || (d.commit == b.commit && d.uid < b.uid) {
                        next = Some(di);
                    }
                }
            }
        }
        match next {
            Some(ni) => {
                path_rev.push(ni);
                cur = ni;
            }
            None => break,
        }
    }
    let path_idx: Vec<usize> = path_rev.into_iter().rev().collect();
    let length = end_cycle - ops[path_idx[0]].issue + 1;

    // Headroom: for each critical-path op, its issue wait is
    // `issue − max(dep commits)` — cycles spent ready-blocked on a
    // resource rather than a producer. Charged to the op's class.
    let mut headroom: BTreeMap<String, u64> = BTreeMap::new();
    for &i in &path_idx {
        let op = &ops[i];
        let ready = op
            .deps
            .iter()
            .filter_map(|d| index.get(d).map(|&di| ops[di].commit))
            .max()
            .unwrap_or(0);
        let wait = op.issue.saturating_sub(ready);
        *headroom
            .entry(stream.class(op.class).to_string())
            .or_insert(0) += wait;
    }

    // Slack: a backward latest-commit pass. Every op may commit as late as
    // `end_cycle` unless a consumer constrains it: a consumer that takes
    // `dur_c` cycles and must itself commit by `latest_c` needs its inputs
    // by `latest_c − dur_c`. Deps always point to older (smaller) uids, so
    // one pass in decreasing-uid order propagates consumer constraints onto
    // producers. Chained zero-latency ops can push `latest` below the
    // realized commit; slack clamps at zero.
    let mut by_uid: Vec<usize> = (0..ops.len()).collect();
    by_uid.sort_by_key(|&i| std::cmp::Reverse(ops[i].uid));
    let mut latest: Vec<i64> = vec![end_cycle as i64; ops.len()];
    for &i in &by_uid {
        let dur = (ops[i].commit - ops[i].issue + 1) as i64;
        let need_by = latest[i] - dur;
        for d in &ops[i].deps {
            if let Some(&di) = index.get(d) {
                latest[di] = latest[di].min(need_by);
            }
        }
    }
    let slack: Vec<u64> = ops
        .iter()
        .zip(&latest)
        .map(|(o, &l)| l.saturating_sub(o.commit as i64).max(0) as u64)
        .collect();
    let zero_slack_ops = slack.iter().filter(|&&s| s == 0).count();

    CritPath {
        length,
        end_cycle,
        path: path_idx.iter().map(|&i| ops[i].uid).collect(),
        headroom,
        slack,
        zero_slack_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond: two loads feed an fmul; the slower load is critical.
    ///
    /// ```text
    ///   load#1 (0..2)     load#2 (0..5)
    ///          \           /
    ///           fmul#3 (6..9)
    /// ```
    fn diamond() -> DepStream {
        let mut s = DepStream::new();
        s.record(1, "load", "load", 0, 2, vec![]);
        s.record(2, "load", "load", 0, 5, vec![]);
        s.record(3, "fmul", "fp_mul_f64", 6, 9, vec![1, 2]);
        s
    }

    #[test]
    fn empty_stream_yields_zero_result() {
        let cp = analyze(&DepStream::new());
        assert_eq!(cp.length, 0);
        assert!(cp.path.is_empty());
        assert!(cp.headroom.is_empty());
    }

    #[test]
    fn critical_path_follows_latest_committing_producer() {
        let cp = analyze(&diamond());
        assert_eq!(cp.path, vec![2, 3], "the slow load gates the fmul");
        assert_eq!(cp.end_cycle, 9);
        assert_eq!(cp.length, 10); // issue 0 .. commit 9 inclusive
    }

    #[test]
    fn slack_is_zero_on_path_and_positive_off_path() {
        let s = diamond();
        let cp = analyze(&s);
        // ops order: load#1, load#2, fmul#3
        assert_eq!(cp.slack, vec![3, 0, 0], "fast load can slip 3 cycles");
        assert_eq!(cp.zero_slack_ops, 2);
    }

    #[test]
    fn headroom_charges_issue_waits_per_class() {
        let cp = analyze(&diamond());
        // fmul was ready at commit(load#2)=5 but issued at 6 → 1 cycle.
        assert_eq!(cp.headroom.get("fp_mul_f64"), Some(&1));
        // load#2 issued the cycle it was ready → 0 headroom for loads.
        assert_eq!(cp.headroom.get("load"), Some(&0));
        assert_eq!(cp.headroom_ranked()[0], ("fp_mul_f64", 1));
    }

    #[test]
    fn unknown_dep_uids_are_skipped() {
        let mut s = DepStream::new();
        s.record(5, "add", "int_alu", 0, 1, vec![99]); // 99 never committed
        let cp = analyze(&s);
        assert_eq!(cp.path, vec![5]);
        assert_eq!(cp.length, 2);
    }

    #[test]
    fn chain_length_equals_span_of_chain() {
        let mut s = DepStream::new();
        s.record(1, "a", "int_alu", 0, 0, vec![]);
        s.record(2, "b", "int_alu", 1, 1, vec![1]);
        s.record(3, "c", "int_alu", 2, 2, vec![2]);
        let cp = analyze(&s);
        assert_eq!(cp.path, vec![1, 2, 3]);
        assert_eq!(cp.length, 3);
        assert_eq!(cp.zero_slack_ops, 3);
    }
}
