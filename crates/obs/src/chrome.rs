//! Chrome `trace_event` JSON export.
//!
//! The output is the "JSON Object Format" understood by Perfetto and
//! `chrome://tracing`: a `traceEvents` array of `B`/`E` duration events,
//! `i` instants and `C` counters. Every recorder track becomes a named
//! thread; overlapping spans on one track (a pipelined engine retires many
//! ops in flight) are fanned out onto *lanes*, one thread per lane, so each
//! emitted thread carries a properly nested, monotonic B/E stream.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use crate::trace::{SpanId, TraceEvent, TraceRecorder, TrackId};

struct Span {
    id: SpanId,
    track: TrackId,
    name: String,
    start_ps: u64,
    end_ps: u64,
    seq: u64,
}

use crate::json::escape;

/// Picoseconds → microseconds (the `ts` unit of the trace_event format).
fn ts_us(ts_ps: u64) -> f64 {
    ts_ps as f64 / 1e6
}

/// Serialises a recorder into a Chrome trace_event JSON string.
///
/// Open spans (begun but never ended — e.g. an op still in flight when the
/// run stopped) are closed at the latest timestamp seen so the B/E stream
/// stays balanced. End events whose begin fell out of the ring buffer are
/// dropped.
pub fn export_chrome_json(rec: &TraceRecorder) -> String {
    // Pair begins with ends.
    let mut open: HashMap<SpanId, Span> = HashMap::new();
    let mut spans: Vec<Span> = Vec::new();
    let mut instants: Vec<(TrackId, &str, u64)> = Vec::new();
    let mut counters: Vec<(TrackId, &str, u64, f64)> = Vec::new();
    let mut edges: Vec<(SpanId, SpanId, &str)> = Vec::new();
    let mut max_ts = 0u64;
    let mut seq = 0u64;
    for ev in rec.events() {
        max_ts = max_ts.max(ev.ts_ps());
        match ev {
            TraceEvent::Begin {
                track,
                span,
                name,
                ts_ps,
            } => {
                seq += 1;
                open.insert(
                    *span,
                    Span {
                        id: *span,
                        track: *track,
                        name: name.clone(),
                        start_ps: *ts_ps,
                        end_ps: *ts_ps,
                        seq,
                    },
                );
            }
            TraceEvent::End { span, ts_ps } => {
                if let Some(mut s) = open.remove(span) {
                    s.end_ps = (*ts_ps).max(s.start_ps);
                    spans.push(s);
                }
            }
            TraceEvent::Instant { track, name, ts_ps } => instants.push((*track, name, *ts_ps)),
            TraceEvent::Counter {
                track,
                name,
                ts_ps,
                value,
            } => counters.push((*track, name, *ts_ps, *value)),
            TraceEvent::Edge { from, to, name, .. } => edges.push((*from, *to, name)),
        }
    }
    for (_, mut s) in open.drain() {
        s.end_ps = max_ts.max(s.start_ps);
        spans.push(s);
    }

    // Assign spans to lanes per track: sort by (start, record order), then
    // greedy first-fit so spans on one lane never overlap.
    spans.sort_by_key(|s| (s.track, s.start_ps, s.seq));
    let n_tracks = rec.tracks().len().max(1);
    let mut lane_of: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n_tracks]; // track -> [(span idx, lane)]
    let mut lanes_per_track: Vec<u32> = vec![1; n_tracks];
    {
        let mut lane_ends: Vec<Vec<u64>> = vec![Vec::new(); n_tracks];
        for (i, s) in spans.iter().enumerate() {
            let t = s.track.0 as usize;
            let ends = &mut lane_ends[t];
            let lane = match ends.iter().position(|&e| e <= s.start_ps) {
                Some(l) => l,
                None => {
                    ends.push(0);
                    ends.len() - 1
                }
            };
            ends[lane] = s.end_ps.max(s.start_ps + 1);
            lane_of[t].push((i, lane as u32));
            lanes_per_track[t] = lanes_per_track[t].max(lane as u32 + 1);
        }
    }

    // Dense tid layout: track 0 lanes, then track 1 lanes, ...
    let mut tid_base: Vec<u32> = Vec::with_capacity(n_tracks);
    let mut next_tid = 0u32;
    for lanes in &lanes_per_track {
        tid_base.push(next_tid);
        next_tid += lanes;
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };

    // Thread-name metadata, one per lane.
    for (t, name) in rec.tracks().iter().enumerate() {
        for lane in 0..lanes_per_track[t] {
            let tid = tid_base[t] + lane;
            let label = if lane == 0 {
                escape(name)
            } else {
                format!("{} #{}", escape(name), lane)
            };
            emit(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{label}\"}}}}"
                ),
                &mut out,
            );
            emit(
                format!(
                    "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"sort_index\":{tid}}}}}"
                ),
                &mut out,
            );
        }
    }

    // Spans: per lane, in start order, B immediately followed later by E —
    // each tid's event stream is balanced and time-monotonic by construction.
    for (t, assignments) in lane_of.iter().enumerate() {
        let cat = escape(rec.track_name(TrackId(t as u32)));
        for lane in 0..lanes_per_track[t] {
            let tid = tid_base[t] + lane;
            for &(i, l) in assignments {
                if l != lane {
                    continue;
                }
                let s = &spans[i];
                let name = escape(&s.name);
                emit(
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\
                         \"ts\":{},\"pid\":0,\"tid\":{tid}}}",
                        ts_us(s.start_ps)
                    ),
                    &mut out,
                );
                emit(
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\
                         \"ts\":{},\"pid\":0,\"tid\":{tid}}}",
                        ts_us(s.end_ps)
                    ),
                    &mut out,
                );
            }
        }
    }

    // Dependency edges as flow events, span-end → span-start. Edges whose
    // endpoints fell out of the ring (or never closed into `spans`) are
    // dropped so every emitted `s`/`f` pair binds to real slices.
    let mut span_at: HashMap<SpanId, (u32, u64, u64)> = HashMap::new();
    for (t, assignments) in lane_of.iter().enumerate() {
        for &(i, lane) in assignments {
            let s = &spans[i];
            span_at.insert(s.id, (tid_base[t] + lane, s.start_ps, s.end_ps));
        }
    }
    for (k, (from, to, name)) in edges.into_iter().enumerate() {
        let (Some(&(ftid, _, fend)), Some(&(ttid, tstart, _))) =
            (span_at.get(&from), span_at.get(&to))
        else {
            continue;
        };
        let name = escape(name);
        emit(
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{k},\
                 \"ts\":{},\"pid\":0,\"tid\":{ftid}}}",
                ts_us(fend)
            ),
            &mut out,
        );
        emit(
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{k},\
                 \"ts\":{},\"pid\":0,\"tid\":{ttid}}}",
                ts_us(tstart)
            ),
            &mut out,
        );
    }

    // Instants on the track's first lane.
    for (track, name, ts) in instants {
        let tid = tid_base[track.0 as usize];
        let cat = escape(rec.track_name(track));
        emit(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{tid}}}",
                escape(name),
                ts_us(ts)
            ),
            &mut out,
        );
    }

    // Counters are namespaced by track so same-named counters don't merge.
    for (track, name, ts, value) in counters {
        let full = format!("{}/{}", rec.track_name(track), name);
        emit(
            format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\
                 \"args\":{{\"value\":{value}}}}}",
                escape(&full),
                ts_us(ts)
            ),
            &mut out,
        );
    }

    out.push_str("\n]}\n");
    out
}

/// Exports the recorder to `path` as Chrome trace_event JSON.
pub fn write_chrome_trace(rec: &TraceRecorder, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(export_chrome_json(rec).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    #[test]
    fn overlapping_spans_land_on_distinct_lanes() {
        let mut r = TraceRecorder::default();
        let t = r.track("engine");
        let a = r.begin_span(t, "fmul", 0);
        let b = r.begin_span(t, "fadd", 500);
        r.end_span(a, 2000);
        r.end_span(b, 3000);
        let json = export_chrome_json(&r);
        // Two lanes means two thread_name records for the track.
        assert!(json.contains("\"engine\""));
        assert!(json.contains("engine #1"));
    }

    #[test]
    fn open_spans_are_closed_at_max_ts() {
        let mut r = TraceRecorder::default();
        let t = r.track("dma");
        let _leak = r.begin_span(t, "xfer", 100);
        r.instant(t, "irq", 9000);
        let json = export_chrome_json(&r);
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
        assert!(json.contains("\"ts\":0.009"), "closed at the irq timestamp");
    }

    #[test]
    fn dropped_begin_never_yields_unbalanced_end() {
        // Capacity 2: the Begin is evicted by the two instants, leaving a
        // dangling End in the ring. The exporter must not emit a lone E.
        let mut r = TraceRecorder::new(2);
        let t = r.track("engine");
        let s = r.begin_span(t, "op0", 0);
        r.instant(t, "x", 10);
        r.instant(t, "y", 20); // evicts the Begin
        r.end_span(s, 100); // evicts instant "x"
        assert_eq!(r.dropped(), 2);
        let json = export_chrome_json(&r);
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count(),
            "B/E stream must stay balanced after ring truncation"
        );
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 0);
        assert!(json.contains("\"y\""), "surviving instant still exported");
        salam_test_json_parses(&json);
    }

    #[test]
    fn edges_export_as_matched_flow_pairs() {
        let mut r = TraceRecorder::default();
        let t = r.track("prof");
        let a = r.begin_span(t, "load", 0);
        let b = r.begin_span(t, "fmul", 1000);
        r.end_span(a, 500);
        r.end_span(b, 2000);
        r.edge(a, b, "critical", 500);
        let json = export_chrome_json(&r);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        assert!(json.contains("\"cat\":\"flow\""));
        salam_test_json_parses(&json);
    }

    #[test]
    fn edge_to_ring_dropped_span_is_omitted() {
        let mut r = TraceRecorder::new(3);
        let t = r.track("prof");
        let a = r.begin_span(t, "gone", 0);
        let b = r.begin_span(t, "kept", 10);
        r.end_span(b, 20);
        r.edge(a, b, "critical", 20); // evicts a's Begin → endpoint missing
        let json = export_chrome_json(&r);
        assert_eq!(
            json.matches("\"ph\":\"s\"").count(),
            0,
            "dangling edge dropped"
        );
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 0);
        salam_test_json_parses(&json);
    }

    /// Every exporter test output must at least be valid JSON.
    fn salam_test_json_parses(json: &str) {
        crate::json::parse(json).expect("exporter must emit valid JSON");
    }

    #[test]
    fn names_are_escaped() {
        let mut r = TraceRecorder::default();
        let t = r.track("a\"b");
        r.instant(t, "x\\y", 0);
        let json = export_chrome_json(&r);
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("x\\\\y"));
    }

    #[test]
    fn counters_are_namespaced_by_track() {
        let mut r = TraceRecorder::default();
        let t = r.track("spm");
        r.counter(t, "queue_depth", 1000, 3.0);
        let json = export_chrome_json(&r);
        assert!(json.contains("\"spm/queue_depth\""));
        assert!(json.contains("\"value\":3"));
    }
}
