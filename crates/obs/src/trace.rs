//! Trace collection: sinks, the ring-buffer recorder, and the shared handle.
//!
//! Timestamps are simulation **picoseconds** throughout (the sim-core tick
//! unit); the Chrome exporter converts to microseconds on the way out.

use std::sync::{Arc, Mutex};

/// A named event track, usually one per component ("engine.ops",
/// "cache.l1", "dma0"). Obtained from [`TraceSink::track`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u32);

/// Identifies an open span so the matching end event can be paired with its
/// begin. `SpanId(0)` is the invalid/disabled sentinel and is ignored by
/// [`TraceSink::end_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The disabled/ignored sentinel span id.
    pub const INVALID: SpanId = SpanId(0);

    /// True for any id other than [`SpanId::INVALID`].
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

/// One recorded trace event. Kept deliberately flat so the ring buffer is a
/// plain `VecDeque` with no per-event allocation beyond the name.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span opened on `track` at `ts_ps`.
    Begin {
        /// Track the span belongs to.
        track: TrackId,
        /// Id used by the matching [`TraceEvent::End`].
        span: SpanId,
        /// Human-readable span label.
        name: String,
        /// Open timestamp, picoseconds.
        ts_ps: u64,
    },
    /// The span identified by `span` closed at `ts_ps`.
    End {
        /// Id of the span being closed.
        span: SpanId,
        /// Close timestamp, picoseconds.
        ts_ps: u64,
    },
    /// A point-in-time marker (stall, port reject, interrupt).
    Instant {
        /// Track the marker belongs to.
        track: TrackId,
        /// Marker label.
        name: String,
        /// Timestamp, picoseconds.
        ts_ps: u64,
    },
    /// A counter sample (queue depth, outstanding requests).
    Counter {
        /// Track the counter belongs to.
        track: TrackId,
        /// Counter series name.
        name: String,
        /// Sample timestamp, picoseconds.
        ts_ps: u64,
        /// Sampled value.
        value: f64,
    },
    /// A producer→consumer dependency arrow between two spans (exported as
    /// a Chrome flow event). Used by the profiler to draw the critical path.
    Edge {
        /// Producer span.
        from: SpanId,
        /// Consumer span.
        to: SpanId,
        /// Dependency label.
        name: String,
        /// Timestamp, picoseconds.
        ts_ps: u64,
    },
}

impl TraceEvent {
    /// The timestamp of the event, in picoseconds.
    pub fn ts_ps(&self) -> u64 {
        match self {
            TraceEvent::Begin { ts_ps, .. }
            | TraceEvent::End { ts_ps, .. }
            | TraceEvent::Instant { ts_ps, .. }
            | TraceEvent::Counter { ts_ps, .. }
            | TraceEvent::Edge { ts_ps, .. } => *ts_ps,
        }
    }
}

/// Destination for trace events. The default methods are all no-ops, so a
/// unit struct is a valid (and free) null sink.
pub trait TraceSink {
    /// Whether events will actually be kept. Hooks should early-out on
    /// `false` before formatting names or computing timestamps.
    fn enabled(&self) -> bool {
        false
    }

    /// Registers (or looks up) a named track.
    fn track(&mut self, _name: &str) -> TrackId {
        TrackId(0)
    }

    /// Opens a span; the returned id is passed to [`TraceSink::end_span`].
    fn begin_span(&mut self, _track: TrackId, _name: &str, _ts_ps: u64) -> SpanId {
        SpanId::INVALID
    }

    /// Closes a previously opened span. Invalid ids are ignored.
    fn end_span(&mut self, _span: SpanId, _ts_ps: u64) {}

    /// Records an instantaneous marker.
    fn instant(&mut self, _track: TrackId, _name: &str, _ts_ps: u64) {}

    /// Records a counter sample.
    fn counter(&mut self, _track: TrackId, _name: &str, _ts_ps: u64, _value: f64) {}

    /// Records a dependency arrow between two spans. Invalid endpoints are
    /// ignored.
    fn edge(&mut self, _from: SpanId, _to: SpanId, _name: &str, _ts_ps: u64) {}
}

/// The sink used when tracing is off: every hook is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Ring-buffer recorder. Bounded: once `capacity` events are held, the
/// oldest are dropped (and counted) so a long run cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    tracks: Vec<String>,
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    next_span: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(Self::DEFAULT_CAPACITY)
    }
}

impl TraceRecorder {
    /// Default ring capacity: roomy enough for the bundled experiments while
    /// staying well under a hundred MB of event storage.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A recorder whose ring holds at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            tracks: Vec::new(),
            events: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            next_span: 1,
        }
    }

    /// Track names, indexed by `TrackId`.
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// The name of one track.
    pub fn track_name(&self, track: TrackId) -> &str {
        self.tracks
            .get(track.0 as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held in the ring.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring because the run outgrew `capacity`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Folds another recorder's events into this one, remapping track ids by
    /// name and offsetting span ids so they stay unique; the merged stream
    /// is re-sorted by timestamp (stable, so same-tick ordering is
    /// preserved: self's events first, then `other`'s). This is the fan-in
    /// half of the worker-pool pattern: give each worker its own recorder,
    /// merge them post-run.
    pub fn merge_from(&mut self, other: &TraceRecorder) {
        let track_map: Vec<TrackId> = other.tracks.iter().map(|name| self.track(name)).collect();
        let span_offset = self.next_span;
        let remap_track = |t: TrackId| track_map.get(t.0 as usize).copied().unwrap_or(t);
        let remap_span = |s: SpanId| {
            if s.is_valid() {
                SpanId(s.0 + span_offset)
            } else {
                s
            }
        };
        for ev in &other.events {
            let ev = match ev {
                TraceEvent::Begin {
                    track,
                    span,
                    name,
                    ts_ps,
                } => TraceEvent::Begin {
                    track: remap_track(*track),
                    span: remap_span(*span),
                    name: name.clone(),
                    ts_ps: *ts_ps,
                },
                TraceEvent::End { span, ts_ps } => TraceEvent::End {
                    span: remap_span(*span),
                    ts_ps: *ts_ps,
                },
                TraceEvent::Instant { track, name, ts_ps } => TraceEvent::Instant {
                    track: remap_track(*track),
                    name: name.clone(),
                    ts_ps: *ts_ps,
                },
                TraceEvent::Counter {
                    track,
                    name,
                    ts_ps,
                    value,
                } => TraceEvent::Counter {
                    track: remap_track(*track),
                    name: name.clone(),
                    ts_ps: *ts_ps,
                    value: *value,
                },
                TraceEvent::Edge {
                    from,
                    to,
                    name,
                    ts_ps,
                } => TraceEvent::Edge {
                    from: remap_span(*from),
                    to: remap_span(*to),
                    name: name.clone(),
                    ts_ps: *ts_ps,
                },
            };
            self.events.push_back(ev);
        }
        self.events.make_contiguous().sort_by_key(TraceEvent::ts_ps);
        self.next_span = span_offset + other.next_span;
        self.dropped += other.dropped;
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }
}

impl TraceSink for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn track(&mut self, name: &str) -> TrackId {
        if let Some(i) = self.tracks.iter().position(|t| t == name) {
            return TrackId(i as u32);
        }
        self.tracks.push(name.to_string());
        TrackId((self.tracks.len() - 1) as u32)
    }

    fn begin_span(&mut self, track: TrackId, name: &str, ts_ps: u64) -> SpanId {
        let span = SpanId(self.next_span);
        self.next_span += 1;
        self.push(TraceEvent::Begin {
            track,
            span,
            name: name.to_string(),
            ts_ps,
        });
        span
    }

    fn end_span(&mut self, span: SpanId, ts_ps: u64) {
        if span.is_valid() {
            self.push(TraceEvent::End { span, ts_ps });
        }
    }

    fn instant(&mut self, track: TrackId, name: &str, ts_ps: u64) {
        self.push(TraceEvent::Instant {
            track,
            name: name.to_string(),
            ts_ps,
        });
    }

    fn counter(&mut self, track: TrackId, name: &str, ts_ps: u64, value: f64) {
        self.push(TraceEvent::Counter {
            track,
            name: name.to_string(),
            ts_ps,
            value,
        });
    }

    fn edge(&mut self, from: SpanId, to: SpanId, name: &str, ts_ps: u64) {
        if from.is_valid() && to.is_valid() {
            self.push(TraceEvent::Edge {
                from,
                to,
                name: name.to_string(),
                ts_ps,
            });
        }
    }
}

/// The handle instrumented components hold. Cloning shares the underlying
/// recorder. The handle is `Send + Sync` (`Arc<Mutex<..>>`) so simulations
/// can run on worker-pool threads; each simulation still owns its private
/// recorder, so the lock is never contended — the intended multi-threaded
/// pattern is one recorder per worker, merged post-run with
/// [`TraceRecorder::merge_from`]. A disabled handle is `None` inside: every
/// hook is one branch and no formatting or allocation happens.
#[derive(Debug, Clone, Default)]
pub struct SharedTrace {
    inner: Option<Arc<Mutex<TraceRecorder>>>,
}

impl SharedTrace {
    /// A handle that records nothing. This is the default everywhere.
    pub fn disabled() -> Self {
        SharedTrace { inner: None }
    }

    /// A live handle backed by a fresh default-capacity recorder.
    pub fn enabled() -> Self {
        SharedTrace::from_recorder(TraceRecorder::default())
    }

    /// Wraps an existing recorder.
    pub fn from_recorder(rec: TraceRecorder) -> Self {
        SharedTrace {
            inner: Some(Arc::new(Mutex::new(rec))),
        }
    }

    /// Extracts the recorder, leaving a disabled handle behind. Other
    /// clones of the same handle keep recording into an empty recorder.
    /// This is how a worker hands its private trace back for merging.
    pub fn take_recorder(&mut self) -> Option<TraceRecorder> {
        let rc = self.inner.take()?;
        let rec = std::mem::take(&mut *rc.lock().unwrap());
        Some(rec)
    }

    /// `true` when events are actually collected. Hooks that need to format
    /// names or compute timestamps should check this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Looks up or creates the named track. Returns `TrackId(0)` when
    /// tracing is disabled.
    pub fn track(&self, name: &str) -> TrackId {
        match &self.inner {
            Some(rc) => rc.lock().unwrap().track(name),
            None => TrackId(0),
        }
    }

    /// Opens a span; returns [`SpanId::INVALID`] when tracing is disabled.
    #[inline]
    pub fn begin_span(&self, track: TrackId, name: &str, ts_ps: u64) -> SpanId {
        match &self.inner {
            Some(rc) => rc.lock().unwrap().begin_span(track, name, ts_ps),
            None => SpanId::INVALID,
        }
    }

    /// Closes a previously opened span. No-op when disabled.
    #[inline]
    pub fn end_span(&self, span: SpanId, ts_ps: u64) {
        if let Some(rc) = &self.inner {
            rc.lock().unwrap().end_span(span, ts_ps);
        }
    }

    /// Records a point-in-time marker. No-op when disabled.
    #[inline]
    pub fn instant(&self, track: TrackId, name: &str, ts_ps: u64) {
        if let Some(rc) = &self.inner {
            rc.lock().unwrap().instant(track, name, ts_ps);
        }
    }

    /// Records a counter sample. No-op when disabled.
    #[inline]
    pub fn counter(&self, track: TrackId, name: &str, ts_ps: u64, value: f64) {
        if let Some(rc) = &self.inner {
            rc.lock().unwrap().counter(track, name, ts_ps, value);
        }
    }

    /// Records a dependency arrow between two spans. No-op when disabled.
    #[inline]
    pub fn edge(&self, from: SpanId, to: SpanId, name: &str, ts_ps: u64) {
        if let Some(rc) = &self.inner {
            rc.lock().unwrap().edge(from, to, name, ts_ps);
        }
    }

    /// Runs `f` against the recorder, if enabled. Used by exporters.
    pub fn with_recorder<R>(&self, f: impl FnOnce(&TraceRecorder) -> R) -> Option<R> {
        self.inner.as_ref().map(|rc| f(&rc.lock().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_pairs_spans_and_assigns_unique_ids() {
        let mut r = TraceRecorder::default();
        let t = r.track("engine");
        let a = r.begin_span(t, "load", 0);
        let b = r.begin_span(t, "fmul", 1000);
        assert_ne!(a, b);
        r.end_span(b, 3000);
        r.end_span(a, 5000);
        assert_eq!(r.len(), 4);
        assert_eq!(r.track_name(t), "engine");
    }

    #[test]
    fn track_lookup_is_idempotent() {
        let mut r = TraceRecorder::default();
        let a = r.track("x");
        let b = r.track("x");
        let c = r.track("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut r = TraceRecorder::new(4);
        let t = r.track("t");
        for i in 0..10u64 {
            r.instant(t, "tick", i * 100);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.events().next().unwrap().ts_ps(), 600);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = SharedTrace::disabled();
        assert!(!h.is_enabled());
        let t = h.track("engine");
        let s = h.begin_span(t, "op", 0);
        assert!(!s.is_valid());
        h.end_span(s, 10);
        h.instant(t, "stall", 20);
        h.counter(t, "depth", 30, 1.0);
        assert!(h.with_recorder(|r| r.len()).is_none());
    }

    #[test]
    fn shared_handle_clones_share_the_recorder() {
        let h = SharedTrace::enabled();
        let h2 = h.clone();
        let t = h.track("c");
        h2.instant(t, "irq", 42);
        assert_eq!(h.with_recorder(|r| r.len()), Some(1));
    }

    #[test]
    fn shared_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedTrace>();
        assert_send_sync::<TraceRecorder>();
    }

    #[test]
    fn merge_remaps_tracks_and_spans_and_sorts_by_time() {
        let mut a = TraceRecorder::default();
        let ta = a.track("engine");
        let s1 = a.begin_span(ta, "op0", 100);
        a.end_span(s1, 400);

        let mut b = TraceRecorder::default();
        let tb_eng = b.track("engine");
        let tb_dma = b.track("dma");
        let s2 = b.begin_span(tb_eng, "op1", 200);
        b.end_span(s2, 300);
        b.instant(tb_dma, "burst", 250);

        a.merge_from(&b);
        assert_eq!(a.tracks(), &["engine".to_string(), "dma".to_string()]);
        let ts: Vec<u64> = a.events().map(|e| e.ts_ps()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "merged events must be time-ordered");
        // Span ids from `b` were offset past `a`'s, and begin/end still pair.
        let mut begins = Vec::new();
        let mut ends = Vec::new();
        for e in a.events() {
            match e {
                TraceEvent::Begin { span, track, .. } => begins.push((*span, *track)),
                TraceEvent::End { span, .. } => ends.push(*span),
                _ => {}
            }
        }
        assert_eq!(begins.len(), 2);
        assert_ne!(begins[0].0, begins[1].0, "span ids stay unique");
        for (span, _) in &begins {
            assert!(ends.contains(span), "every begin keeps its end");
        }
        // b's engine track landed on a's existing engine track.
        assert!(begins.iter().all(|(_, t)| *t == TrackId(0)));
    }

    #[test]
    fn merge_respects_capacity() {
        let mut a = TraceRecorder::new(3);
        let t = a.track("t");
        for i in 0..3u64 {
            a.instant(t, "x", i);
        }
        let mut b = TraceRecorder::new(3);
        let tb = b.track("t");
        for i in 10..13u64 {
            b.instant(tb, "y", i);
        }
        a.merge_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.dropped(), 3);
        assert_eq!(a.events().next().unwrap().ts_ps(), 10);
    }

    #[test]
    fn take_recorder_disables_the_handle() {
        let mut h = SharedTrace::enabled();
        let t = h.track("c");
        h.instant(t, "irq", 1);
        let rec = h.take_recorder().expect("was enabled");
        assert_eq!(rec.len(), 1);
        assert!(!h.is_enabled());
        assert!(h.take_recorder().is_none());
    }

    #[test]
    fn merge_from_empty_recorder_is_a_noop() {
        let mut a = TraceRecorder::default();
        let t = a.track("engine");
        a.instant(t, "x", 100);
        let before: Vec<TraceEvent> = a.events().cloned().collect();
        let span_watermark = a.next_span;

        a.merge_from(&TraceRecorder::default());
        let after: Vec<TraceEvent> = a.events().cloned().collect();
        assert_eq!(before, after, "merging an empty recorder changes nothing");
        assert_eq!(a.tracks(), &["engine".to_string()]);
        assert_eq!(a.dropped(), 0);
        // Span-id allocation must still be collision-free afterwards.
        let s = a.begin_span(t, "later", 200);
        assert!(s.0 >= span_watermark);
    }

    #[test]
    fn merge_collapses_same_named_tracks_across_recorders() {
        // Both recorders define "engine" and "dma", in *opposite* order, so
        // a naive id-preserving merge would cross-wire the tracks.
        let mut a = TraceRecorder::default();
        let a_eng = a.track("engine");
        let a_dma = a.track("dma");
        a.instant(a_eng, "a-eng", 10);
        a.instant(a_dma, "a-dma", 20);

        let mut b = TraceRecorder::default();
        let b_dma = b.track("dma"); // TrackId(0) here, but "dma" by name
        let b_eng = b.track("engine");
        b.instant(b_dma, "b-dma", 30);
        b.instant(b_eng, "b-eng", 40);

        a.merge_from(&b);
        assert_eq!(a.tracks(), &["engine".to_string(), "dma".to_string()]);
        for ev in a.events() {
            if let TraceEvent::Instant { track, name, .. } = ev {
                let expect = if name.ends_with("eng") {
                    "engine"
                } else {
                    "dma"
                };
                assert_eq!(
                    a.track_name(*track),
                    expect,
                    "event {name} must land on its named track"
                );
            }
        }
    }

    #[test]
    fn three_worker_merge_preserves_global_time_order() {
        // Three workers with deliberately interleaved timestamps.
        let mut workers: Vec<TraceRecorder> = Vec::new();
        for w in 0..3u64 {
            let mut r = TraceRecorder::default();
            let t = r.track(&format!("worker{w}"));
            let s = r.begin_span(t, "job", w * 7 + 1);
            r.instant(t, "mark", w * 13 + 50);
            r.end_span(s, 1000 - w * 100);
            workers.push(r);
        }
        let mut merged = TraceRecorder::default();
        for w in &workers {
            merged.merge_from(w);
        }
        assert_eq!(merged.len(), 9);
        assert_eq!(merged.tracks().len(), 3);
        let ts: Vec<u64> = merged.events().map(TraceEvent::ts_ps).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "merged stream must be globally time-sorted: {ts:?}"
        );
        // All nine span/instant events survive with unique span ids.
        let mut span_ids: Vec<u64> = merged
            .events()
            .filter_map(|e| match e {
                TraceEvent::Begin { span, .. } => Some(span.0),
                _ => None,
            })
            .collect();
        span_ids.sort_unstable();
        span_ids.dedup();
        assert_eq!(span_ids.len(), 3, "one unique span per worker");
    }

    #[test]
    fn edges_record_and_merge_with_remapped_spans() {
        let mut b = TraceRecorder::default();
        let t = b.track("prof");
        let s1 = b.begin_span(t, "load", 0);
        let s2 = b.begin_span(t, "fmul", 100);
        b.end_span(s1, 50);
        b.end_span(s2, 200);
        b.edge(s1, s2, "critical", 50);
        b.edge(SpanId::INVALID, s2, "ignored", 60);
        assert_eq!(b.len(), 5, "invalid edge endpoints are dropped");

        let mut a = TraceRecorder::default();
        let ta = a.track("prof");
        let s0 = a.begin_span(ta, "warmup", 0);
        a.end_span(s0, 10);
        a.merge_from(&b);
        let edge = a
            .events()
            .find_map(|e| match e {
                TraceEvent::Edge { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .expect("edge survives merge");
        let begins: Vec<SpanId> = a
            .events()
            .filter_map(|e| match e {
                TraceEvent::Begin { span, .. } => Some(*span),
                _ => None,
            })
            .collect();
        assert!(begins.contains(&edge.0) && begins.contains(&edge.1));
        assert_ne!(edge.0, s0, "merged edge endpoints were offset");
    }

    #[test]
    fn null_sink_ignores_everything() {
        let mut s = NullSink;
        assert!(!s.enabled());
        let t = s.track("t");
        let sp = s.begin_span(t, "x", 0);
        assert_eq!(sp, SpanId::INVALID);
    }
}
