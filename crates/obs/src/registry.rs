//! A hierarchical metrics registry with dotted-path names.
//!
//! One flat map, dot-separated paths (`cluster0.gemm.engine.stall_cycles`),
//! insertion order preserved so dumps read in the order components reported.
//! Lookups and overwrites are O(1) via a side index — components export
//! hundreds of stats per run and the registry is rebuilt per report.

use crate::json::escape;
use std::collections::HashMap;

/// A flat, insertion-ordered `path -> f64` metrics store with JSON export.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, f64)>,
    index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Sets `path` to `value`, overwriting in place (insertion order is
    /// kept from the first set).
    pub fn set(&mut self, path: &str, value: f64) {
        match self.index.get(path) {
            Some(&i) => self.entries[i].1 = value,
            None => {
                self.index.insert(path.to_string(), self.entries.len());
                self.entries.push((path.to_string(), value));
            }
        }
    }

    /// Adds `value` to `path`, creating it at zero if absent.
    pub fn add(&mut self, path: &str, value: f64) {
        match self.index.get(path) {
            Some(&i) => self.entries[i].1 += value,
            None => self.set(path, value),
        }
    }

    /// The current value of `path`, if set.
    pub fn get(&self, path: &str) -> Option<f64> {
        self.index.get(path).map(|&i| self.entries[i].1)
    }

    /// Merges `(name, value)` pairs under `prefix` (joined with a dot), the
    /// bulk-import path used by component/engine stat exports.
    pub fn merge_prefixed<I, S>(&mut self, prefix: &str, pairs: I)
    where
        I: IntoIterator<Item = (S, f64)>,
        S: AsRef<str>,
    {
        for (name, value) in pairs {
            if prefix.is_empty() {
                self.set(name.as_ref(), value);
            } else {
                self.set(&format!("{prefix}.{}", name.as_ref()), value);
            }
        }
    }

    /// All metrics in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Number of metric paths recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Metrics under `prefix.` (or exactly `prefix`), insertion order.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, f64)> {
        self.entries.iter().filter_map(move |(k, v)| {
            let rest = k.strip_prefix(prefix)?;
            if rest.is_empty() || rest.starts_with('.') {
                Some((k.as_str(), *v))
            } else {
                None
            }
        })
    }

    /// A flat JSON object, `{"path": value, ...}`, insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": {}", escape(k), fmt_value(*v)));
        }
        out.push_str("\n}\n");
        out
    }

    /// A two-column, dot-aligned text table for terminal dumps.
    pub fn to_table(&self) -> String {
        let width = self.entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(&format!("{k:<width$}  {}\n", fmt_value(*v)));
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites_in_place_preserving_order() {
        let mut r = MetricsRegistry::new();
        r.set("a.x", 1.0);
        r.set("a.y", 2.0);
        r.set("a.x", 3.0);
        assert_eq!(r.get("a.x"), Some(3.0));
        let keys: Vec<_> = r.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a.x", "a.y"]);
    }

    #[test]
    fn add_accumulates() {
        let mut r = MetricsRegistry::new();
        r.add("hits", 2.0);
        r.add("hits", 3.0);
        assert_eq!(r.get("hits"), Some(5.0));
    }

    #[test]
    fn merge_prefixed_joins_with_dots() {
        let mut r = MetricsRegistry::new();
        r.merge_prefixed(
            "cluster0.gemm",
            vec![("engine.stall_cycles".to_string(), 7.0)],
        );
        assert_eq!(r.get("cluster0.gemm.engine.stall_cycles"), Some(7.0));
        r.merge_prefixed("", vec![("top".to_string(), 1.0)]);
        assert_eq!(r.get("top"), Some(1.0));
    }

    #[test]
    fn with_prefix_respects_path_boundaries() {
        let mut r = MetricsRegistry::new();
        r.set("eng.x", 1.0);
        r.set("engine.y", 2.0);
        let got: Vec<_> = r.with_prefix("eng").map(|(k, _)| k).collect();
        assert_eq!(got, ["eng.x"]);
    }

    #[test]
    fn control_characters_in_keys_still_produce_valid_json() {
        let mut r = MetricsRegistry::new();
        r.set("bad\nkey\twith\u{1}ctrl", 1.0);
        r.set("quote\"and\\slash", 2.0);
        let j = r.to_json();
        let parsed = crate::json::parse(&j).unwrap();
        assert_eq!(
            parsed
                .get("bad\nkey\twith\u{1}ctrl")
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            parsed.get("quote\"and\\slash").and_then(|v| v.as_f64()),
            Some(2.0)
        );
    }

    #[test]
    fn json_dump_is_valid_and_ordered() {
        let mut r = MetricsRegistry::new();
        r.set("b", 2.0);
        r.set("a", 1.5);
        let j = r.to_json();
        let parsed = crate::json::parse(&j).unwrap();
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].1.as_f64(), Some(1.5));
    }
}
