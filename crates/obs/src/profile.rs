//! Cycle accounting: the attribution taxonomy every engine cycle is charged
//! against, and the compact dependency stream recorded for critical-path
//! analysis (see [`crate::critpath`]).
//!
//! The taxonomy is mutually exclusive by construction: the engine classifies
//! each cycle into exactly one [`CycleClass`], so an [`Attribution`]'s
//! buckets always sum to the engine's total cycle count — the invariant the
//! CI smoke asserts. The [`DepStream`] is the raw material of the analyzer:
//! one record per committed dynamic op with interned name/class strings and
//! producer uids, cheap enough to keep for whole MachSuite runs.

use crate::trace::{TraceRecorder, TraceSink};

/// Where a single engine cycle went. Exactly one class per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CycleClass {
    /// At least one op issued this cycle — forward progress.
    Compute,
    /// Ready work exists but every candidate waits on a producer.
    DepStall,
    /// An op was ready to issue but its functional-unit pool was exhausted.
    FuLimit,
    /// A memory op was ready but the port rejected it (or the outstanding
    /// limit was hit) — contention in the memory system.
    MemPort,
    /// Nothing issuable; the engine is waiting on in-flight memory or DMA.
    DmaWait,
    /// Fetch/drain overhead: no work resident in any queue.
    Control,
}

impl CycleClass {
    /// Every class, in report order. `dominant` breaks ties toward the
    /// earlier entry, so the order is part of the deterministic contract.
    pub const ALL: [CycleClass; 6] = [
        CycleClass::Compute,
        CycleClass::DepStall,
        CycleClass::FuLimit,
        CycleClass::MemPort,
        CycleClass::DmaWait,
        CycleClass::Control,
    ];

    /// Stable label used in JSON reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            CycleClass::Compute => "compute",
            CycleClass::DepStall => "dep_stall",
            CycleClass::FuLimit => "fu_limit",
            CycleClass::MemPort => "mem_port",
            CycleClass::DmaWait => "dma_wait",
            CycleClass::Control => "control",
        }
    }

    /// Inverse of [`CycleClass::label`].
    pub fn from_label(s: &str) -> Option<CycleClass> {
        CycleClass::ALL.into_iter().find(|c| c.label() == s)
    }

    fn index(self) -> usize {
        CycleClass::ALL.iter().position(|&c| c == self).unwrap()
    }
}

/// Per-class cycle counters. `total()` equals the engine's cycle count
/// because the engine charges exactly one class per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    counts: [u64; 6],
}

impl Attribution {
    /// Charges one cycle to `class`.
    pub fn charge(&mut self, class: CycleClass) {
        self.counts[class.index()] += 1;
    }

    /// Charges `n` cycles to `class` (deserialization, aggregation).
    pub fn add(&mut self, class: CycleClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Cycles charged to `class`.
    pub fn get(&self, class: CycleClass) -> u64 {
        self.counts[class.index()]
    }

    /// Sum over all classes — must equal the engine's total cycles.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The class with the most cycles; ties break toward the earlier entry
    /// of [`CycleClass::ALL`], keeping reports deterministic.
    pub fn dominant(&self) -> CycleClass {
        let mut best = CycleClass::ALL[0];
        for &c in &CycleClass::ALL[1..] {
            if self.get(c) > self.get(best) {
                best = c;
            }
        }
        best
    }

    /// Fraction of total cycles charged to `class` (0.0 on empty runs).
    pub fn fraction(&self, class: CycleClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(class) as f64 / total as f64
        }
    }

    /// `(class, cycles)` pairs in [`CycleClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleClass, u64)> + '_ {
        CycleClass::ALL.into_iter().map(|c| (c, self.get(c)))
    }
}

/// What a recorded op *is*, for replay resource modeling: compute ops
/// occupy functional units, memory ops occupy SPM ports and the
/// outstanding-access queues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OpKind {
    /// Occupies a functional unit.
    #[default]
    Compute,
    /// A memory read (SPM read port + outstanding-access slot).
    Load,
    /// A memory write (SPM write port + outstanding-access slot).
    Store,
}

impl OpKind {
    /// Stable numeric encoding used by the on-disk format.
    pub fn as_u8(self) -> u8 {
        match self {
            OpKind::Compute => 0,
            OpKind::Load => 1,
            OpKind::Store => 2,
        }
    }

    /// Inverse of [`OpKind::as_u8`].
    pub fn from_u8(v: u8) -> Option<OpKind> {
        match v {
            0 => Some(OpKind::Compute),
            1 => Some(OpKind::Load),
            2 => Some(OpKind::Store),
            _ => None,
        }
    }
}

/// Replay metadata attached to a [`DepOp`] at record time. Everything a
/// list-scheduling replay needs to re-run the op under different resource
/// constraints without re-simulating: what resource it occupies, how long
/// it holds it, where it came from in the static program, and which
/// control/address producers gate it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepMeta {
    /// Compute / load / store.
    pub kind: OpKind,
    /// Intrinsic op latency in cycles (FU latency for compute ops; the
    /// *recorded* memory latency for loads/stores — replay retimes those).
    pub latency: u32,
    /// Static instruction index (`InstId`) in program order.
    pub inst: u32,
    /// Block-import sequence number: ops imported by the same
    /// `import_block` call share a group, groups are numbered 0.. in
    /// import order.
    pub group: u32,
    /// Uid of the terminator whose issue triggered this op's block import
    /// (0 for the entry block).
    pub ctrl: u64,
    /// Memory ops: uid of the pointer-operand producer (0 when the
    /// address is an immediate/argument).
    pub addr_dep: u64,
    /// Memory ops: byte address touched (0 for compute ops).
    pub addr: u64,
    /// Memory ops: access size in bytes (0 for compute ops).
    pub size: u32,
}

/// One committed dynamic op in the dependency stream. `name` and `class`
/// index the stream's interned string tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepOp {
    /// The engine's dynamic-instance uid (unique, monotonically assigned).
    pub uid: u64,
    /// Interned mnemonic ("fmul", "load", ...).
    pub name: u32,
    /// Interned resource class — the FU name for compute ops, the issue
    /// class ("load"/"store") for memory ops.
    pub class: u32,
    /// Cycle the op issued.
    pub issue: u64,
    /// Cycle the op committed (result became visible to consumers).
    pub commit: u64,
    /// Uids of the producers this instance depended on.
    pub deps: Vec<u64>,
    /// Replay metadata (defaulted for streams recorded via [`DepStream::record`]).
    pub meta: DepMeta,
}

/// The compact producer→consumer record of one run: interned string tables
/// plus one [`DepOp`] per committed dynamic op, in commit order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepStream {
    names: Vec<String>,
    classes: Vec<String>,
    ops: Vec<DepOp>,
}

impl DepStream {
    /// An empty stream.
    pub fn new() -> Self {
        DepStream::default()
    }

    /// Interns an op mnemonic, returning its table index.
    pub fn intern_name(&mut self, s: &str) -> u32 {
        intern(&mut self.names, s)
    }

    /// Interns a resource-class name, returning its table index.
    pub fn intern_class(&mut self, s: &str) -> u32 {
        intern(&mut self.classes, s)
    }

    /// Appends a committed op. Deps should reference earlier uids; unknown
    /// uids (e.g. terminators that never issue) are tolerated by the
    /// analyzer. Replay metadata is defaulted; recorders that feed the
    /// replay fast path use [`DepStream::record_meta`].
    pub fn record(
        &mut self,
        uid: u64,
        name: &str,
        class: &str,
        issue: u64,
        commit: u64,
        deps: Vec<u64>,
    ) {
        self.record_meta(uid, name, class, issue, commit, deps, DepMeta::default());
    }

    /// Appends a committed op together with its replay metadata.
    #[allow(clippy::too_many_arguments)]
    pub fn record_meta(
        &mut self,
        uid: u64,
        name: &str,
        class: &str,
        issue: u64,
        commit: u64,
        deps: Vec<u64>,
        meta: DepMeta,
    ) {
        let name = self.intern_name(name);
        let class = self.intern_class(class);
        self.ops.push(DepOp {
            uid,
            name,
            class,
            issue,
            commit,
            deps,
            meta,
        });
    }

    /// Ops in commit order.
    pub fn ops(&self) -> &[DepOp] {
        &self.ops
    }

    /// Resolves an interned mnemonic.
    pub fn name(&self, idx: u32) -> &str {
        self.names
            .get(idx as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Resolves an interned resource class.
    pub fn class(&self, idx: u32) -> &str {
        self.classes
            .get(idx as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// All interned resource classes.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Versioned on-disk serialization: a JSON object carrying the format
    /// version, the exact per-op column schema, the interned string tables
    /// and one compact row array per op. [`DepStream::from_json`] refuses
    /// anything whose version *or* column list differs, so event-schema
    /// changes fail loudly instead of mis-replaying.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let strings = |table: &[String]| {
            table
                .iter()
                .map(|s| format!("\"{}\"", esc(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let columns = DEPSTREAM_COLUMNS
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "\"format_version\": {DEPSTREAM_FORMAT_VERSION},\n"
        ));
        out.push_str(&format!("\"columns\": [{columns}],\n"));
        out.push_str(&format!("\"names\": [{}],\n", strings(&self.names)));
        out.push_str(&format!("\"classes\": [{}],\n", strings(&self.classes)));
        out.push_str("\"ops\": [");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let deps = op
                .deps
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "\n[{},{},{},{},{},{},{},{},{},{},{},{},{},[{deps}]]",
                op.uid,
                op.name,
                op.class,
                op.issue,
                op.commit,
                op.meta.kind.as_u8(),
                op.meta.latency,
                op.meta.inst,
                op.meta.group,
                op.meta.ctrl,
                op.meta.addr_dep,
                op.meta.addr,
                op.meta.size,
            ));
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Parses a stream serialized by [`DepStream::to_json`].
    ///
    /// # Errors
    ///
    /// A descriptive message when the document is not valid JSON, the
    /// format version is missing or different from
    /// [`DEPSTREAM_FORMAT_VERSION`], the column schema differs, or any row
    /// is malformed. Version/schema mismatches are *always* errors — a
    /// stream from another schema must never be silently replayed.
    pub fn from_json(text: &str) -> Result<DepStream, String> {
        let v = crate::json::parse(text).map_err(|e| format!("depstream: bad JSON: {e}"))?;
        DepStream::from_json_value(&v)
    }

    /// [`DepStream::from_json`] on an already-parsed JSON value — for
    /// containers (the DSE result cache) that embed a stream inside a
    /// larger document and parse the whole document once.
    ///
    /// # Errors
    ///
    /// Same contract as [`DepStream::from_json`].
    pub fn from_json_value(v: &crate::json::Value) -> Result<DepStream, String> {
        let version = v
            .get("format_version")
            .and_then(|x| x.as_f64())
            .ok_or("depstream: missing format_version field")?;
        if version != DEPSTREAM_FORMAT_VERSION as f64 {
            return Err(format!(
                "depstream: format_version {version} but this build reads \
                 {DEPSTREAM_FORMAT_VERSION} — refusing to replay a stream \
                 from a different event schema"
            ));
        }
        let columns: Vec<&str> = v
            .get("columns")
            .and_then(|x| x.as_array())
            .ok_or("depstream: missing columns field")?
            .iter()
            .map(|c| c.as_str().unwrap_or("?"))
            .collect();
        if columns != DEPSTREAM_COLUMNS {
            return Err(format!(
                "depstream: column schema {columns:?} differs from \
                 {DEPSTREAM_COLUMNS:?} — refusing to replay"
            ));
        }
        let strings = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(|x| x.as_array())
                .ok_or_else(|| format!("depstream: missing {key} table"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("depstream: non-string entry in {key}"))
                })
                .collect()
        };
        let names = strings("names")?;
        let classes = strings("classes")?;
        let rows = v
            .get("ops")
            .and_then(|x| x.as_array())
            .ok_or("depstream: missing ops array")?;
        let mut ops = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("depstream: op row {i} is not an array"))?;
            if cells.len() != DEPSTREAM_COLUMNS.len() {
                return Err(format!(
                    "depstream: op row {i} has {} cells, expected {}",
                    cells.len(),
                    DEPSTREAM_COLUMNS.len()
                ));
            }
            let num = |j: usize| -> Result<u64, String> {
                cells[j]
                    .as_f64()
                    .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                    .map(|f| f as u64)
                    .ok_or_else(|| {
                        format!(
                            "depstream: op row {i} column {} is not a non-negative integer",
                            DEPSTREAM_COLUMNS[j]
                        )
                    })
            };
            let kind = OpKind::from_u8(num(5)? as u8)
                .ok_or_else(|| format!("depstream: op row {i} has unknown kind"))?;
            let deps = cells[13]
                .as_array()
                .ok_or_else(|| format!("depstream: op row {i} deps is not an array"))?
                .iter()
                .map(|d| {
                    d.as_f64()
                        .map(|f| f as u64)
                        .ok_or_else(|| format!("depstream: op row {i} has a non-numeric dep"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            ops.push(DepOp {
                uid: num(0)?,
                name: num(1)? as u32,
                class: num(2)? as u32,
                issue: num(3)?,
                commit: num(4)?,
                deps,
                meta: DepMeta {
                    kind,
                    latency: num(6)? as u32,
                    inst: num(7)? as u32,
                    group: num(8)? as u32,
                    ctrl: num(9)?,
                    addr_dep: num(10)?,
                    addr: num(11)?,
                    size: num(12)? as u32,
                },
            });
        }
        Ok(DepStream {
            names,
            classes,
            ops,
        })
    }
}

/// Version stamp of the [`DepStream`] on-disk format. Bump on **any**
/// change to the event schema so old streams fail loudly at import.
pub const DEPSTREAM_FORMAT_VERSION: u32 = 1;

/// The exact per-op row schema of the on-disk format, in cell order.
pub const DEPSTREAM_COLUMNS: [&str; 14] = [
    "uid", "name", "class", "issue", "commit", "kind", "latency", "inst", "group", "ctrl",
    "addr_dep", "addr", "size", "deps",
];

fn intern(table: &mut Vec<String>, s: &str) -> u32 {
    if let Some(i) = table.iter().position(|t| t == s) {
        return i as u32;
    }
    table.push(s.to_string());
    (table.len() - 1) as u32
}

/// Renders a dependency stream as a trace: one track per resource class,
/// one span per op (issue→commit in simulated time), and the realized
/// critical path drawn as flow [`crate::trace::TraceEvent::Edge`]s between
/// consecutive path ops — the "explained timeline" view of a run.
pub fn depstream_to_trace(
    stream: &DepStream,
    critical_path: &[u64],
    clock_period_ps: u64,
) -> TraceRecorder {
    let period = clock_period_ps.max(1);
    let mut rec = TraceRecorder::new(TraceRecorder::DEFAULT_CAPACITY.max(stream.len() * 2 + 16));
    let mut span_of: std::collections::HashMap<u64, crate::trace::SpanId> =
        std::collections::HashMap::new();
    for op in stream.ops() {
        let track = rec.track(&format!("class.{}", stream.class(op.class)));
        let span = rec.begin_span(track, stream.name(op.name), op.issue * period);
        rec.end_span(span, (op.commit + 1) * period);
        span_of.insert(op.uid, span);
    }
    for pair in critical_path.windows(2) {
        if let (Some(&from), Some(&to)) = (span_of.get(&pair[0]), span_of.get(&pair[1])) {
            let ts = stream
                .ops()
                .iter()
                .find(|o| o.uid == pair[0])
                .map(|o| (o.commit + 1) * period)
                .unwrap_or(0);
            rec.edge(from, to, "critical", ts);
        }
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_total_is_sum_of_charges() {
        let mut a = Attribution::default();
        a.charge(CycleClass::Compute);
        a.charge(CycleClass::Compute);
        a.charge(CycleClass::DmaWait);
        a.add(CycleClass::Control, 3);
        assert_eq!(a.total(), 6);
        assert_eq!(a.get(CycleClass::Compute), 2);
        assert_eq!(a.get(CycleClass::FuLimit), 0);
    }

    #[test]
    fn dominant_breaks_ties_toward_report_order() {
        let mut a = Attribution::default();
        a.add(CycleClass::DepStall, 5);
        a.add(CycleClass::DmaWait, 5);
        assert_eq!(a.dominant(), CycleClass::DepStall);
        a.add(CycleClass::DmaWait, 1);
        assert_eq!(a.dominant(), CycleClass::DmaWait);
    }

    #[test]
    fn labels_roundtrip() {
        for c in CycleClass::ALL {
            assert_eq!(CycleClass::from_label(c.label()), Some(c));
        }
        assert_eq!(CycleClass::from_label("nope"), None);
    }

    #[test]
    fn depstream_interns_and_resolves() {
        let mut s = DepStream::new();
        s.record(1, "load", "load", 0, 2, vec![]);
        s.record(2, "fmul", "fp_mul_f64", 3, 7, vec![1]);
        s.record(3, "load", "load", 1, 3, vec![]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ops()[0].name, s.ops()[2].name, "mnemonics interned once");
        assert_eq!(s.name(s.ops()[1].name), "fmul");
        assert_eq!(s.class(s.ops()[1].class), "fp_mul_f64");
        assert_eq!(s.classes(), &["load".to_string(), "fp_mul_f64".to_string()]);
    }

    #[test]
    fn depstream_json_roundtrip_preserves_everything() {
        let mut s = DepStream::new();
        s.record(1, "load", "load", 0, 2, vec![]);
        s.record_meta(
            2,
            "fmul",
            "fp_mul_f64",
            3,
            7,
            vec![1],
            DepMeta {
                kind: OpKind::Compute,
                latency: 4,
                inst: 9,
                group: 1,
                ctrl: 1,
                addr_dep: 0,
                addr: 0,
                size: 0,
            },
        );
        s.record_meta(
            3,
            "store",
            "store",
            8,
            9,
            vec![2],
            DepMeta {
                kind: OpKind::Store,
                latency: 1,
                inst: 10,
                group: 1,
                ctrl: 1,
                addr_dep: 2,
                addr: 1024,
                size: 8,
            },
        );
        let json = s.to_json();
        let back = DepStream::from_json(&json).unwrap();
        assert_eq!(back, s);
        // Re-serializing the parsed stream is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn depstream_import_rejects_other_versions_and_schemas() {
        let mut s = DepStream::new();
        s.record(1, "add", "int_adder", 0, 1, vec![]);
        let json = s.to_json();
        // Foreign version: loud failure naming both versions.
        let bumped = json.replace(
            &format!("\"format_version\": {DEPSTREAM_FORMAT_VERSION}"),
            "\"format_version\": 999999",
        );
        let err = DepStream::from_json(&bumped).unwrap_err();
        assert!(err.contains("999999"), "{err}");
        assert!(err.contains(&DEPSTREAM_FORMAT_VERSION.to_string()), "{err}");
        // Missing version: also fatal.
        let stripped = json.replace(
            &format!("\"format_version\": {DEPSTREAM_FORMAT_VERSION},\n"),
            "",
        );
        assert!(DepStream::from_json(&stripped)
            .unwrap_err()
            .contains("format_version"));
        // Different column schema: fatal even at the same version.
        let reordered = json.replace("\"uid\", \"name\"", "\"name\", \"uid\"");
        assert!(DepStream::from_json(&reordered)
            .unwrap_err()
            .contains("column schema"));
    }

    #[test]
    fn depstream_to_trace_spans_every_op_and_draws_path_edges() {
        let mut s = DepStream::new();
        s.record(1, "load", "load", 0, 2, vec![]);
        s.record(2, "fmul", "fp_mul_f64", 3, 7, vec![1]);
        let rec = depstream_to_trace(&s, &[1, 2], 1000);
        let begins = rec
            .events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Begin { .. }))
            .count();
        let edges = rec
            .events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Edge { .. }))
            .count();
        assert_eq!(begins, 2);
        assert_eq!(edges, 1);
        assert_eq!(rec.tracks().len(), 2);
    }
}
