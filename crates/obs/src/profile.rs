//! Cycle accounting: the attribution taxonomy every engine cycle is charged
//! against, and the compact dependency stream recorded for critical-path
//! analysis (see [`crate::critpath`]).
//!
//! The taxonomy is mutually exclusive by construction: the engine classifies
//! each cycle into exactly one [`CycleClass`], so an [`Attribution`]'s
//! buckets always sum to the engine's total cycle count — the invariant the
//! CI smoke asserts. The [`DepStream`] is the raw material of the analyzer:
//! one record per committed dynamic op with interned name/class strings and
//! producer uids, cheap enough to keep for whole MachSuite runs.

use crate::trace::{TraceRecorder, TraceSink};

/// Where a single engine cycle went. Exactly one class per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CycleClass {
    /// At least one op issued this cycle — forward progress.
    Compute,
    /// Ready work exists but every candidate waits on a producer.
    DepStall,
    /// An op was ready to issue but its functional-unit pool was exhausted.
    FuLimit,
    /// A memory op was ready but the port rejected it (or the outstanding
    /// limit was hit) — contention in the memory system.
    MemPort,
    /// Nothing issuable; the engine is waiting on in-flight memory or DMA.
    DmaWait,
    /// Fetch/drain overhead: no work resident in any queue.
    Control,
}

impl CycleClass {
    /// Every class, in report order. `dominant` breaks ties toward the
    /// earlier entry, so the order is part of the deterministic contract.
    pub const ALL: [CycleClass; 6] = [
        CycleClass::Compute,
        CycleClass::DepStall,
        CycleClass::FuLimit,
        CycleClass::MemPort,
        CycleClass::DmaWait,
        CycleClass::Control,
    ];

    /// Stable label used in JSON reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            CycleClass::Compute => "compute",
            CycleClass::DepStall => "dep_stall",
            CycleClass::FuLimit => "fu_limit",
            CycleClass::MemPort => "mem_port",
            CycleClass::DmaWait => "dma_wait",
            CycleClass::Control => "control",
        }
    }

    /// Inverse of [`CycleClass::label`].
    pub fn from_label(s: &str) -> Option<CycleClass> {
        CycleClass::ALL.into_iter().find(|c| c.label() == s)
    }

    fn index(self) -> usize {
        CycleClass::ALL.iter().position(|&c| c == self).unwrap()
    }
}

/// Per-class cycle counters. `total()` equals the engine's cycle count
/// because the engine charges exactly one class per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    counts: [u64; 6],
}

impl Attribution {
    /// Charges one cycle to `class`.
    pub fn charge(&mut self, class: CycleClass) {
        self.counts[class.index()] += 1;
    }

    /// Charges `n` cycles to `class` (deserialization, aggregation).
    pub fn add(&mut self, class: CycleClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Cycles charged to `class`.
    pub fn get(&self, class: CycleClass) -> u64 {
        self.counts[class.index()]
    }

    /// Sum over all classes — must equal the engine's total cycles.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The class with the most cycles; ties break toward the earlier entry
    /// of [`CycleClass::ALL`], keeping reports deterministic.
    pub fn dominant(&self) -> CycleClass {
        let mut best = CycleClass::ALL[0];
        for &c in &CycleClass::ALL[1..] {
            if self.get(c) > self.get(best) {
                best = c;
            }
        }
        best
    }

    /// Fraction of total cycles charged to `class` (0.0 on empty runs).
    pub fn fraction(&self, class: CycleClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(class) as f64 / total as f64
        }
    }

    /// `(class, cycles)` pairs in [`CycleClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleClass, u64)> + '_ {
        CycleClass::ALL.into_iter().map(|c| (c, self.get(c)))
    }
}

/// One committed dynamic op in the dependency stream. `name` and `class`
/// index the stream's interned string tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepOp {
    /// The engine's dynamic-instance uid (unique, monotonically assigned).
    pub uid: u64,
    /// Interned mnemonic ("fmul", "load", ...).
    pub name: u32,
    /// Interned resource class — the FU name for compute ops, the issue
    /// class ("load"/"store") for memory ops.
    pub class: u32,
    /// Cycle the op issued.
    pub issue: u64,
    /// Cycle the op committed (result became visible to consumers).
    pub commit: u64,
    /// Uids of the producers this instance depended on.
    pub deps: Vec<u64>,
}

/// The compact producer→consumer record of one run: interned string tables
/// plus one [`DepOp`] per committed dynamic op, in commit order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepStream {
    names: Vec<String>,
    classes: Vec<String>,
    ops: Vec<DepOp>,
}

impl DepStream {
    pub fn new() -> Self {
        DepStream::default()
    }

    /// Interns an op mnemonic, returning its table index.
    pub fn intern_name(&mut self, s: &str) -> u32 {
        intern(&mut self.names, s)
    }

    /// Interns a resource-class name, returning its table index.
    pub fn intern_class(&mut self, s: &str) -> u32 {
        intern(&mut self.classes, s)
    }

    /// Appends a committed op. Deps should reference earlier uids; unknown
    /// uids (e.g. terminators that never issue) are tolerated by the
    /// analyzer.
    pub fn record(
        &mut self,
        uid: u64,
        name: &str,
        class: &str,
        issue: u64,
        commit: u64,
        deps: Vec<u64>,
    ) {
        let name = self.intern_name(name);
        let class = self.intern_class(class);
        self.ops.push(DepOp {
            uid,
            name,
            class,
            issue,
            commit,
            deps,
        });
    }

    /// Ops in commit order.
    pub fn ops(&self) -> &[DepOp] {
        &self.ops
    }

    /// Resolves an interned mnemonic.
    pub fn name(&self, idx: u32) -> &str {
        self.names
            .get(idx as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Resolves an interned resource class.
    pub fn class(&self, idx: u32) -> &str {
        self.classes
            .get(idx as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// All interned resource classes.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

fn intern(table: &mut Vec<String>, s: &str) -> u32 {
    if let Some(i) = table.iter().position(|t| t == s) {
        return i as u32;
    }
    table.push(s.to_string());
    (table.len() - 1) as u32
}

/// Renders a dependency stream as a trace: one track per resource class,
/// one span per op (issue→commit in simulated time), and the realized
/// critical path drawn as flow [`crate::trace::TraceEvent::Edge`]s between
/// consecutive path ops — the "explained timeline" view of a run.
pub fn depstream_to_trace(
    stream: &DepStream,
    critical_path: &[u64],
    clock_period_ps: u64,
) -> TraceRecorder {
    let period = clock_period_ps.max(1);
    let mut rec = TraceRecorder::new(TraceRecorder::DEFAULT_CAPACITY.max(stream.len() * 2 + 16));
    let mut span_of: std::collections::HashMap<u64, crate::trace::SpanId> =
        std::collections::HashMap::new();
    for op in stream.ops() {
        let track = rec.track(&format!("class.{}", stream.class(op.class)));
        let span = rec.begin_span(track, stream.name(op.name), op.issue * period);
        rec.end_span(span, (op.commit + 1) * period);
        span_of.insert(op.uid, span);
    }
    for pair in critical_path.windows(2) {
        if let (Some(&from), Some(&to)) = (span_of.get(&pair[0]), span_of.get(&pair[1])) {
            let ts = stream
                .ops()
                .iter()
                .find(|o| o.uid == pair[0])
                .map(|o| (o.commit + 1) * period)
                .unwrap_or(0);
            rec.edge(from, to, "critical", ts);
        }
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_total_is_sum_of_charges() {
        let mut a = Attribution::default();
        a.charge(CycleClass::Compute);
        a.charge(CycleClass::Compute);
        a.charge(CycleClass::DmaWait);
        a.add(CycleClass::Control, 3);
        assert_eq!(a.total(), 6);
        assert_eq!(a.get(CycleClass::Compute), 2);
        assert_eq!(a.get(CycleClass::FuLimit), 0);
    }

    #[test]
    fn dominant_breaks_ties_toward_report_order() {
        let mut a = Attribution::default();
        a.add(CycleClass::DepStall, 5);
        a.add(CycleClass::DmaWait, 5);
        assert_eq!(a.dominant(), CycleClass::DepStall);
        a.add(CycleClass::DmaWait, 1);
        assert_eq!(a.dominant(), CycleClass::DmaWait);
    }

    #[test]
    fn labels_roundtrip() {
        for c in CycleClass::ALL {
            assert_eq!(CycleClass::from_label(c.label()), Some(c));
        }
        assert_eq!(CycleClass::from_label("nope"), None);
    }

    #[test]
    fn depstream_interns_and_resolves() {
        let mut s = DepStream::new();
        s.record(1, "load", "load", 0, 2, vec![]);
        s.record(2, "fmul", "fp_mul_f64", 3, 7, vec![1]);
        s.record(3, "load", "load", 1, 3, vec![]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ops()[0].name, s.ops()[2].name, "mnemonics interned once");
        assert_eq!(s.name(s.ops()[1].name), "fmul");
        assert_eq!(s.class(s.ops()[1].class), "fp_mul_f64");
        assert_eq!(s.classes(), &["load".to_string(), "fp_mul_f64".to_string()]);
    }

    #[test]
    fn depstream_to_trace_spans_every_op_and_draws_path_edges() {
        let mut s = DepStream::new();
        s.record(1, "load", "load", 0, 2, vec![]);
        s.record(2, "fmul", "fp_mul_f64", 3, 7, vec![1]);
        let rec = depstream_to_trace(&s, &[1, 2], 1000);
        let begins = rec
            .events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Begin { .. }))
            .count();
        let edges = rec
            .events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Edge { .. }))
            .count();
        assert_eq!(begins, 2);
        assert_eq!(edges, 1);
        assert_eq!(rec.tracks().len(), 2);
    }
}
