//! Deterministic randomness without crates.io: a SplitMix64 generator and a
//! tiny seeded-case property harness.
//!
//! SplitMix64 (Steele, Lea & Flood; the `java.util.SplittableRandom` mixer)
//! passes BigCrush, needs eight lines of code, and — critically for this
//! workspace — gives every dataset generator and property test a stable
//! value stream from a 64-bit seed with zero dependencies.

/// SplitMix64 PRNG. `new(seed)` yields the same stream on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (same seed, same stream).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Debiased multiply-shift (Lemire); the simple widening form.
        let span = hi - lo;
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Uniform i64 in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u64;
        let off = self.range_u64(0, span);
        (lo as i128 + off as i128) as i64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f64() as f32
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// A derived generator for case `i`: decorrelated from this stream so
    /// each property-test case sees an independent sequence.
    pub fn split(&self, i: u64) -> SplitMix64 {
        let mut g = SplitMix64::new(self.state ^ 0x6A09_E667_F3BC_C909);
        for _ in 0..2 {
            g.next_u64();
        }
        SplitMix64::new(
            g.next_u64()
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

/// Runs `cases` seeded property-test cases. Each case gets a generator
/// derived from `seed` and its index; a panic inside a case is re-raised
/// after printing the case index and seed, so failures reproduce with
/// `check_cases(label, 1, <printed case seed>, ..)` or by re-running the
/// same build (the stream is platform-independent).
pub fn check_cases<F>(label: &str, cases: u64, seed: u64, f: F)
where
    F: Fn(&mut SplitMix64),
{
    let root = SplitMix64::new(seed);
    for i in 0..cases {
        let mut g = root.split(i);
        // AssertUnwindSafe is sound here: on failure we print context and
        // re-raise immediately, never touching the closed-over state again.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut g)));
        if let Err(payload) = result {
            eprintln!("property '{label}' failed at case {i}/{cases} (seed {seed})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it/splitmix64.c).
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut g = SplitMix64::new(43);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = g.range_u64(10, 20);
            assert!((10..20).contains(&u));
            let i = g.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            let f = g.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints_eventually() {
        let mut g = SplitMix64::new(99);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[g.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn check_cases_runs_every_case() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static RAN: AtomicU64 = AtomicU64::new(0);
        RAN.store(0, Ordering::SeqCst);
        check_cases("count", 10, 5, |_g| {
            RAN.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(RAN.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn split_decorrelates_cases() {
        let root = SplitMix64::new(1);
        let mut a = root.split(0);
        let mut b = root.split(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
