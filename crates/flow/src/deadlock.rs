//! Static deadlock prediction (`F004`).
//!
//! The runtime's only unbounded wait is a memory operation whose response
//! never arrives: the consuming op waits on the port, every op behind it
//! waits on the reservation window, and the watchdog eventually trips.
//! This pass predicts that outcome *before* simulation from a
//! [`HazardSpec`] describing the armed fault model:
//!
//! * drop rate ≥ 1 and a memory access *provably executes* (its block has
//!   a positive static trip count) → [`DeadlockVerdict::Deadlock`] — the
//!   very first access wedges the resource-wait cycle
//!   `op → port → response (never) → watchdog`;
//! * drop rate in (0, 1) and some memory access may execute →
//!   [`DeadlockVerdict::Possible`], with the expected number of dropped
//!   responses (`rate × static access count`) as the risk measure;
//! * no drop hazard, or no reachable memory access →
//!   [`DeadlockVerdict::NoDeadlock`] — bit-flips and finite jitter delay
//!   or corrupt responses but always deliver them, so the wait cycle
//!   cannot close.
//!
//! The verdict contract, cross-checked against the fault-campaign
//! fixtures: a dynamic watchdog deadlock implies the static verdict was
//! `Deadlock` or `Possible`; a `NoDeadlock` verdict implies the watchdog
//! stays quiet; a `Deadlock` verdict implies the watchdog fires.

use salam_ir::{Function, Opcode};

use crate::sccp::Sccp;
use crate::trips::TripFacts;

/// The fault hazards armed for a run, as far as deadlock is concerned.
#[derive(Debug, Clone, Copy, Default)]
pub struct HazardSpec {
    /// Probability that a memory response is silently dropped.
    pub mem_drop_rate: f64,
}

/// The three-valued static deadlock verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlockVerdict {
    /// A memory access provably executes and its response is certainly
    /// dropped: the watchdog will fire.
    Deadlock,
    /// Responses may be dropped; whether one is depends on the draw.
    Possible {
        /// Expected dropped responses over the statically-counted
        /// accesses (a lower bound when some trip counts are unknown).
        expected_drops: f64,
    },
    /// The resource-wait cycle cannot close.
    NoDeadlock,
}

/// The prediction plus the evidence it rests on.
#[derive(Debug, Clone)]
pub struct DeadlockPrediction {
    /// The verdict.
    pub verdict: DeadlockVerdict,
    /// Statically-counted memory accesses (exact-trip blocks only).
    pub counted_accesses: u64,
    /// Whether some memory access sits in a block with unknown trips.
    pub uncounted_accesses: bool,
    /// Human-readable wait-cycle explanation.
    pub description: String,
}

/// Predicts whether `spec` wedges `f`, using reachability from `sccp`
/// and access counts from `trips`.
pub fn predict_deadlock(
    f: &Function,
    sccp: &Sccp,
    trips: &TripFacts,
    spec: &HazardSpec,
) -> DeadlockPrediction {
    let mut counted: u64 = 0;
    let mut uncounted = false;
    let mut provable = false; // some access in a trips ≥ 1 block
    let mut reachable = false; // some access in an executable block
    for (bid, b) in f.blocks() {
        if !sccp.executable.contains(&bid) {
            continue;
        }
        let mem = b
            .insts
            .iter()
            .filter(|&&i| matches!(f.inst(i).op, Opcode::Load | Opcode::Store))
            .count() as u64;
        if mem == 0 {
            continue;
        }
        reachable = true;
        match trips.block_trips.get(&bid) {
            Some(&t) => {
                counted = counted.saturating_add(mem.saturating_mul(t));
                provable |= t >= 1;
            }
            None => uncounted = true,
        }
    }

    let rate = spec.mem_drop_rate;
    let (verdict, description) = if rate <= 0.0 || !reachable {
        (
            DeadlockVerdict::NoDeadlock,
            if reachable {
                "no drop hazard armed: every memory response is eventually \
                 delivered, so the op → port → response wait cycle cannot close"
                    .to_string()
            } else {
                "no reachable memory access: nothing can wait on a response".to_string()
            },
        )
    } else if rate >= 1.0 && provable {
        (
            DeadlockVerdict::Deadlock,
            format!(
                "certain deadlock: drop rate {rate} loses the first of \
                 {counted}+ memory responses; the consumer waits on the port, \
                 the reservation window fills behind it, and the watchdog fires"
            ),
        )
    } else {
        let expected = rate * counted as f64;
        (
            DeadlockVerdict::Possible {
                expected_drops: expected,
            },
            format!(
                "possible deadlock: drop rate {rate} over {counted} statically \
                 counted memory accesses ({expected:.3} expected drops{}); any \
                 drop wedges the op → port → response wait cycle",
                if uncounted {
                    ", plus accesses in unprofiled blocks"
                } else {
                    ""
                }
            ),
        )
    };

    DeadlockPrediction {
        verdict,
        counted_accesses: counted,
        uncounted_accesses: uncounted,
        description,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sccp::sccp;
    use crate::trips::infer_trips;
    use salam_ir::interp::RtVal;
    use salam_ir::{FunctionBuilder, Type};

    fn kernel() -> Function {
        let mut fb = FunctionBuilder::new("k", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            let v = fb.load(Type::I64, p, "v");
            fb.store(v, p);
        });
        fb.ret();
        fb.finish()
    }

    fn predict(f: &Function, args: &[RtVal], rate: f64) -> DeadlockPrediction {
        let s = sccp(f, args);
        let t = infer_trips(f, &s);
        predict_deadlock(
            f,
            &s,
            &t,
            &HazardSpec {
                mem_drop_rate: rate,
            },
        )
    }

    #[test]
    fn certain_drop_with_provable_access_is_deadlock() {
        let f = kernel();
        let p = predict(&f, &[RtVal::P(0), RtVal::I(8)], 1.0);
        assert_eq!(p.verdict, DeadlockVerdict::Deadlock);
        assert_eq!(p.counted_accesses, 16);
    }

    #[test]
    fn fractional_drop_is_possible_with_expected_count() {
        let f = kernel();
        let p = predict(&f, &[RtVal::P(0), RtVal::I(8)], 0.25);
        match p.verdict {
            DeadlockVerdict::Possible { expected_drops } => {
                assert!((expected_drops - 4.0).abs() < 1e-9)
            }
            v => panic!("expected Possible, got {v:?}"),
        }
    }

    #[test]
    fn no_hazard_or_zero_trip_loop_cannot_deadlock() {
        let f = kernel();
        assert_eq!(
            predict(&f, &[RtVal::P(0), RtVal::I(8)], 0.0).verdict,
            DeadlockVerdict::NoDeadlock
        );
        // n = 0: the loop body never runs, so even a certain drop has
        // nothing to drop.
        let p = predict(&f, &[RtVal::P(0), RtVal::I(0)], 1.0);
        assert_eq!(p.counted_accesses, 0);
        assert!(matches!(
            p.verdict,
            DeadlockVerdict::Possible { .. } | DeadlockVerdict::NoDeadlock
        ));
    }
}
