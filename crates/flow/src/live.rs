//! Scratchpad liveness: dead stores (`F002`) and unwritten reads (`F003`).
//!
//! Both passes reason about byte-address intervals from
//! [range analysis](crate::ranges). Every memory instruction gets an
//! [`AccessFact`] with a sound enclosing `[lo, hi)` byte interval (when
//! range analysis bounded its address).
//!
//! **Dead store** — a store is dead when no later execution can observe
//! it: its written interval is disjoint from everything live after it.
//! The backward pass here runs the generic [solver](crate::solver) with an
//! [`IntervalSet`] fact (the union of byte ranges that may still be read),
//! seeded at exits with the caller-declared live-out regions (the
//! kernel's output buffers). Loads *gen* their interval (an unbounded
//! load gens ⊤); only stores with an *exact* singleton address *kill*,
//! since an imprecise store might write elsewhere. Because the live set
//! is an over-approximation and dead-ness requires disjointness from it,
//! every report is a proof.
//!
//! **Unwritten read** — a load is flagged when its interval is disjoint
//! from every store's interval and from the caller-declared initialized
//! regions (the kernel's input buffers). If *any* store is unbounded the
//! pass stays silent: that store might write anything.

use std::collections::BTreeMap;

use salam_ir::{BlockId, Function, InstId, Opcode, ValueKind};

use crate::interval::Interval;
use crate::ranges::Ranges;
use crate::solver::{solve, BlockAnalysis, Direction, Lattice, Solution};

/// Spans above this count are hulled together to bound fact size.
const MAX_SPANS: usize = 64;

/// One memory instruction with its resolved byte-address footprint.
#[derive(Debug, Clone)]
pub struct AccessFact {
    /// The load or store.
    pub inst: InstId,
    /// Its block.
    pub block: BlockId,
    /// Whether it writes.
    pub is_store: bool,
    /// Bytes moved per execution.
    pub size: u64,
    /// Sound enclosing `[lo, hi)` byte interval over all executions, when
    /// range analysis bounded the address.
    pub interval: Option<(i128, i128)>,
}

/// Collects an [`AccessFact`] for every load and store in `f`.
///
/// The footprint of an access at addresses `A` with width `s` is
/// `[min A, max A + s)`. Addresses whose interval is wider than
/// [`Interval::is_bounded`] tolerates are published as unknown.
pub fn collect_accesses(f: &Function, ranges: &Ranges) -> Vec<AccessFact> {
    let mut out = Vec::new();
    for (bid, b) in f.blocks() {
        for &iid in &b.insts {
            let inst = f.inst(iid);
            let (is_store, ptr, size) = match inst.op {
                Opcode::Load => (false, inst.operands[0], inst.ty.size_bytes()),
                Opcode::Store => (
                    true,
                    inst.operands[1],
                    f.value_type(inst.operands[0]).size_bytes(),
                ),
                _ => continue,
            };
            // Published range, or the exact constant for a direct
            // constant-pointer access (constants are not range-published).
            let ptr_range = ranges.of(ptr).or_else(|| match f.value_kind(ptr) {
                ValueKind::Const(c) => c.as_int().map(|v| Interval::exact(v as i128)),
                _ => None,
            });
            let interval = ptr_range
                .filter(Interval::is_bounded)
                .map(|i| (i.lo, i.hi + size as i128));
            out.push(AccessFact {
                inst: iid,
                block: bid,
                is_store,
                size,
                interval,
            });
        }
    }
    out
}

/// A finite union of disjoint half-open byte ranges, with an explicit ⊤
/// ("any byte may be live").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSet {
    top: bool,
    /// Sorted, pairwise-disjoint `[lo, hi)` spans.
    spans: Vec<(i128, i128)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> IntervalSet {
        IntervalSet {
            top: false,
            spans: Vec::new(),
        }
    }

    /// The universal set.
    pub fn top() -> IntervalSet {
        IntervalSet {
            top: true,
            spans: Vec::new(),
        }
    }

    /// Builds a set from arbitrary `[lo, hi)` ranges.
    pub fn from_ranges(ranges: &[(i128, i128)]) -> IntervalSet {
        let mut s = IntervalSet::empty();
        for &(lo, hi) in ranges {
            s.insert(lo, hi);
        }
        s
    }

    /// Adds `[lo, hi)`, merging overlaps.
    pub fn insert(&mut self, lo: i128, hi: i128) {
        if self.top || lo >= hi {
            return;
        }
        let (mut lo, mut hi) = (lo, hi);
        let mut keep = Vec::with_capacity(self.spans.len() + 1);
        for &(a, b) in &self.spans {
            if b < lo || hi < a {
                keep.push((a, b));
            } else {
                lo = lo.min(a);
                hi = hi.max(b);
            }
        }
        keep.push((lo, hi));
        keep.sort_unstable();
        self.spans = keep;
        if self.spans.len() > MAX_SPANS {
            let lo = self.spans.first().unwrap().0;
            let hi = self.spans.last().unwrap().1;
            self.spans = vec![(lo, hi)];
        }
    }

    /// Removes exactly `[lo, hi)` from the set.
    pub fn remove(&mut self, lo: i128, hi: i128) {
        if self.top || lo >= hi {
            return;
        }
        let mut next = Vec::with_capacity(self.spans.len() + 1);
        for &(a, b) in &self.spans {
            if b <= lo || hi <= a {
                next.push((a, b));
                continue;
            }
            if a < lo {
                next.push((a, lo));
            }
            if hi < b {
                next.push((hi, b));
            }
        }
        self.spans = next;
    }

    /// Whether `[lo, hi)` shares any byte with the set.
    pub fn intersects(&self, lo: i128, hi: i128) -> bool {
        if lo >= hi {
            return false;
        }
        self.top || self.spans.iter().any(|&(a, b)| a < hi && lo < b)
    }
}

impl Lattice for IntervalSet {
    fn bottom() -> Self {
        IntervalSet::empty()
    }
    fn join(&mut self, other: &Self) -> bool {
        if self.top {
            return false;
        }
        if other.top {
            *self = IntervalSet::top();
            return true;
        }
        let before = self.clone();
        for &(a, b) in &other.spans {
            self.insert(a, b);
        }
        *self != before
    }
    // `MAX_SPANS` hulling already bounds chain height; joins suffice.
}

impl Interval {
    /// Whether this interval is tight enough to serve as an address
    /// footprint: non-empty and well inside the scratchpad address space
    /// (|endpoint| < 2⁴⁴). Wider intervals — typically a wrap-to-type-top
    /// — carry no useful address information.
    pub fn is_bounded(&self) -> bool {
        const LIMIT: i128 = 1 << 44;
        !self.is_empty() && self.lo > -LIMIT && self.hi < LIMIT
    }
}

/// The backward liveness problem: which bytes may still be read.
struct SpmLiveness<'a> {
    /// Accesses grouped per block, in program order.
    by_block: BTreeMap<BlockId, Vec<&'a AccessFact>>,
    live_out: IntervalSet,
}

impl SpmLiveness<'_> {
    /// Applies one access backwards to a live set.
    fn step(fact: &mut IntervalSet, a: &AccessFact) {
        if a.is_store {
            // Kill only when the store provably writes this exact range
            // on every execution (singleton address).
            if let Some((lo, hi)) = a.interval {
                if hi - lo == a.size as i128 {
                    fact.remove(lo, hi);
                }
            }
        } else {
            match a.interval {
                Some((lo, hi)) => fact.insert(lo, hi),
                None => *fact = IntervalSet::top(),
            }
        }
    }
}

impl BlockAnalysis for SpmLiveness<'_> {
    type Fact = IntervalSet;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self) -> IntervalSet {
        self.live_out.clone()
    }
    fn transfer(&self, _f: &Function, block: BlockId, fact: &IntervalSet) -> IntervalSet {
        let mut cur = fact.clone();
        if let Some(accs) = self.by_block.get(&block) {
            for a in accs.iter().rev() {
                Self::step(&mut cur, a);
            }
        }
        cur
    }
}

/// Stores proven dead: no later load and no live-out region can observe
/// the written bytes.
///
/// `live_out` lists the `[lo, hi)` byte ranges the caller reads after the
/// kernel returns (its output buffers). Only bounded stores can be
/// proven dead; reports are sound for any `live_out` that covers the
/// actually-observed bytes.
pub fn dead_stores(
    f: &Function,
    accesses: &[AccessFact],
    live_out: &[(i128, i128)],
) -> Vec<InstId> {
    let mut by_block: BTreeMap<BlockId, Vec<&AccessFact>> = BTreeMap::new();
    for a in accesses {
        by_block.entry(a.block).or_default().push(a);
    }
    let analysis = SpmLiveness {
        by_block,
        live_out: IntervalSet::from_ranges(live_out),
    };
    let sol: Solution<IntervalSet> = solve(f, &analysis, u32::MAX);

    let mut dead = Vec::new();
    for (bid, accs) in &analysis.by_block {
        // Walk backwards from the block's exit fact to each store's
        // program point.
        let mut cur = sol.input[bid.index()].clone();
        for a in accs.iter().rev() {
            if a.is_store {
                if let Some((lo, hi)) = a.interval {
                    if !cur.intersects(lo, hi) {
                        dead.push(a.inst);
                    }
                }
            }
            SpmLiveness::step(&mut cur, a);
        }
    }
    dead.sort_unstable();
    dead
}

/// Loads proven to read bytes nothing ever wrote: disjoint from every
/// store footprint and from the caller-initialized input regions.
///
/// Stays silent when any store is unbounded (it might write anything).
pub fn unwritten_reads(accesses: &[AccessFact], initialized: &[(i128, i128)]) -> Vec<InstId> {
    let mut written = IntervalSet::from_ranges(initialized);
    for a in accesses.iter().filter(|a| a.is_store) {
        match a.interval {
            Some((lo, hi)) => written.insert(lo, hi),
            None => return Vec::new(),
        }
    }
    let mut out: Vec<InstId> = accesses
        .iter()
        .filter(|a| !a.is_store)
        .filter_map(|a| {
            let (lo, hi) = a.interval?;
            (!written.intersects(lo, hi)).then_some(a.inst)
        })
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::infer_ranges;
    use crate::sccp::sccp;
    use crate::trips::infer_trips;
    use salam_ir::interp::RtVal;
    use salam_ir::{FunctionBuilder, Type};

    fn accesses(f: &Function, args: &[RtVal]) -> Vec<AccessFact> {
        let s = sccp(f, args);
        let t = infer_trips(f, &s);
        let r = infer_ranges(f, args, &s, &t);
        collect_accesses(f, &r)
    }

    /// store a[0]; store a[0] again; load a[0] — the first store is dead.
    #[test]
    fn overwritten_store_is_dead() {
        let mut fb = FunctionBuilder::new("k", &[("a", Type::Ptr)]);
        let a = fb.arg(0);
        let one = fb.i64c(1);
        let two = fb.i64c(2);
        fb.store(one, a);
        fb.store(two, a);
        fb.load(Type::I64, a, "v");
        fb.ret();
        let f = fb.finish();
        let acc = accesses(&f, &[RtVal::P(0x100)]);
        let dead = dead_stores(&f, &acc, &[]);
        assert_eq!(dead, vec![acc[0].inst]);
    }

    /// A store into the declared output region is live even with no load.
    #[test]
    fn live_out_regions_keep_stores_alive() {
        let mut fb = FunctionBuilder::new("k", &[("out", Type::Ptr)]);
        let a = fb.arg(0);
        let one = fb.i64c(1);
        fb.store(one, a);
        fb.ret();
        let f = fb.finish();
        let acc = accesses(&f, &[RtVal::P(0x200)]);
        assert!(dead_stores(&f, &acc, &[(0x200, 0x208)]).is_empty());
        assert_eq!(dead_stores(&f, &acc, &[]).len(), 1);
    }

    /// Loads from a region nothing writes are flagged; declaring the
    /// region initialized clears them.
    #[test]
    fn unwritten_read_is_flagged_until_declared_initialized() {
        let mut fb = FunctionBuilder::new("k", &[("a", Type::Ptr), ("b", Type::Ptr)]);
        let a = fb.arg(0);
        let b = fb.arg(1);
        let v = fb.load(Type::I64, a, "v");
        fb.store(v, b);
        fb.ret();
        let f = fb.finish();
        let acc = accesses(&f, &[RtVal::P(0x100), RtVal::P(0x900)]);
        let loads = unwritten_reads(&acc, &[]);
        assert_eq!(loads.len(), 1);
        assert!(unwritten_reads(&acc, &[(0x100, 0x108)]).is_empty());
    }

    #[test]
    fn interval_set_algebra_holds() {
        let mut s = IntervalSet::empty();
        s.insert(0, 10);
        s.insert(20, 30);
        assert!(s.intersects(5, 6) && !s.intersects(10, 20));
        s.insert(10, 20); // bridges the gap
        assert_eq!(s, IntervalSet::from_ranges(&[(0, 30)]));
        s.remove(5, 25);
        assert!(s.intersects(0, 5) && s.intersects(25, 30) && !s.intersects(5, 25));
        assert!(IntervalSet::top().intersects(-1000, -999));
    }
}
