//! Sparse interval value-range analysis over SSA values.
//!
//! Every integer- or pointer-typed value gets a sound enclosing
//! [`Interval`]: constants and SCCP-proven constants are exact, counted
//! induction variables get their proven `[start, last]` range from
//! [trip inference](crate::trips), arithmetic propagates through the
//! interval transfer functions (wrapping to the result type, see
//! [`Interval`]'s width semantics), and loads are the full range of their
//! type. Propagation is a use-driven sparse worklist (deterministic:
//! `BTreeSet` ordered by value id); each value's range may tighten-then-
//! grow through phi joins, so after `WIDEN_AFTER` updates a value widens
//! straight to its type's range, bounding the fixpoint.
//!
//! The headline client is address reasoning: a `getelementptr` over a
//! pointer argument bound to a concrete scratchpad base yields a tight
//! byte-address interval for every access the instruction can perform,
//! which powers range-proven bounds checks (`F001`), dead-store and
//! unwritten-read detection (`F002`/`F003`), and disjointness proofs that
//! retire shared-scratchpad conflict warnings.

use std::collections::{BTreeMap, BTreeSet};

use salam_ir::interp::RtVal;
use salam_ir::{Function, InstId, Opcode, Type, ValueId, ValueKind};

use crate::interval::Interval;
use crate::sccp::Sccp;
use crate::trips::TripFacts;

/// Updates per value before widening kicks in.
const WIDEN_AFTER: u32 = 3;

/// The computed ranges for one function.
#[derive(Debug, Clone, Default)]
pub struct Ranges {
    /// Sound enclosing interval per integer/pointer value. Absent means
    /// the value is non-integer or in dead code; treat as unknown.
    pub values: BTreeMap<ValueId, Interval>,
}

impl Ranges {
    /// The interval for `v`, or `None` when nothing was computed.
    pub fn of(&self, v: ValueId) -> Option<Interval> {
        self.values.get(&v).copied()
    }
}

/// The effective bit width for range purposes (pointers are 64-bit).
fn width(ty: &Type) -> Option<u32> {
    match ty {
        Type::Ptr => Some(64),
        t if t.is_int() => Some(t.bits()),
        _ => None,
    }
}

struct Engine<'a> {
    f: &'a Function,
    sccp: &'a Sccp,
    trips: &'a TripFacts,
    args: &'a [RtVal],
    out: BTreeMap<ValueId, Interval>,
    uses: BTreeMap<ValueId, Vec<InstId>>,
    updates: BTreeMap<ValueId, u32>,
}

impl<'a> Engine<'a> {
    /// The current interval of an operand, seeding leaves on demand.
    /// Returns `None` for values with no range information yet (optimistic
    /// bottom — the consumer is re-queued when the operand gets one).
    fn operand(&mut self, v: ValueId) -> Option<Interval> {
        if let Some(i) = self.out.get(&v) {
            return Some(*i);
        }
        // SCCP constants are exact regardless of how they are computed.
        if let Some(c) = self.sccp.const_of(v) {
            return Some(Interval::exact(c));
        }
        match self.f.value_kind(v) {
            ValueKind::Const(c) => c.as_int().map(|i| Interval::exact(i as i128)),
            ValueKind::Arg(i) => match self.args.get(*i as usize) {
                Some(RtVal::I(x)) => Some(Interval::exact(*x as i128)),
                Some(RtVal::P(p)) => Some(Interval::exact(*p as i128)),
                _ => width(&self.f.value_type(v)).map(Interval::top_for),
            },
            ValueKind::Inst(_) => None,
        }
    }

    /// Publishes a (possibly wider) interval for `v`, widening to the
    /// type bound after `WIDEN_AFTER` growths, and queues `v`'s users.
    fn publish(&mut self, v: ValueId, next: Interval, work: &mut BTreeSet<InstId>) {
        let bound = width(&self.f.value_type(v))
            .map(Interval::top_for)
            .unwrap_or(Interval::top());
        let n = self.updates.entry(v).or_insert(0);
        let cur = self.out.entry(v).or_insert(Interval::bottom());
        let changed = if *n >= WIDEN_AFTER {
            cur.widen(&next, &bound)
        } else {
            cur.join(&next)
        };
        if changed {
            *n += 1;
            if let Some(us) = self.uses.get(&v) {
                for &u in us.clone().iter() {
                    work.insert(u);
                }
            }
        }
    }

    fn transfer(&mut self, iid: InstId) -> Option<Interval> {
        let inst = self.f.inst(iid).clone();
        let res = self.f.inst_result(iid)?;
        // SCCP-proven constants short-circuit everything.
        if let Some(c) = self.sccp.const_of(res) {
            return Some(Interval::exact(c));
        }
        let bits = width(&inst.ty)?;
        let top = Interval::top_for(bits);
        let r = match inst.op {
            Opcode::Phi => {
                // Counted IVs have a proven enumeration range.
                if let Some(r) = self.trips.ivs.get(&res) {
                    let lo = r.start.min(r.last());
                    let hi = r.start.max(r.last());
                    return Some(Interval::of(lo, hi));
                }
                let mut acc = Interval::bottom();
                for &inc in &inst.operands {
                    match self.operand(inc) {
                        Some(i) => {
                            acc.join(&i);
                        }
                        // Optimistically ignore not-yet-ranged incomings;
                        // publish() re-joins when they arrive.
                        None => continue,
                    }
                }
                if acc.is_empty() {
                    return None;
                }
                acc
            }
            Opcode::Add => self.binop(&inst, bits, Interval::add)?,
            Opcode::Sub => self.binop(&inst, bits, Interval::sub)?,
            Opcode::Mul => self.binop(&inst, bits, Interval::mul)?,
            Opcode::Shl => {
                let a = self.operand(inst.operands[0])?;
                match self.operand(inst.operands[1]).and_then(|i| i.as_exact()) {
                    Some(k) if (0..64).contains(&k) => a.shl_const(k as u32, bits),
                    _ => top,
                }
            }
            Opcode::And => {
                // Masking with a non-negative constant bounds the result.
                let mask = [inst.operands[0], inst.operands[1]]
                    .iter()
                    .filter_map(|&o| self.operand(o).and_then(|i| i.as_exact()))
                    .find(|&m| m >= 0);
                match mask {
                    Some(m) => Interval::of(0, m),
                    None => top,
                }
            }
            Opcode::Or => {
                // For non-negative a, b: max(a, b) <= a|b <= a + b.
                let a = self.operand(inst.operands[0])?;
                let b = self.operand(inst.operands[1])?;
                if a.lo >= 0 && b.lo >= 0 {
                    Interval::of(a.lo.max(b.lo), a.hi.saturating_add(b.hi))
                } else {
                    top
                }
            }
            Opcode::UDiv | Opcode::LShr | Opcode::URem => {
                // Result is non-negative when the dividend provably is.
                let a = self.operand(inst.operands[0])?;
                if a.lo >= 0 {
                    Interval::of(0, a.hi)
                } else {
                    top
                }
            }
            Opcode::ICmp(_) | Opcode::FCmp(_) => Interval::top_for(1),
            Opcode::SExt | Opcode::BitCast | Opcode::PtrToInt | Opcode::IntToPtr => {
                self.operand(inst.operands[0])?
            }
            Opcode::ZExt => {
                let a = self.operand(inst.operands[0])?;
                if a.lo >= 0 {
                    a
                } else {
                    // Sign-extended storage reinterpreted unsigned: only the
                    // source type's unsigned range is certain.
                    let sb = width(&self.f.value_type(inst.operands[0])).unwrap_or(64);
                    if sb >= 64 {
                        top
                    } else {
                        Interval::of(0, (1i128 << sb) - 1)
                    }
                }
            }
            Opcode::Trunc => {
                let a = self.operand(inst.operands[0])?;
                if a.within(top.lo, top.hi) {
                    a
                } else {
                    top
                }
            }
            Opcode::Select => {
                let mut t = self.operand(inst.operands[1])?;
                let e = self.operand(inst.operands[2])?;
                t.join(&e);
                t
            }
            Opcode::Gep { ref elem } => {
                let mut addr = self.operand(inst.operands[0])?;
                let mut cur: Type = elem.clone();
                for (k, &idx) in inst.operands[1..].iter().enumerate() {
                    if k > 0 {
                        let Type::Array { elem, .. } = cur else {
                            return Some(Interval::top());
                        };
                        cur = *elem;
                    }
                    let i = self.operand(idx)?;
                    let sz = Interval::exact(cur.size_bytes() as i128);
                    addr = addr.add(&i.mul(&sz, 64), 64);
                }
                addr
            }
            Opcode::Load => top,
            _ => top,
        };
        Some(r)
    }

    fn binop(
        &mut self,
        inst: &salam_ir::Inst,
        bits: u32,
        op: fn(&Interval, &Interval, u32) -> Interval,
    ) -> Option<Interval> {
        let a = self.operand(inst.operands[0])?;
        let b = self.operand(inst.operands[1])?;
        Some(op(&a, &b, bits))
    }
}

/// Computes value ranges for `f`, reusing SCCP constants and trip facts.
pub fn infer_ranges(f: &Function, args: &[RtVal], sccp: &Sccp, trips: &TripFacts) -> Ranges {
    let mut uses: BTreeMap<ValueId, Vec<InstId>> = BTreeMap::new();
    let mut insts: Vec<InstId> = Vec::new();
    for (bid, b) in f.blocks() {
        if !sccp.executable.contains(&bid) {
            continue; // dead code publishes nothing
        }
        for &iid in &b.insts {
            insts.push(iid);
            for &op in &f.inst(iid).operands {
                uses.entry(op).or_default().push(iid);
            }
        }
    }
    let mut eng = Engine {
        f,
        sccp,
        trips,
        args,
        out: BTreeMap::new(),
        uses,
        updates: BTreeMap::new(),
    };
    let mut work: BTreeSet<InstId> = insts.iter().copied().collect();
    while let Some(&iid) = work.iter().next() {
        work.remove(&iid);
        if let Some(next) = eng.transfer(iid) {
            let res = eng.f.inst_result(iid).expect("transfer implies result");
            eng.publish(res, next, &mut work);
        }
    }
    // Leaves consulted lazily (args, constants) are worth publishing for
    // clients that query them directly.
    let mut out = eng.out;
    for (i, _) in args.iter().enumerate() {
        let v = f.arg_value(i);
        if let std::collections::btree_map::Entry::Vacant(e) = out.entry(v) {
            match args[i] {
                RtVal::I(x) => {
                    e.insert(Interval::exact(x as i128));
                }
                RtVal::P(p) => {
                    e.insert(Interval::exact(p as i128));
                }
                RtVal::F(_) => {}
            }
        }
    }
    Ranges { values: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sccp::sccp;
    use crate::trips::infer_trips;
    use salam_ir::{FunctionBuilder, IntPredicate};

    fn facts(f: &Function, args: &[RtVal]) -> Ranges {
        let s = sccp(f, args);
        let t = infer_trips(f, &s);
        infer_ranges(f, args, &s, &t)
    }

    #[test]
    fn gep_over_a_counted_iv_gets_a_tight_address_range() {
        // for i in 0..8: load a[i] (i64) — addresses [base, base+64).
        let mut fb = FunctionBuilder::new("k", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        let mut addr = None;
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            fb.load(Type::I64, p, "v");
            addr = Some(p);
        });
        fb.ret();
        let f = fb.finish();
        let r = facts(&f, &[RtVal::P(0x1000), RtVal::I(8)]);
        assert_eq!(
            r.of(addr.unwrap()).unwrap(),
            Interval::of(0x1000, 0x1000 + 7 * 8)
        );
    }

    #[test]
    fn uncounted_phi_widens_to_type_range_and_terminates() {
        // A non-canonical recurrence (i = i * 3) cannot be counted; the
        // phi must widen instead of looping forever.
        let mut fb = FunctionBuilder::new("w", &[("a", Type::Ptr)]);
        let one = fb.i64c(1);
        let header = fb.add_block("header");
        let body = fb.add_block("body");
        let exit = fb.add_block("exit");
        let pre = fb.current_block();
        fb.br(header);
        fb.position_at(header);
        let (phi_id, iv) = fb.phi(Type::I64, "iv");
        fb.add_incoming(phi_id, one, pre);
        let k = fb.i64c(1000);
        let c = fb.icmp(IntPredicate::Slt, iv, k, "c");
        fb.cond_br(c, body, exit);
        fb.position_at(body);
        let three = fb.i64c(3);
        let next = fb.mul(iv, three, "next");
        fb.br(header);
        fb.add_incoming(phi_id, next, body);
        fb.position_at(exit);
        fb.ret();
        let f = fb.finish();
        let r = facts(&f, &[RtVal::P(0)]);
        let got = r.of(iv).unwrap();
        // Sound: contains 1, 3, 9, …; bounded by the type.
        assert!(got.lo <= 1 && got.hi >= 729);
        assert!(got.within(Interval::top_for(64).lo, Interval::top_for(64).hi));
    }

    #[test]
    fn or_of_non_negatives_bounds_between_max_and_sum() {
        // for i in 0..8: (i & 3) | 8 ∈ [8, 11].
        let mut fb = FunctionBuilder::new("o", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        let mut orv = None;
        fb.counted_loop("i", zero, n, |fb, iv| {
            let three = fb.i64c(3);
            let m = fb.and(iv, three, "m");
            let eight = fb.i64c(8);
            orv = Some(fb.or(m, eight, "off"));
        });
        fb.ret();
        let f = fb.finish();
        let r = facts(&f, &[RtVal::I(8)]);
        assert_eq!(r.of(orv.unwrap()).unwrap(), Interval::of(8, 11));
    }

    #[test]
    fn or_with_possibly_negative_operand_stays_top() {
        let mut fb = FunctionBuilder::new("o", &[("a", Type::I64), ("b", Type::I64)]);
        let a = fb.arg(0);
        let b = fb.arg(1);
        // Neither operand is constant-folded when args are unknown at
        // analysis time; use a phi-free direct op on arguments instead.
        let v = fb.or(a, b, "v");
        fb.ret();
        let f = fb.finish();
        // Arguments are exact here, so SCCP folds; assert only soundness.
        let r = facts(&f, &[RtVal::I(-4), RtVal::I(1)]);
        let got = r.of(v).unwrap();
        assert!(
            got.lo <= -3 && got.hi >= -3,
            "must contain -4 | 1 = -3, got {got:?}"
        );
    }

    #[test]
    fn sccp_constants_pin_computed_values_exactly() {
        let mut fb = FunctionBuilder::new("c", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let n2 = fb.mul(n, n, "n2");
        fb.ret();
        let f = fb.finish();
        let r = facts(&f, &[RtVal::I(6)]);
        assert_eq!(r.of(n2).unwrap(), Interval::exact(36));
    }
}
