//! Monotone dataflow analysis over the SSA IR.
//!
//! This crate is the static-analysis substrate for the verifier, the
//! lint driver and design-space pruning: a generic worklist
//! [solver](crate::solver) over a [`Lattice`] trait (join, transfer, and
//! widening-after-K so infinite-height domains provably terminate), plus
//! five client passes:
//!
//! 1. [sparse conditional constant propagation](crate::sccp) — folds
//!    integer computation seeded from the runtime argument bindings and
//!    proves blocks dead;
//! 2. [interval value-range analysis](crate::ranges) — a sound enclosing
//!    [`Interval`] per value, tight for address arithmetic over counted
//!    induction variables;
//! 3. [loop trip-count inference](crate::trips) — exact per-entry
//!    iteration counts for canonical counted loops and exact whole-
//!    function block execution counts where control flow permits;
//! 4. [scratchpad liveness](crate::live) — range-proven dead stores and
//!    unwritten reads;
//! 5. [static deadlock prediction](crate::deadlock) — predicts the
//!    watchdog verdict for drop-hazard fault plans from static access
//!    counts.
//!
//! The passes run in dependency order under [`analyze`], which returns
//! one [`FlowFacts`] bundle. All fact containers are ordered
//! (`BTreeMap`/`BTreeSet`) and the fixpoint iterations pop ordered
//! worklists, so facts are byte-for-byte deterministic for a given
//! function and argument binding — a property the test-suite pins.
//!
//! Soundness conventions, relied on by downstream consumers:
//!
//! * value ranges and access footprints are *over*-approximations —
//!   suitable for proving absence (bounds violations, overlaps), never
//!   presence;
//! * published trip counts are *exact* — suitable both for lower bounds
//!   and expected-case estimates; statically unknown counts are absent,
//!   never guessed;
//! * dead-store/unwritten-read reports and `Deadlock`/`NoDeadlock`
//!   verdicts are proofs under the documented caller obligations
//!   (declared live-out/initialized regions, armed hazards).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod interval;
pub mod live;
pub mod ranges;
pub mod sccp;
pub mod solver;
pub mod trips;

pub use deadlock::{predict_deadlock, DeadlockPrediction, DeadlockVerdict, HazardSpec};
pub use interval::Interval;
pub use live::{collect_accesses, dead_stores, unwritten_reads, AccessFact, IntervalSet};
pub use ranges::{infer_ranges, Ranges};
pub use sccp::{sccp, Lat, Sccp};
pub use solver::{solve, BlockAnalysis, Direction, Lattice, Solution};
pub use trips::{infer_trips, IvFact, LoopTrip, TripFacts};

use salam_ir::interp::RtVal;
use salam_ir::Function;

/// Every fact the framework computes for one function under one argument
/// binding.
#[derive(Debug, Clone)]
pub struct FlowFacts {
    /// Constant propagation: proven constants and executable blocks.
    pub sccp: Sccp,
    /// Loop structure, induction variables and block trip counts.
    pub trips: TripFacts,
    /// Per-value intervals.
    pub ranges: Ranges,
    /// Per-access byte footprints.
    pub accesses: Vec<AccessFact>,
}

impl FlowFacts {
    /// Dead stores under the given live-out regions (see
    /// [`live::dead_stores`]).
    pub fn dead_stores(&self, f: &Function, live_out: &[(i128, i128)]) -> Vec<salam_ir::InstId> {
        live::dead_stores(f, &self.accesses, live_out)
    }

    /// Unwritten reads under the given initialized regions (see
    /// [`live::unwritten_reads`]).
    pub fn unwritten_reads(&self, initialized: &[(i128, i128)]) -> Vec<salam_ir::InstId> {
        live::unwritten_reads(&self.accesses, initialized)
    }

    /// Static deadlock verdict for an armed hazard (see
    /// [`deadlock::predict_deadlock`]).
    pub fn predict_deadlock(&self, f: &Function, spec: &HazardSpec) -> DeadlockPrediction {
        deadlock::predict_deadlock(f, &self.sccp, &self.trips, spec)
    }
}

/// Runs the full pass pipeline over `f` with arguments bound to `args`:
/// SCCP → trip inference → range analysis → access collection.
pub fn analyze(f: &Function, args: &[RtVal]) -> FlowFacts {
    let sccp = sccp::sccp(f, args);
    let trips = trips::infer_trips(f, &sccp);
    let ranges = ranges::infer_ranges(f, args, &sccp, &trips);
    let accesses = live::collect_accesses(f, &ranges);
    FlowFacts {
        sccp,
        trips,
        ranges,
        accesses,
    }
}
