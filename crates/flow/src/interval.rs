//! The interval abstract domain: `[lo, hi]` over `i128`.
//!
//! Values are interpreted in their *signed* form, matching
//! [`salam_ir::Constant`]'s sign-extended storage. Arithmetic is computed
//! in `i128` (which cannot overflow for 64-bit inputs) and then checked
//! against the result type's representable range: a result that may wrap
//! goes to [`Interval::top_for`] that width, so every interval the
//! analysis publishes is a sound over-approximation of the wrapped
//! machine value. `i1` uses the hull `[-1, 1]` to cover both the `0/1`
//! and sign-extended `-1` encodings of truth.
//!
//! The domain is not finite — `[0, 1] ⊑ [0, 2] ⊑ …` climbs forever under
//! plain joins — so fixpoints over it must widen (see
//! [`Interval::widen`] and the solver's widening-after-K policy).

/// A closed signed interval, or the empty set.
///
/// The empty interval (`bottom`) is canonically `lo = 1, hi = 0`; all
/// constructors and operators preserve canonical emptiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value contained (signed).
    pub lo: i128,
    /// Largest value contained (signed).
    pub hi: i128,
}

/// Unbounded low endpoint used by [`Interval::top`]: wide enough to
/// contain any sum/product of 64-bit quantities the transfer functions
/// produce, far from `i128` overflow.
const INF: i128 = i128::MAX / 4;

impl Interval {
    /// The empty interval (no values; the lattice bottom).
    pub const fn bottom() -> Interval {
        Interval { lo: 1, hi: 0 }
    }

    /// The unbounded interval (every value; the lattice top).
    pub const fn top() -> Interval {
        Interval { lo: -INF, hi: INF }
    }

    /// The full signed range of an integer of `bits` width. `i1` gets the
    /// encoding-agnostic hull `[-1, 1]`.
    pub fn top_for(bits: u32) -> Interval {
        match bits {
            0 => Interval::top(),
            1 => Interval { lo: -1, hi: 1 },
            b if b >= 128 => Interval::top(),
            b => {
                let half = 1i128 << (b - 1);
                Interval {
                    lo: -half,
                    hi: half - 1,
                }
            }
        }
    }

    /// A single value.
    pub const fn exact(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from unordered endpoints.
    pub fn of(a: i128, b: i128) -> Interval {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Whether this is the empty interval.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether this is exactly one value.
    pub fn as_exact(&self) -> Option<i128> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether every value of `self` is inside `[lo, hi]`.
    pub fn within(&self, lo: i128, hi: i128) -> bool {
        !self.is_empty() && self.lo >= lo && self.hi <= hi
    }

    /// Whether the two intervals share no value. Empty intervals are
    /// disjoint from everything.
    pub fn disjoint(&self, other: &Interval) -> bool {
        self.is_empty() || other.is_empty() || self.hi < other.lo || other.hi < self.lo
    }

    /// Least upper bound (convex hull). Returns `true` when `self` grew.
    pub fn join(&mut self, other: &Interval) -> bool {
        if other.is_empty() {
            return false;
        }
        if self.is_empty() {
            *self = *other;
            return true;
        }
        let old = *self;
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        *self != old
    }

    /// Widening: any endpoint that `other` pushes past `self` jumps to
    /// the corresponding endpoint of `bound` (typically
    /// [`Interval::top_for`] the value's width), guaranteeing the chain
    /// stabilises after at most two widenings per value.
    pub fn widen(&mut self, other: &Interval, bound: &Interval) -> bool {
        if other.is_empty() {
            return false;
        }
        if self.is_empty() {
            *self = *other;
            return true;
        }
        let old = *self;
        if other.lo < self.lo {
            self.lo = bound.lo.min(other.lo);
        }
        if other.hi > self.hi {
            self.hi = bound.hi.max(other.hi);
        }
        *self != old
    }

    /// Clamp a computed interval to what `bits` can represent: if it fits
    /// the signed range, keep it (no wrap occurred); otherwise the
    /// machine result may wrap, so return the full range of the type.
    fn wrap_to(self, bits: u32) -> Interval {
        if self.is_empty() {
            return self;
        }
        let t = Interval::top_for(bits);
        if self.lo >= t.lo && self.hi <= t.hi {
            self
        } else {
            t
        }
    }

    /// `self + other`, wrapping to `bits`.
    pub fn add(&self, other: &Interval, bits: u32) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::bottom();
        }
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
        .wrap_to(bits)
    }

    /// `self - other`, wrapping to `bits`.
    pub fn sub(&self, other: &Interval, bits: u32) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::bottom();
        }
        Interval {
            lo: self.lo - other.hi,
            hi: self.hi - other.lo,
        }
        .wrap_to(bits)
    }

    /// `self * other`, wrapping to `bits`.
    pub fn mul(&self, other: &Interval, bits: u32) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::bottom();
        }
        let c = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Interval {
            lo: *c.iter().min().unwrap(),
            hi: *c.iter().max().unwrap(),
        }
        .wrap_to(bits)
    }

    /// `self << k` for a constant shift, wrapping to `bits`.
    pub fn shl_const(&self, k: u32, bits: u32) -> Interval {
        if self.is_empty() {
            return Interval::bottom();
        }
        if k >= 64 {
            return Interval::top_for(bits);
        }
        self.mul(&Interval::exact(1i128 << k), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_propagates_through_arithmetic() {
        let e = Interval::bottom();
        let x = Interval::of(1, 5);
        assert!(e.is_empty());
        assert!(e.add(&x, 64).is_empty());
        assert!(x.sub(&e, 64).is_empty());
        assert!(e.mul(&e, 64).is_empty());
        assert!(e.disjoint(&x));
        // Joining empty changes nothing; joining into empty adopts.
        let mut a = x;
        assert!(!a.join(&e));
        let mut b = Interval::bottom();
        assert!(b.join(&x));
        assert_eq!(b, x);
    }

    #[test]
    fn arithmetic_bounds_are_tight() {
        let a = Interval::of(2, 4);
        let b = Interval::of(-3, 5);
        assert_eq!(a.add(&b, 64), Interval::of(-1, 9));
        assert_eq!(a.sub(&b, 64), Interval::of(-3, 7));
        assert_eq!(a.mul(&b, 64), Interval::of(-12, 20));
        assert_eq!(a.shl_const(3, 64), Interval::of(16, 32));
    }

    #[test]
    fn i8_wraparound_goes_to_type_top() {
        let a = Interval::of(100, 120);
        let wrapped = a.add(&Interval::exact(20), 8); // 120..140 wraps i8
        assert_eq!(wrapped, Interval::top_for(8));
        assert_eq!(Interval::top_for(8), Interval::of(-128, 127));
        // In-range results stay tight.
        assert_eq!(a.add(&Interval::exact(5), 8), Interval::of(105, 125));
    }

    #[test]
    fn i1_top_covers_both_truth_encodings() {
        let t = Interval::top_for(1);
        assert!(t.within(-1, 1));
        assert!(Interval::exact(1).within(t.lo, t.hi));
        assert!(Interval::exact(-1).within(t.lo, t.hi));
        assert!(Interval::exact(0).within(t.lo, t.hi));
    }

    #[test]
    fn widening_jumps_to_the_bound() {
        let bound = Interval::top_for(32);
        let mut v = Interval::of(0, 3);
        // Growing upper endpoint widens straight to the type bound.
        assert!(v.widen(&Interval::of(0, 4), &bound));
        assert_eq!(v.hi, bound.hi);
        assert_eq!(v.lo, 0);
        // A second, lower update widens the low end; now stable.
        assert!(v.widen(&Interval::of(-1, 2), &bound));
        assert_eq!(v.lo, bound.lo);
        assert!(!v.widen(&Interval::of(-5, 5), &bound));
    }
}
