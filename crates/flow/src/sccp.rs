//! Sparse conditional constant propagation.
//!
//! The classic Wegman–Zadeck algorithm over the three-level lattice
//! `Undef ⊑ Const(c) ⊑ Over`: values start optimistically undefined,
//! blocks start unreachable, and the two worklists (CFG edges and SSA
//! uses) run to a simultaneous fixpoint. Branches whose condition folds
//! to a constant only mark the taken edge executable, so code behind a
//! statically-false branch never pollutes phi joins.
//!
//! Integer (and pointer) arithmetic folds; floats and memory do not —
//! a `Load` is always `Over`. Arguments are seeded from the caller's
//! [`RtVal`] bindings, mirroring how the runtime binds kernel arguments,
//! so loop bounds passed as scalars fold all the way into comparisons.
//! Constants are stored sign-extended at their type's width, matching
//! [`salam_ir::Constant`]'s storage convention.

use std::collections::{BTreeMap, BTreeSet};

use salam_ir::interp::RtVal;
use salam_ir::{BlockId, Function, InstId, IntPredicate, Opcode, Type, ValueId, ValueKind};

use crate::solver::Lattice;

/// The SCCP value lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lat {
    /// No evidence yet (optimistic bottom).
    Undef,
    /// Provably this constant on every execution (sign-extended).
    Const(i128),
    /// Not provably constant (top).
    Over,
}

impl Lattice for Lat {
    fn bottom() -> Self {
        Lat::Undef
    }
    fn join(&mut self, other: &Self) -> bool {
        let next = match (*self, *other) {
            (a, Lat::Undef) => a,
            (Lat::Undef, b) => b,
            (Lat::Const(a), Lat::Const(b)) if a == b => Lat::Const(a),
            _ => Lat::Over,
        };
        let changed = next != *self;
        *self = next;
        changed
    }
}

/// The result of constant propagation over one function.
#[derive(Debug, Clone, Default)]
pub struct Sccp {
    /// Values proven constant on every execution (sign-extended at the
    /// value's width). Literal IR constants are included.
    pub consts: BTreeMap<ValueId, i128>,
    /// Blocks that may execute. Everything outside is dead code.
    pub executable: BTreeSet<BlockId>,
}

impl Sccp {
    /// The proven constant for `v`, if any.
    pub fn const_of(&self, v: ValueId) -> Option<i128> {
        self.consts.get(&v).copied()
    }
}

/// Sign-extends the low `bits` of `v`.
fn sext(v: i128, bits: u32) -> i128 {
    if bits == 0 || bits >= 128 {
        return v;
    }
    let shift = 128 - bits;
    (v << shift) >> shift
}

/// The low `bits` of `v` as an unsigned quantity.
fn uns(v: i128, bits: u32) -> u128 {
    if bits == 0 || bits >= 128 {
        return v as u128;
    }
    (v as u128) & ((1u128 << bits) - 1)
}

struct Engine<'a> {
    f: &'a Function,
    args: &'a [RtVal],
    lat: Vec<Lat>,
    /// Executable CFG edges, as (block, successor-slot).
    edges: BTreeSet<(BlockId, usize)>,
    executable: BTreeSet<BlockId>,
    /// Uses of each value, for the SSA worklist.
    uses: BTreeMap<ValueId, Vec<InstId>>,
    block_of: Vec<BlockId>,
    ssa_work: BTreeSet<InstId>,
    flow_work: BTreeSet<(BlockId, usize)>,
}

impl<'a> Engine<'a> {
    fn new(f: &'a Function, args: &'a [RtVal]) -> Self {
        let mut uses: BTreeMap<ValueId, Vec<InstId>> = BTreeMap::new();
        let mut block_of = vec![f.entry(); f.num_insts()];
        for (bid, b) in f.blocks() {
            for &iid in &b.insts {
                block_of[iid.index()] = bid;
                for &op in &f.inst(iid).operands {
                    uses.entry(op).or_default().push(iid);
                }
            }
        }
        Engine {
            f,
            args,
            lat: vec![Lat::Undef; f.num_values()],
            edges: BTreeSet::new(),
            executable: BTreeSet::new(),
            uses,
            block_of,
            ssa_work: BTreeSet::new(),
            flow_work: BTreeSet::new(),
        }
    }

    fn value(&mut self, v: ValueId) -> Lat {
        // Literal constants and arguments have fixed lattice values the
        // first time they are consulted.
        if self.lat[v.index()] == Lat::Undef {
            let fixed = match self.f.value_kind(v) {
                ValueKind::Const(c) => match c.as_int() {
                    Some(i) => Some(Lat::Const(i as i128)),
                    None => Some(Lat::Over),
                },
                ValueKind::Arg(i) => Some(match self.args.get(*i as usize) {
                    Some(RtVal::I(x)) => Lat::Const(*x as i128),
                    Some(RtVal::P(p)) => Lat::Const(*p as i128),
                    _ => Lat::Over,
                }),
                ValueKind::Inst(_) => None,
            };
            if let Some(l) = fixed {
                self.lat[v.index()] = l;
            }
        }
        self.lat[v.index()]
    }

    fn raise(&mut self, v: ValueId, to: Lat) {
        let mut cur = self.lat[v.index()];
        if cur.join(&to) {
            self.lat[v.index()] = cur;
            if let Some(us) = self.uses.get(&v) {
                for &u in us.clone().iter() {
                    if self.executable.contains(&self.block_of[u.index()]) {
                        self.ssa_work.insert(u);
                    }
                }
            }
        }
    }

    fn mark_edge(&mut self, from: BlockId, slot: usize) {
        if self.edges.insert((from, slot)) {
            self.flow_work.insert((from, slot));
        }
    }

    fn run(mut self) -> Sccp {
        // The entry executes unconditionally: model it as a virtual edge
        // by visiting the block directly.
        self.visit_block(self.f.entry());
        while !self.flow_work.is_empty() || !self.ssa_work.is_empty() {
            while let Some(&(b, slot)) = self.flow_work.iter().next() {
                self.flow_work.remove(&(b, slot));
                let term = self.f.terminator(b).expect("terminated block");
                let succ = self.f.inst(term).block_refs[slot];
                if self.executable.insert(succ) {
                    self.visit_block(succ);
                } else {
                    // Only phis can change from a new incoming edge.
                    for &iid in self.f.block(succ).insts.clone().iter() {
                        if self.f.inst(iid).op == Opcode::Phi {
                            self.visit_inst(iid);
                        }
                    }
                }
            }
            while let Some(&iid) = self.ssa_work.iter().next() {
                self.ssa_work.remove(&iid);
                self.visit_inst(iid);
            }
        }

        let mut consts = BTreeMap::new();
        for i in 0..self.lat.len() {
            if let Lat::Const(c) = self.lat[i] {
                consts.insert(ValueId::from_raw(i as u32), c);
            }
        }
        Sccp {
            consts,
            executable: self.executable,
        }
    }

    fn visit_block(&mut self, b: BlockId) {
        self.executable.insert(b);
        for &iid in self.f.block(b).insts.clone().iter() {
            self.visit_inst(iid);
        }
    }

    fn visit_inst(&mut self, iid: InstId) {
        let inst = self.f.inst(iid).clone();
        match inst.op {
            Opcode::Br => {
                self.mark_edge(self.block_of[iid.index()], 0);
                return;
            }
            Opcode::CondBr => {
                let b = self.block_of[iid.index()];
                match self.value(inst.operands[0]) {
                    Lat::Undef => {}
                    // Truth is "low bit set", covering both the 0/1 and
                    // sign-extended -1 encodings.
                    Lat::Const(c) => self.mark_edge(b, if c & 1 != 0 { 0 } else { 1 }),
                    Lat::Over => {
                        self.mark_edge(b, 0);
                        self.mark_edge(b, 1);
                    }
                }
                return;
            }
            Opcode::Ret => return,
            _ => {}
        }
        let Some(res) = self.f.inst_result(iid) else {
            return;
        };
        let out = self.eval(iid, &inst);
        self.raise(res, out);
    }

    fn eval(&mut self, iid: InstId, inst: &salam_ir::Inst) -> Lat {
        if inst.op == Opcode::Phi {
            return self.eval_phi(iid, inst);
        }
        if inst.op == Opcode::Select {
            let c = self.value(inst.operands[0]);
            let t = self.value(inst.operands[1]);
            let e = self.value(inst.operands[2]);
            return match c {
                Lat::Undef => Lat::Undef,
                Lat::Const(c) => {
                    if c & 1 != 0 {
                        t
                    } else {
                        e
                    }
                }
                Lat::Over => {
                    let mut j = t;
                    j.join(&e);
                    j
                }
            };
        }
        // Everything below folds pure integer computation only.
        let mut ops = Vec::with_capacity(inst.operands.len());
        for &o in &inst.operands {
            match self.value(o) {
                Lat::Undef => return Lat::Undef,
                Lat::Over => return Lat::Over,
                Lat::Const(c) => ops.push(c),
            }
        }
        let bits = match inst.ty {
            Type::Void => return Lat::Over,
            ref t if t.is_int() || *t == Type::Ptr => {
                if *t == Type::Ptr {
                    64
                } else {
                    t.bits()
                }
            }
            _ => return Lat::Over,
        };
        let src_bits = |e: &Engine, v: ValueId| -> u32 {
            let t = e.f.value_type(v);
            if t == Type::Ptr {
                64
            } else if t.is_int() {
                t.bits()
            } else {
                0
            }
        };
        let r = match inst.op {
            Opcode::Add => ops[0].wrapping_add(ops[1]),
            Opcode::Sub => ops[0].wrapping_sub(ops[1]),
            Opcode::Mul => ops[0].wrapping_mul(ops[1]),
            Opcode::SDiv => {
                if ops[1] == 0 {
                    return Lat::Over;
                }
                ops[0].wrapping_div(ops[1])
            }
            Opcode::SRem => {
                if ops[1] == 0 {
                    return Lat::Over;
                }
                ops[0].wrapping_rem(ops[1])
            }
            Opcode::UDiv => {
                if ops[1] == 0 {
                    return Lat::Over;
                }
                (uns(ops[0], bits) / uns(ops[1], bits)) as i128
            }
            Opcode::URem => {
                if ops[1] == 0 {
                    return Lat::Over;
                }
                (uns(ops[0], bits) % uns(ops[1], bits)) as i128
            }
            Opcode::And => ops[0] & ops[1],
            Opcode::Or => ops[0] | ops[1],
            Opcode::Xor => ops[0] ^ ops[1],
            Opcode::Shl => {
                let k = uns(ops[1], bits);
                if k >= 128 {
                    return Lat::Over;
                }
                ops[0].wrapping_shl(k as u32)
            }
            Opcode::LShr => {
                let k = uns(ops[1], bits);
                if k >= bits as u128 {
                    return Lat::Over;
                }
                (uns(ops[0], bits) >> k) as i128
            }
            Opcode::AShr => {
                let k = uns(ops[1], bits);
                if k >= bits as u128 {
                    return Lat::Over;
                }
                ops[0] >> k
            }
            Opcode::ICmp(pred) => {
                let sb = src_bits(self, inst.operands[0]);
                let (a, b) = (ops[0], ops[1]);
                let (ua, ub) = (uns(a, sb), uns(b, sb));
                let t = match pred {
                    IntPredicate::Eq => a == b,
                    IntPredicate::Ne => a != b,
                    IntPredicate::Slt => a < b,
                    IntPredicate::Sle => a <= b,
                    IntPredicate::Sgt => a > b,
                    IntPredicate::Sge => a >= b,
                    IntPredicate::Ult => ua < ub,
                    IntPredicate::Ule => ua <= ub,
                    IntPredicate::Ugt => ua > ub,
                    IntPredicate::Uge => ua >= ub,
                };
                t as i128
            }
            Opcode::Trunc => ops[0],
            Opcode::SExt => ops[0],
            // ZExt reinterprets the *source* width unsigned.
            Opcode::ZExt => uns(ops[0], src_bits(self, inst.operands[0])) as i128,
            Opcode::BitCast | Opcode::PtrToInt | Opcode::IntToPtr => ops[0],
            _ => return Lat::Over,
        };
        Lat::Const(sext(r, bits))
    }

    fn eval_phi(&mut self, iid: InstId, inst: &salam_ir::Inst) -> Lat {
        let b = self.block_of[iid.index()];
        let mut acc = Lat::Undef;
        for (k, &inc) in inst.operands.iter().enumerate() {
            let pred = inst.block_refs[k];
            // Only incomings along executable edges participate.
            let Some(term) = self.f.terminator(pred) else {
                continue;
            };
            let executable_edge = self
                .f
                .inst(term)
                .block_refs
                .iter()
                .enumerate()
                .any(|(s, &t)| t == b && self.edges.contains(&(pred, s)));
            if !executable_edge {
                continue;
            }
            let v = self.value(inc);
            acc.join(&v);
            if acc == Lat::Over {
                break;
            }
        }
        acc
    }
}

/// Runs SCCP over `f` with arguments bound to `args`.
pub fn sccp(f: &Function, args: &[RtVal]) -> Sccp {
    Engine::new(f, args).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::FunctionBuilder;

    #[test]
    fn folds_through_arithmetic_and_branches() {
        // if (4 * 2 > 7) { x = 3 } else { x = 9 }; y = x + 1
        let mut fb = FunctionBuilder::new("fold", &[("n", Type::I64)]);
        let four = fb.i64c(4);
        let two = fb.i64c(2);
        let seven = fb.i64c(7);
        let prod = fb.mul(four, two, "prod");
        let cmp = fb.icmp(IntPredicate::Sgt, prod, seven, "cmp");
        let then_b = fb.add_block("then");
        let else_b = fb.add_block("else");
        let join_b = fb.add_block("join");
        fb.cond_br(cmp, then_b, else_b);
        fb.position_at(then_b);
        let three = fb.i64c(3);
        fb.br(join_b);
        fb.position_at(else_b);
        let nine = fb.i64c(9);
        fb.br(join_b);
        fb.position_at(join_b);
        let (phi_id, x) = fb.phi(Type::I64, "x");
        fb.add_incoming(phi_id, three, then_b);
        fb.add_incoming(phi_id, nine, else_b);
        let one = fb.i64c(1);
        let y = fb.add(x, one, "y");
        fb.ret();
        let f = fb.finish();

        let s = sccp(&f, &[RtVal::I(0)]);
        // The false arm is dead, so the phi folds to 3 and y to 4.
        assert!(!s.executable.contains(&else_b));
        assert_eq!(s.const_of(x), Some(3));
        assert_eq!(s.const_of(y), Some(4));
    }

    #[test]
    fn loop_iv_goes_overdefined_but_bound_folds() {
        let mut fb = FunctionBuilder::new("looped", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        let eight = fb.i64c(8);
        let bound = fb.mul(n, eight, "bound");
        let mut iv_val = None;
        fb.counted_loop("i", zero, bound, |_, iv| iv_val = Some(iv));
        fb.ret();
        let f = fb.finish();

        let s = sccp(&f, &[RtVal::I(4)]);
        assert_eq!(s.const_of(bound), Some(32));
        assert_eq!(s.const_of(iv_val.unwrap()), None);
        // All blocks of a data-entered loop are executable.
        assert_eq!(s.executable.len(), f.num_blocks());
    }
}
