//! Static loop trip-count inference.
//!
//! The pass pattern-matches each natural loop against the canonical
//! counted shape — `phi [init, preheader], [phi + step, latch]` with an
//! `icmp {slt,ult,sle,ule} phi, bound` feeding the header's `cond_br` —
//! and resolves `init`, `step` and `bound` through [SCCP](crate::sccp)
//! constants, so bounds computed from scalar arguments (`n * n`, `n - 1`)
//! fold too. A matched loop yields the *exact* per-entry iteration count.
//!
//! From per-entry counts the pass derives exact whole-function block
//! execution counts where control flow permits: edge counts propagate
//! from `trips(entry) = 1` through unconditional branches and counted
//! headers (`entries × iters` into the body, `entries` to the exit).
//! Blocks reachable only through data-dependent branches get *no* entry
//! in [`TripFacts::block_trips`] — absent means "statically unknown",
//! never zero. All published counts are exact for terminating runs, so a
//! lower bound multiplying them stays a lower bound, and an expected-case
//! estimate multiplying them is exact.

use std::collections::{BTreeMap, BTreeSet};

use salam_ir::analysis::{find_natural_loops, Cfg, DomTree};
use salam_ir::{BlockId, Function, IntPredicate, Opcode, ValueId, ValueKind};

use crate::sccp::Sccp;

/// An induction variable proven to enumerate a closed arithmetic range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvFact {
    /// First value taken (on every entry to the loop).
    pub start: i128,
    /// Per-iteration increment (always > 0).
    pub step: i128,
    /// Number of iterations per loop entry.
    pub count: u64,
}

impl IvFact {
    /// The last value the variable takes inside the loop body, or `start`
    /// for a loop that never runs.
    pub fn last(&self) -> i128 {
        if self.count == 0 {
            self.start
        } else {
            self.start + self.step * (self.count as i128 - 1)
        }
    }
}

/// One natural loop (multi-latch loops sharing a header are merged),
/// annotated with whatever the analysis could prove.
#[derive(Debug, Clone)]
pub struct LoopTrip {
    /// Loop header.
    pub header: BlockId,
    /// All latches branching back to the header.
    pub latches: BTreeSet<BlockId>,
    /// Every block in the loop (header included).
    pub blocks: BTreeSet<BlockId>,
    /// Header of the innermost enclosing loop, if nested.
    pub parent: Option<BlockId>,
    /// The counted induction variable (phi result), when matched.
    pub iv: Option<(ValueId, IvFact)>,
    /// Exact iterations per entry (the IV count), when matched.
    pub iterations: Option<u64>,
    /// Exact number of times the loop is entered from outside.
    pub entries: Option<u64>,
    /// Exact total latch→header traversals (`entries × iterations`).
    pub total_iterations: Option<u64>,
}

/// The trip-count facts for one function.
#[derive(Debug, Clone, Default)]
pub struct TripFacts {
    /// Exact execution count per block. Absent = statically unknown.
    pub block_trips: BTreeMap<BlockId, u64>,
    /// Per-loop structure and counts, sorted by header.
    pub loops: Vec<LoopTrip>,
    /// Induction-variable ranges, keyed by the phi's result value.
    pub ivs: BTreeMap<ValueId, IvFact>,
}

impl TripFacts {
    /// The loop headed at `h`, if any.
    pub fn loop_at(&self, h: BlockId) -> Option<&LoopTrip> {
        self.loops.iter().find(|l| l.header == h)
    }
}

/// Matches `header`'s exit test against the canonical counted-loop shape
/// and returns the IV phi and its range.
fn match_counted(
    f: &Function,
    sccp: &Sccp,
    header: BlockId,
    blocks: &BTreeSet<BlockId>,
) -> Option<(ValueId, IvFact)> {
    let term = f.terminator(header)?;
    if f.inst(term).op != Opcode::CondBr {
        return None;
    }
    let cond = f.inst(term).operands[0];
    let ValueKind::Inst(cmp_id) = *f.value_kind(cond) else {
        return None;
    };
    let cmp = f.inst(cmp_id);
    let Opcode::ICmp(pred) = cmp.op else {
        return None;
    };
    let inclusive = match pred {
        IntPredicate::Slt | IntPredicate::Ult => false,
        IntPredicate::Sle | IntPredicate::Ule => true,
        _ => return None,
    };
    let phi_v = cmp.operands[0];
    let bound = sccp.const_of(cmp.operands[1])?;
    // The compared value must be a two-way phi in the header: one incoming
    // `phi + step` from a latch inside the loop, one constant from outside.
    let ValueKind::Inst(phi_id) = *f.value_kind(phi_v) else {
        return None;
    };
    let phi = f.inst(phi_id);
    if phi.op != Opcode::Phi || phi.operands.len() != 2 {
        return None;
    }
    if !f.block(header).insts.contains(&phi_id) {
        return None;
    }
    let mut start = None;
    let mut step: Option<i128> = None;
    for (k, &inc) in phi.operands.iter().enumerate() {
        let from_latch = blocks.contains(&phi.block_refs[k]);
        if from_latch {
            let ValueKind::Inst(def) = *f.value_kind(inc) else {
                return None;
            };
            let d = f.inst(def);
            if d.op != Opcode::Add || !d.operands.contains(&phi_v) {
                return None;
            }
            let other = if d.operands[0] == phi_v {
                d.operands[1]
            } else {
                d.operands[0]
            };
            step = sccp.const_of(other);
        } else {
            start = sccp.const_of(inc);
        }
    }
    let (start, step) = (start?, step?);
    if step <= 0 {
        return None;
    }
    let count = if inclusive {
        if start > bound {
            0
        } else {
            ((bound - start) / step + 1) as u64
        }
    } else if start >= bound {
        0
    } else {
        ((bound - start + step - 1) / step) as u64
    };
    Some((phi_v, IvFact { start, step, count }))
}

/// Runs trip-count inference over `f`, reusing `sccp`'s constants.
pub fn infer_trips(f: &Function, sccp: &Sccp) -> TripFacts {
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);

    // Merge natural loops sharing a header (multi-latch) into one.
    let mut merged: BTreeMap<BlockId, (BTreeSet<BlockId>, BTreeSet<BlockId>)> = BTreeMap::new();
    for l in find_natural_loops(f, &cfg, &dom) {
        let e = merged.entry(l.header).or_default();
        e.0.insert(l.latch);
        e.1.extend(l.blocks.iter().copied());
    }

    let mut loops: Vec<LoopTrip> = merged
        .iter()
        .map(|(&header, (latches, blocks))| {
            let parent = merged
                .iter()
                .filter(|(&h, (_, bs))| h != header && bs.contains(&header))
                .map(|(&h, (_, bs))| (bs.len(), h))
                .min()
                .map(|(_, h)| h);
            let iv = match_counted(f, sccp, header, blocks);
            // Counting is only exact when the header's exit test is the
            // loop's *sole* exit: every non-header block must branch
            // strictly inside the loop.
            let single_exit = blocks
                .iter()
                .filter(|&&b| b != header)
                .all(|&b| f.successors(b).iter().all(|s| blocks.contains(s)));
            let iterations = match (&iv, single_exit) {
                (Some((_, r)), true) => Some(r.count),
                _ => None,
            };
            LoopTrip {
                header,
                latches: latches.clone(),
                blocks: blocks.clone(),
                parent,
                iv,
                iterations,
                entries: None,
                total_iterations: None,
            }
        })
        .collect();

    let ivs: BTreeMap<ValueId, IvFact> = loops.iter().filter_map(|l| l.iv).collect();

    // Edge-count propagation. An edge (block, successor-slot) gets a count
    // once its source's trips are known and the branch is either
    // unconditional or the exit test of a counted single-exit header.
    let header_info: BTreeMap<BlockId, (u64, BTreeSet<BlockId>)> = loops
        .iter()
        .filter_map(|l| l.iterations.map(|n| (l.header, (n, l.blocks.clone()))))
        .collect();
    let latch_of: BTreeSet<(BlockId, BlockId)> = loops
        .iter()
        .flat_map(|l| l.latches.iter().map(move |&lt| (lt, l.header)))
        .collect();

    let mut trips: BTreeMap<BlockId, u64> = BTreeMap::new();
    let mut entries_of: BTreeMap<BlockId, u64> = BTreeMap::new();
    trips.insert(f.entry(), 1);
    // SCCP-proven dead blocks never run.
    for (bid, _) in f.blocks() {
        if !sccp.executable.contains(&bid) {
            trips.insert(bid, 0);
        }
    }
    // Header trips depend on external in-edges only; other blocks need all
    // in-edges. Iterate to fixpoint (bounded by loop nesting depth).
    let rpo = cfg.reverse_postorder().to_vec();
    loop {
        let mut changed = false;
        for &b in &rpo {
            if trips.contains_key(&b) {
                continue;
            }
            let is_header = header_info.contains_key(&b);
            let preds = cfg.predecessors(b);
            let mut sum: u64 = 0;
            let mut complete = true;
            for &p in preds {
                // Skip latch back-edges when totalling a header's entries.
                if is_header && latch_of.contains(&(p, b)) {
                    continue;
                }
                match edge_count(f, sccp, &trips, &header_info, p, b) {
                    Some(c) => sum = sum.saturating_add(c),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            if is_header {
                let (n, _) = &header_info[&b];
                entries_of.insert(b, sum);
                // Per entry: n body iterations plus the final exit check.
                trips.insert(b, sum.saturating_mul(n + 1));
            } else {
                trips.insert(b, sum);
            }
            changed = true;
        }
        if !changed {
            break;
        }
    }

    for l in &mut loops {
        if let (Some(&e), Some(n)) = (entries_of.get(&l.header), l.iterations) {
            l.entries = Some(e);
            l.total_iterations = Some(e.saturating_mul(n));
        }
    }

    TripFacts {
        block_trips: trips,
        loops,
        ivs,
    }
}

/// The exact traversal count of the CFG edge `p → s`, when derivable:
/// the sum over `p`'s terminator slots targeting `s` of the slot's count.
fn edge_count(
    f: &Function,
    sccp: &Sccp,
    trips: &BTreeMap<BlockId, u64>,
    header_info: &BTreeMap<BlockId, (u64, BTreeSet<BlockId>)>,
    p: BlockId,
    s: BlockId,
) -> Option<u64> {
    let t = *trips.get(&p)?;
    let term = f.terminator(p)?;
    let inst = f.inst(term);
    let mut sum: u64 = 0;
    for (slot, &target) in inst.block_refs.iter().enumerate() {
        if target != s {
            continue;
        }
        let c = match inst.op {
            Opcode::Br => t,
            Opcode::CondBr => {
                if let Some((n, blocks)) = header_info.get(&p) {
                    // trips(header) = entries × (n + 1); per entry the body
                    // edge is taken n times and the exit edge once.
                    let entries = t / (n + 1);
                    if blocks.contains(&target) {
                        entries.saturating_mul(*n)
                    } else {
                        entries
                    }
                } else if let Some(c) = sccp.const_of(inst.operands[0]) {
                    // Constant condition: only one slot is ever taken.
                    let taken = if c & 1 != 0 { 0 } else { 1 };
                    if slot == taken {
                        t
                    } else {
                        0
                    }
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        sum = sum.saturating_add(c);
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sccp::sccp;
    use salam_ir::interp::RtVal;
    use salam_ir::{FunctionBuilder, Type};

    fn nested(n: i64, m: i64) -> (Function, Sccp) {
        let mut fb = FunctionBuilder::new("nested", &[("n", Type::I64), ("m", Type::I64)]);
        let n_v = fb.arg(0);
        let m_v = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n_v, |fb, _| {
            let z2 = fb.i64c(0);
            fb.counted_loop("j", z2, m_v, |_, _| {});
        });
        fb.ret();
        let f = fb.finish();
        let s = sccp(&f, &[RtVal::I(n), RtVal::I(m)]);
        (f, s)
    }

    #[test]
    fn nested_counted_loops_get_exact_block_trips() {
        let (f, s) = nested(4, 3);
        let t = infer_trips(&f, &s);
        let b = |n: &str| f.block_by_name(n).unwrap();
        assert_eq!(t.block_trips[&b("entry")], 1);
        assert_eq!(t.block_trips[&b("i.header")], 5);
        assert_eq!(t.block_trips[&b("i.body")], 4);
        assert_eq!(t.block_trips[&b("j.header")], 4 * (3 + 1));
        assert_eq!(t.block_trips[&b("j.body")], 12);
        assert_eq!(t.block_trips[&b("j.exit")], 4);
        assert_eq!(t.block_trips[&b("i.exit")], 1);

        let outer = t.loop_at(b("i.header")).unwrap();
        assert_eq!(outer.iterations, Some(4));
        assert_eq!(outer.entries, Some(1));
        assert_eq!(outer.parent, None);
        let inner = t.loop_at(b("j.header")).unwrap();
        assert_eq!(inner.iterations, Some(3));
        assert_eq!(inner.entries, Some(4));
        assert_eq!(inner.total_iterations, Some(12));
        assert_eq!(inner.parent, Some(b("i.header")));
    }

    #[test]
    fn zero_trip_loop_counts_zero() {
        let (f, s) = nested(0, 7);
        let t = infer_trips(&f, &s);
        let b = |n: &str| f.block_by_name(n).unwrap();
        assert_eq!(t.block_trips[&b("i.header")], 1);
        assert_eq!(t.block_trips[&b("i.body")], 0);
        assert_eq!(t.block_trips[&b("j.header")], 0);
        assert_eq!(t.block_trips[&b("i.exit")], 1);
    }

    #[test]
    fn data_dependent_branch_leaves_trips_unknown() {
        // A branch on a loaded value: successors get no static count.
        let mut fb = FunctionBuilder::new("datadep", &[("a", Type::Ptr)]);
        let a = fb.arg(0);
        let v = fb.load(Type::I64, a, "v");
        let zero = fb.i64c(0);
        let c = fb.icmp(IntPredicate::Sgt, v, zero, "c");
        let t_b = fb.add_block("then");
        let e_b = fb.add_block("else");
        fb.cond_br(c, t_b, e_b);
        fb.position_at(t_b);
        fb.ret();
        fb.position_at(e_b);
        fb.ret();
        let f = fb.finish();
        let s = sccp(&f, &[RtVal::P(0)]);
        let t = infer_trips(&f, &s);
        assert_eq!(t.block_trips[&f.entry()], 1);
        assert!(!t.block_trips.contains_key(&t_b));
        assert!(!t.block_trips.contains_key(&e_b));
    }

    #[test]
    fn iv_fact_reports_the_enumerated_range() {
        let (f, s) = nested(4, 3);
        let t = infer_trips(&f, &s);
        let outer = t.loop_at(f.block_by_name("i.header").unwrap()).unwrap();
        let (_, r) = outer.iv.unwrap();
        assert_eq!((r.start, r.step, r.count, r.last()), (0, 1, 4, 3));
    }
}
