//! The generic monotone dataflow engine: a deterministic worklist solver
//! over basic blocks with widening-after-K-iterations.
//!
//! A client implements [`BlockAnalysis`]: a join-semilattice fact type
//! ([`Lattice`]), a direction, a boundary fact, and a block transfer
//! function. The solver iterates blocks in reverse postorder (forward) or
//! postorder (backward) until the facts stop changing. After a block's
//! input fact has been recomputed `widen_after` times, further updates go
//! through [`Lattice::widen`] instead of [`Lattice::join`]; a correct
//! `widen` ascends a finite chain, so fixpoints terminate even on
//! infinite-height domains such as intervals (see
//! [`crate::interval::Interval::widen`]).
//!
//! Determinism: the worklist is a `BTreeSet` keyed by the block's
//! traversal index, so iteration order — and therefore every published
//! fact, including widened ones — is a pure function of the input IR.

use std::collections::BTreeSet;

use salam_ir::analysis::Cfg;
use salam_ir::{BlockId, Function};

/// A join-semilattice with a widening operator.
///
/// `join` must be monotone (`a ⊑ a ⊔ b`); `widen` must additionally
/// guarantee that every chain `a, a ∇ b₁, (a ∇ b₁) ∇ b₂, …` stabilises
/// after finitely many steps. Domains of finite height may leave `widen`
/// as the default (`join`).
pub trait Lattice: Clone {
    /// The least element (empty information).
    fn bottom() -> Self;
    /// Least upper bound, in place. Returns `true` when `self` changed.
    fn join(&mut self, other: &Self) -> bool;
    /// Widening, in place. Returns `true` when `self` changed. Defaults
    /// to `join`, which is only correct for finite-height domains.
    fn widen(&mut self, other: &Self) -> bool {
        self.join(other)
    }
}

/// Which way facts propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit along CFG edges.
    Forward,
    /// Facts flow exit → entry against CFG edges.
    Backward,
}

/// One dataflow problem over a function's CFG.
pub trait BlockAnalysis {
    /// The per-block fact.
    type Fact: Lattice;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The boundary fact: the entry block's input (forward) or every
    /// exit block's input (backward).
    fn boundary(&self) -> Self::Fact;

    /// Transfer one block: consume the input fact, produce the output.
    fn transfer(&self, f: &Function, block: BlockId, fact: &Self::Fact) -> Self::Fact;
}

/// A solved dataflow problem: input and output fact per block, indexed
/// by [`BlockId::index`]. For backward problems, `input` is the fact at
/// block *exit* and `output` the fact at block *entry*.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact flowing into each block's transfer.
    pub input: Vec<F>,
    /// Fact produced by each block's transfer.
    pub output: Vec<F>,
    /// Total transfer applications (a fixpoint-effort metric).
    pub iterations: u64,
    /// Whether any update went through [`Lattice::widen`].
    pub widened: bool,
}

/// Runs `analysis` to fixpoint over `f` and returns the per-block facts.
///
/// `widen_after` is the number of joins a block's input tolerates before
/// updates switch to widening; pass a small K (the canonical choice is 3)
/// for infinite domains, or `u32::MAX` to disable widening on provably
/// finite ones.
pub fn solve<A: BlockAnalysis>(f: &Function, analysis: &A, widen_after: u32) -> Solution<A::Fact> {
    let cfg = Cfg::new(f);
    let n = f.num_blocks();
    // Traversal order: reverse postorder forward, postorder backward —
    // the order that visits defs before uses (resp. uses before defs)
    // for reducible CFGs, minimising iterations.
    let rpo = cfg.reverse_postorder().to_vec();
    let order: Vec<BlockId> = match analysis.direction() {
        Direction::Forward => rpo,
        Direction::Backward => rpo.into_iter().rev().collect(),
    };
    let mut order_of = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        order_of[b.index()] = i;
    }

    let mut input: Vec<A::Fact> = (0..n).map(|_| A::Fact::bottom()).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| A::Fact::bottom()).collect();
    let mut joins = vec![0u32; n];

    // Boundary blocks: the entry (forward) or every block whose
    // direction-wise successor set is empty (backward: Ret blocks).
    match analysis.direction() {
        Direction::Forward => {
            input[f.entry().index()] = analysis.boundary();
        }
        Direction::Backward => {
            for &b in &order {
                if cfg.successors(b).is_empty() {
                    input[b.index()] = analysis.boundary();
                }
            }
        }
    }

    let mut work: BTreeSet<usize> = order
        .iter()
        .map(|b| order_of[b.index()])
        .filter(|&i| i != usize::MAX)
        .collect();
    let mut iterations = 0u64;
    let mut widened = false;

    while let Some(&i) = work.iter().next() {
        work.remove(&i);
        let b = order[i];
        iterations += 1;
        let out = analysis.transfer(f, b, &input[b.index()]);
        let changed = {
            let slot = &mut output[b.index()];
            // Output slots only ever grow (transfer of a larger input is
            // larger for monotone clients); join keeps this robust even
            // for non-monotone transfers, at worst costing extra passes.
            slot.join(&out)
        };
        if !changed && iterations > n as u64 {
            continue;
        }
        let nexts: Vec<BlockId> = match analysis.direction() {
            Direction::Forward => cfg.successors(b).to_vec(),
            Direction::Backward => cfg.predecessors(b).to_vec(),
        };
        for s in nexts {
            let si = s.index();
            joins[si] = joins[si].saturating_add(1);
            let grew = if joins[si] > widen_after {
                widened = true;
                input[si].widen(&output[b.index()])
            } else {
                input[si].join(&output[b.index()])
            };
            if grew && order_of[si] != usize::MAX {
                work.insert(order_of[si]);
            }
        }
    }

    Solution {
        input,
        output,
        iterations,
        widened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use salam_ir::{FunctionBuilder, Type};

    /// `Interval` as a solver fact, widened against the full 64-bit range.
    #[derive(Clone, PartialEq, Debug)]
    struct Range(Interval);
    impl Lattice for Range {
        fn bottom() -> Self {
            Range(Interval::bottom())
        }
        fn join(&mut self, other: &Self) -> bool {
            self.0.join(&other.0)
        }
        fn widen(&mut self, other: &Self) -> bool {
            let b = Interval::top_for(64);
            self.0.widen(&other.0, &b)
        }
    }

    /// A deliberately non-monotone-looking client: each visit of the loop
    /// body bumps the interval by [1, 1] — without widening the chain
    /// `[0,0], [0,1], [0,2], …` never stabilises.
    struct Bumper;
    impl BlockAnalysis for Bumper {
        type Fact = Range;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> Range {
            Range(Interval::exact(0))
        }
        fn transfer(&self, f: &Function, b: BlockId, fact: &Range) -> Range {
            if f.block(b).name.contains("body") {
                Range(fact.0.add(&Interval::exact(1), 64))
            } else {
                fact.clone()
            }
        }
    }

    fn looped() -> Function {
        let mut fb = FunctionBuilder::new("looped", &[("n", Type::I64)]);
        let n = fb.arg(0);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |_, _| {});
        fb.ret();
        fb.finish()
    }

    #[test]
    fn widening_terminates_an_infinite_ascent() {
        let f = looped();
        let sol = solve(&f, &Bumper, 3);
        assert!(sol.widened, "the loop must trigger widening");
        assert!(
            sol.iterations < 100,
            "fixpoint took {} iterations",
            sol.iterations
        );
        // The widened fact is sound: it contains every bumped value.
        let body = f.block_by_name("i.body").unwrap();
        let fact = &sol.output[body.index()];
        assert!(fact.0.hi >= 4, "{fact:?}");
    }

    #[test]
    fn solver_is_deterministic() {
        let f = looped();
        let a = solve(&f, &Bumper, 3);
        let b = solve(&f, &Bumper, 3);
        assert_eq!(a.input, b.input);
        assert_eq!(a.output, b.output);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn without_widening_a_finite_problem_still_converges() {
        // A transfer that is the identity: fixpoint in one pass per block.
        struct Id;
        impl BlockAnalysis for Id {
            type Fact = Range;
            fn direction(&self) -> Direction {
                Direction::Backward
            }
            fn boundary(&self) -> Range {
                Range(Interval::exact(7))
            }
            fn transfer(&self, _f: &Function, _b: BlockId, fact: &Range) -> Range {
                fact.clone()
            }
        }
        let f = looped();
        let sol = solve(&f, &Id, u32::MAX);
        assert!(!sol.widened);
        assert_eq!(sol.output[f.entry().index()].0, Interval::exact(7));
    }
}
