//! An append-only line journal with atomic compaction.
//!
//! The serve layer writes one line per job lifecycle event (`admit` /
//! `terminal`); after a crash, the lines whose `admit` has no matching
//! `terminal` are exactly the jobs to re-admit. Two properties make that
//! safe:
//!
//! - **Appends are flushed through the process** (`write_all` + `flush` of
//!   a whole line). A `kill -9` loses nothing already appended — the bytes
//!   live in the page cache, which survives process death (though not
//!   power loss; this is crash recovery, not durability against the
//!   machine dying).
//! - **Compaction is atomic**: [`Journal::rewrite`] writes a temp file in
//!   the same directory, fsyncs it, and `rename`s over the journal — the
//!   same idiom as the DSE result cache — so a reader never observes a
//!   half-written journal.
//!
//! Line content is the caller's business; this type only frames and
//! persists lines.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An open append-only journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` for appending.
    /// Parent directories are created.
    ///
    /// # Errors
    ///
    /// Directory creation or open failures, verbatim.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one line (a trailing newline is added) and flushes it out
    /// of the process.
    ///
    /// # Errors
    ///
    /// Write failures, verbatim.
    pub fn append(&self, line: &str) -> std::io::Result<()> {
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()
    }

    /// Reads every line of the journal at `path`. A missing file is an
    /// empty journal, not an error; a trailing partial line (torn final
    /// append) is dropped.
    ///
    /// # Errors
    ///
    /// Read failures other than `NotFound`, verbatim.
    pub fn read_lines(path: &Path) -> std::io::Result<Vec<String>> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut lines = Vec::new();
        let mut buf = Vec::new();
        let mut reader = BufReader::new(file);
        loop {
            buf.clear();
            if reader.read_until(b'\n', &mut buf)? == 0 {
                break;
            }
            if buf.last() != Some(&b'\n') {
                break; // torn final append — ignore it
            }
            lines.push(String::from_utf8_lossy(&buf[..buf.len() - 1]).into_owned());
        }
        Ok(lines)
    }

    /// Atomically replaces the journal's contents with `lines` (temp file
    /// + fsync + rename) and re-opens the append handle.
    ///
    /// # Errors
    ///
    /// Write / rename failures, verbatim.
    pub fn rewrite(&self, lines: &[String]) -> std::io::Result<()> {
        let mut guard = self.file.lock().expect("journal lock poisoned");
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut f = File::create(&tmp)?;
            for line in lines {
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        *guard = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "salam-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p.push("jobs.journal");
        p
    }

    #[test]
    fn appends_survive_reopen_and_missing_file_reads_empty() {
        let path = tmp("append");
        assert!(Journal::read_lines(&path).unwrap().is_empty());
        {
            let j = Journal::open(&path).unwrap();
            j.append("one").unwrap();
            j.append("two").unwrap();
        }
        let j = Journal::open(&path).unwrap();
        j.append("three").unwrap();
        assert_eq!(Journal::read_lines(&path).unwrap(), ["one", "two", "three"]);
    }

    #[test]
    fn rewrite_compacts_atomically_and_appends_continue() {
        let path = tmp("rewrite");
        let j = Journal::open(&path).unwrap();
        for i in 0..5 {
            j.append(&format!("line{i}")).unwrap();
        }
        j.rewrite(&["kept".to_string()]).unwrap();
        j.append("after").unwrap();
        assert_eq!(Journal::read_lines(&path).unwrap(), ["kept", "after"]);
        assert!(!path.with_extension("journal.tmp").exists());
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = tmp("torn");
        let j = Journal::open(&path).unwrap();
        j.append("whole").unwrap();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"partial-no-newline").unwrap();
        }
        assert_eq!(Journal::read_lines(&path).unwrap(), ["whole"]);
    }
}
