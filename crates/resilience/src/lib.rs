//! Resilience primitives for the serving stack.
//!
//! Four small, dependency-free building blocks that the serve / DSE /
//! runtime layers compose into deadlines, retries, overload protection,
//! and crash recovery:
//!
//! - [`CancelToken`] — a shared cancel/deadline flag polled cooperatively
//!   at engine cycle-batch boundaries and between sweep chunks. The
//!   disabled token ([`CancelToken::none`]) costs one branch per poll.
//! - [`BackoffPolicy`] — seeded exponential backoff with full jitter.
//!   Delays are a pure function of `(seed, site, attempt)` via SplitMix64,
//!   so retry schedules are byte-identical across worker counts.
//! - [`BreakerSet`] — per-key circuit breakers that fast-fail submissions
//!   after repeated failures. Cooldown is counted in *fast-failed
//!   submissions*, not wall time, so state transitions depend only on the
//!   submission sequence and replay deterministically.
//! - [`Journal`] — an append-only line journal with atomic (temp + rename)
//!   compaction, the crash-safety substrate for exactly-once job recovery.
//!
//! Everything here is deliberately mechanism, not policy: thresholds,
//! seeds, and file formats are chosen by the caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod cancel;
pub mod journal;

pub use backoff::BackoffPolicy;
pub use breaker::{BreakerConfig, BreakerDecision, BreakerSet, BreakerState};
pub use cancel::{CancelToken, StopReason};
pub use journal::Journal;

/// FNV-1a over a byte string — the workspace's standard cheap stable hash,
/// used here to derive per-site RNG streams and short key digests.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}
