//! Seeded exponential backoff with full jitter.
//!
//! The delay for retry attempt `n` at a given site is drawn uniformly
//! from `[0, min(cap_ms, base_ms · 2ⁿ)]` ("full jitter", the AWS
//! architecture-blog variant that minimizes contention). The draw comes
//! from a SplitMix64 stream seeded by `(seed, site, attempt)`, so the
//! schedule is a **pure function** — independent of wall clock, worker
//! count, and call interleaving — which is what makes retry behaviour
//! byte-identical across `SALAM_JOBS=1` and `SALAM_JOBS=8`.

use salam_obs::SplitMix64;

use crate::fnv1a64;

/// Backoff tuning. `Default` is sized for transient worker panics:
/// up to 2 retries spaced tens of milliseconds apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Base delay; the attempt-`n` ceiling is `base_ms · 2ⁿ`.
    pub base_ms: u64,
    /// Upper bound on any single delay.
    pub cap_ms: u64,
    /// Retry budget a caller should spend with this policy.
    pub max_retries: u32,
    /// Stream seed; two policies with different seeds are uncorrelated.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base_ms: 10,
            cap_ms: 2_000,
            max_retries: 2,
            seed: 0xB0FF,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry `attempt` (1-based) of the work identified
    /// by `site`. Pure: same `(seed, site, attempt)` → same delay.
    #[must_use]
    pub fn delay_ms(&self, site: &str, attempt: u32) -> u64 {
        let exp = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let ceiling = self.base_ms.saturating_mul(exp).min(self.cap_ms);
        if ceiling == 0 {
            return 0;
        }
        // Derive an independent stream per (site, attempt): hash them into
        // the seed so concurrent sites never share a generator.
        let stream = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ fnv1a64(site.as_bytes())
            ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407);
        SplitMix64::new(stream).range_u64(0, ceiling + 1)
    }

    /// The full retry schedule for `site`: delays for attempts
    /// `1..=max_retries`. Handy for tests and logs.
    #[must_use]
    pub fn schedule(&self, site: &str) -> Vec<u64> {
        (1..=self.max_retries)
            .map(|a| self.delay_ms(site, a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_pure_functions_of_seed_site_attempt() {
        let p = BackoffPolicy::default();
        for attempt in 1..6 {
            assert_eq!(
                p.delay_ms("serve/gemm", attempt),
                p.delay_ms("serve/gemm", attempt),
                "attempt {attempt} must be deterministic"
            );
        }
        assert_eq!(p.schedule("x"), p.schedule("x"));
    }

    #[test]
    fn different_sites_and_seeds_give_different_streams() {
        let p = BackoffPolicy {
            base_ms: 1000,
            cap_ms: 1_000_000,
            max_retries: 8,
            seed: 7,
        };
        let q = BackoffPolicy {
            seed: 8,
            ..p.clone()
        };
        assert_ne!(p.schedule("a"), p.schedule("b"));
        assert_ne!(p.schedule("a"), q.schedule("a"));
    }

    #[test]
    fn delays_respect_the_exponential_ceiling_and_cap() {
        let p = BackoffPolicy {
            base_ms: 10,
            cap_ms: 50,
            max_retries: 10,
            seed: 42,
        };
        for attempt in 1..12 {
            let ceiling = 10u64.saturating_mul(1 << attempt.min(20)).min(50);
            assert!(
                p.delay_ms("site", attempt) <= ceiling,
                "attempt {attempt} exceeded ceiling {ceiling}"
            );
        }
    }

    #[test]
    fn zero_base_means_no_sleep() {
        let p = BackoffPolicy {
            base_ms: 0,
            cap_ms: 100,
            max_retries: 3,
            seed: 1,
        };
        assert_eq!(p.schedule("s"), vec![0, 0, 0]);
    }
}
