//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is a cheap shared flag: the owner (the serve core)
//! keeps one handle per job, simulation code polls its clone at safe
//! points. Cancellation is *cooperative* — nothing is interrupted; the
//! engine notices the flag at the next cycle-batch boundary and returns a
//! typed error, so every stop leaves a consistent, reportable state.
//!
//! The disabled token ([`CancelToken::none`]) is an `Option::None` inside;
//! polling it is a single branch, which is why the engine can poll
//! unconditionally without perturbing uncontrolled runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a cooperative stop fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// An explicit cancel request ([`CancelToken::cancel`]).
    Cancelled,
    /// The job's deadline passed before it finished.
    DeadlineExceeded,
}

impl StopReason {
    /// Stable short label: `"cancelled"` or `"timeout"`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExceeded => "timeout",
        }
    }

    /// `true` for [`StopReason::DeadlineExceeded`].
    #[must_use]
    pub fn is_timeout(self) -> bool {
        matches!(self, StopReason::DeadlineExceeded)
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancel/deadline flag. Clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// The disabled token: never stops, polls in one branch.
    #[must_use]
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// An enabled token with no deadline — stops only on explicit
    /// [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// An enabled token whose deadline is `deadline_ms` from now.
    #[must_use]
    pub fn with_deadline_ms(deadline_ms: u64) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(std::time::Duration::from_millis(deadline_ms)),
            })),
        }
    }

    /// [`CancelToken::with_deadline_ms`] when `Some`, otherwise an enabled
    /// deadline-free token (so the job stays cancellable).
    #[must_use]
    pub fn with_deadline_opt(deadline_ms: Option<u64>) -> CancelToken {
        match deadline_ms {
            Some(ms) => CancelToken::with_deadline_ms(ms),
            None => CancelToken::new(),
        }
    }

    /// `false` only for [`CancelToken::none`].
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Requests a cooperative stop. Idempotent; a cancel always wins over
    /// a concurrently expiring deadline.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::SeqCst);
        }
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::SeqCst))
    }

    /// The stop reason if the token has fired, else `None`. Explicit
    /// cancels take precedence over deadline expiry.
    #[must_use]
    pub fn poll(&self) -> Option<StopReason> {
        let inner = self.inner.as_ref()?;
        if inner.cancelled.load(Ordering::SeqCst) {
            return Some(StopReason::Cancelled);
        }
        match inner.deadline {
            Some(d) if Instant::now() >= d => Some(StopReason::DeadlineExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_token_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_enabled());
        t.cancel();
        assert!(t.poll().is_none());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(t.poll().is_none());
        c.cancel();
        assert_eq!(t.poll(), Some(StopReason::Cancelled));
        assert!(t.is_cancelled());
    }

    #[test]
    fn expired_deadline_reports_timeout_and_cancel_overrides_it() {
        let t = CancelToken::with_deadline_ms(0);
        assert_eq!(t.poll(), Some(StopReason::DeadlineExceeded));
        assert_eq!(t.poll().unwrap().label(), "timeout");
        t.cancel();
        assert_eq!(t.poll(), Some(StopReason::Cancelled));
    }

    #[test]
    fn far_deadline_does_not_fire() {
        let t = CancelToken::with_deadline_ms(60 * 60 * 1000);
        assert!(t.poll().is_none());
    }
}
