//! Deterministic per-key circuit breakers.
//!
//! One breaker per key (the serve layer keys on the job's config
//! fingerprint) with the classic three-state machine:
//!
//! ```text
//!            failures >= threshold
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │  next `cooldown` submissions
//!     │ probe succeeds                  │  fast-fail, then…
//!     │                                 ▼
//!     └────────────────────────── Half-open ──▶ Open   (probe fails)
//!                                  (one probe admitted)
//! ```
//!
//! The twist that makes it reproducible: **cooldown is counted in
//! fast-failed submissions, not wall time.** After opening, the next
//! `cooldown` submissions for that key are rejected; the one after that is
//! admitted as the half-open probe. State transitions are therefore a pure
//! function of the per-key admit/outcome sequence — identical across
//! worker counts, schedulers, and machines — which is what the
//! determinism tests pin down.

use std::collections::BTreeMap;

use crate::fnv1a64;

/// Breaker tuning shared by every key in a [`BreakerSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Submissions fast-failed while Open before the half-open probe.
    pub cooldown: u32,
    /// Retry hint attached to fast-fail decisions.
    pub retry_after_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: 2,
            retry_after_ms: 250,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: everything is admitted.
    #[default]
    Closed,
    /// Tripped: submissions fast-fail for the cooldown.
    Open,
    /// One probe is in flight; its outcome decides Closed vs Open.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (`closed` / `open` / `half-open`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What a submission should do, per [`BreakerSet::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run it (breaker closed).
    Allow,
    /// Run it as the half-open probe; its outcome closes or re-opens.
    Probe,
    /// Reject without running; suggest retrying after the hint.
    FastFail {
        /// Client-facing retry hint, milliseconds.
        retry_after_ms: u64,
    },
}

#[derive(Debug, Default)]
struct Breaker {
    state: BreakerState,
    /// Consecutive failures while Closed.
    failures: u32,
    /// Submissions fast-failed since this Open began.
    fastfails: u32,
}

/// A family of breakers, one per key, sharing one [`BreakerConfig`].
#[derive(Debug)]
pub struct BreakerSet {
    cfg: BreakerConfig,
    keys: BTreeMap<String, Breaker>,
    log: Vec<String>,
}

/// An 8-hex-digit digest of a key for compact transition logs.
fn digest(key: &str) -> String {
    format!("{:08x}", (fnv1a64(key.as_bytes()) >> 32) as u32)
}

impl BreakerSet {
    /// An empty set with the given tuning.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> BreakerSet {
        BreakerSet {
            cfg,
            keys: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    fn transition(&mut self, key: &str, from: BreakerState, to: BreakerState) -> &'static str {
        let label: &'static str = match (from, to) {
            (BreakerState::Closed, BreakerState::Open) => "closed->open",
            (BreakerState::Open, BreakerState::HalfOpen) => "open->half-open",
            (BreakerState::HalfOpen, BreakerState::Open) => "half-open->open",
            (BreakerState::HalfOpen, BreakerState::Closed) => "half-open->closed",
            _ => "noop",
        };
        self.log.push(format!("{}: {label}", digest(key)));
        label
    }

    /// Decides whether a submission for `key` may run. May transition the
    /// key Open → Half-open (cooldown elapsed); the transition label, if
    /// any, is returned alongside the decision for the caller's logs.
    pub fn admit(&mut self, key: &str) -> (BreakerDecision, Option<&'static str>) {
        let cooldown = self.cfg.cooldown;
        let retry_after_ms = self.cfg.retry_after_ms;
        let state = {
            let b = self.keys.entry(key.to_string()).or_default();
            match b.state {
                BreakerState::Closed => return (BreakerDecision::Allow, None),
                BreakerState::HalfOpen => {
                    // A probe is already in flight; don't pile on.
                    return (BreakerDecision::FastFail { retry_after_ms }, None);
                }
                BreakerState::Open => {
                    b.fastfails += 1;
                    if b.fastfails > cooldown {
                        b.state = BreakerState::HalfOpen;
                        BreakerState::HalfOpen
                    } else {
                        return (BreakerDecision::FastFail { retry_after_ms }, None);
                    }
                }
            }
        };
        debug_assert_eq!(state, BreakerState::HalfOpen);
        let label = self.transition(key, BreakerState::Open, BreakerState::HalfOpen);
        (BreakerDecision::Probe, Some(label))
    }

    /// Records a successful run of `key`. Closes a half-open breaker.
    pub fn on_success(&mut self, key: &str) -> Option<&'static str> {
        let from = {
            let b = self.keys.entry(key.to_string()).or_default();
            match b.state {
                BreakerState::Closed => {
                    b.failures = 0;
                    return None;
                }
                BreakerState::Open => return None,
                BreakerState::HalfOpen => {
                    b.state = BreakerState::Closed;
                    b.failures = 0;
                    b.fastfails = 0;
                    BreakerState::HalfOpen
                }
            }
        };
        Some(self.transition(key, from, BreakerState::Closed))
    }

    /// Records a breaker-relevant failure of `key` (deadlock / panic).
    /// Trips Closed → Open at the threshold; re-opens a half-open breaker.
    pub fn on_failure(&mut self, key: &str) -> Option<&'static str> {
        let threshold = self.cfg.failure_threshold;
        let from = {
            let b = self.keys.entry(key.to_string()).or_default();
            match b.state {
                BreakerState::Closed => {
                    b.failures += 1;
                    if b.failures < threshold {
                        return None;
                    }
                    b.state = BreakerState::Open;
                    b.fastfails = 0;
                    BreakerState::Closed
                }
                BreakerState::HalfOpen => {
                    b.state = BreakerState::Open;
                    b.fastfails = 0;
                    BreakerState::HalfOpen
                }
                BreakerState::Open => return None,
            }
        };
        Some(self.transition(key, from, BreakerState::Open))
    }

    /// The current state of `key` (Closed if never seen).
    #[must_use]
    pub fn state(&self, key: &str) -> BreakerState {
        self.keys.get(key).map_or(BreakerState::Closed, |b| b.state)
    }

    /// Every transition so far, in order, as `"<key8>: <from>-><to>"`
    /// lines. Byte-identical runs produce byte-identical logs.
    #[must_use]
    pub fn log(&self) -> &[String] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> BreakerSet {
        BreakerSet::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: 2,
            retry_after_ms: 100,
        })
    }

    #[test]
    fn trips_after_threshold_and_fast_fails_through_cooldown() {
        let mut s = set();
        assert_eq!(s.admit("k").0, BreakerDecision::Allow);
        assert!(s.on_failure("k").is_none());
        assert_eq!(s.on_failure("k"), Some("closed->open"));
        assert_eq!(s.state("k"), BreakerState::Open);
        // Cooldown: two fast-fails, then the probe is admitted.
        for _ in 0..2 {
            assert_eq!(
                s.admit("k").0,
                BreakerDecision::FastFail {
                    retry_after_ms: 100
                }
            );
        }
        let (d, t) = s.admit("k");
        assert_eq!(d, BreakerDecision::Probe);
        assert_eq!(t, Some("open->half-open"));
    }

    #[test]
    fn probe_outcome_closes_or_reopens() {
        let mut s = set();
        s.on_failure("k");
        s.on_failure("k");
        for _ in 0..2 {
            s.admit("k");
        }
        assert_eq!(s.admit("k").0, BreakerDecision::Probe);
        // While half-open, everything else fast-fails.
        assert!(matches!(s.admit("k").0, BreakerDecision::FastFail { .. }));
        assert_eq!(s.on_failure("k"), Some("half-open->open"));
        // Second cooldown, second probe — this one succeeds.
        for _ in 0..2 {
            s.admit("k");
        }
        assert_eq!(s.admit("k").0, BreakerDecision::Probe);
        assert_eq!(s.on_success("k"), Some("half-open->closed"));
        assert_eq!(s.state("k"), BreakerState::Closed);
        assert_eq!(s.admit("k").0, BreakerDecision::Allow);
        let transitions: Vec<&str> = s
            .log()
            .iter()
            .map(|l| l.split(": ").nth(1).unwrap())
            .collect();
        assert_eq!(
            transitions,
            [
                "closed->open",
                "open->half-open",
                "half-open->open",
                "open->half-open",
                "half-open->closed",
            ]
        );
    }

    #[test]
    fn keys_are_independent_and_success_resets_the_failure_run() {
        let mut s = set();
        s.on_failure("a");
        s.on_success("a"); // resets the consecutive-failure count
        assert!(s.on_failure("a").is_none());
        assert_eq!(s.state("a"), BreakerState::Closed);
        s.on_failure("b");
        s.on_failure("b");
        assert_eq!(s.state("b"), BreakerState::Open);
        assert_eq!(s.admit("a").0, BreakerDecision::Allow);
    }
}
