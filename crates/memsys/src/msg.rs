//! The message vocabulary exchanged by memory-system components.

use sim_core::CompId;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A read of `size` bytes.
    Read,
    /// A write of `size` bytes carrying data.
    Write,
}

/// A memory request packet.
#[derive(Debug, Clone, PartialEq)]
pub struct MemReq {
    /// Requester-chosen id, echoed in the response.
    pub id: u64,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
    /// Read or write.
    pub op: MemOp,
    /// Payload for writes.
    pub data: Option<Vec<u8>>,
    /// Component to receive the [`MemResp`].
    pub reply_to: CompId,
}

impl MemReq {
    /// A read request.
    pub fn read(id: u64, addr: u64, size: u32, reply_to: CompId) -> Self {
        MemReq {
            id,
            addr,
            size,
            op: MemOp::Read,
            data: None,
            reply_to,
        }
    }

    /// A write request.
    pub fn write(id: u64, addr: u64, data: Vec<u8>, reply_to: CompId) -> Self {
        let size = data.len() as u32;
        MemReq {
            id,
            addr,
            size,
            op: MemOp::Write,
            data: Some(data),
            reply_to,
        }
    }
}

/// A memory response packet.
#[derive(Debug, Clone, PartialEq)]
pub struct MemResp {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the request address.
    pub addr: u64,
    /// Echo of the operation.
    pub op: MemOp,
    /// Data for reads.
    pub data: Option<Vec<u8>>,
}

/// All messages understood by memory-system components.
///
/// The `Start`, `Doorbell` and `Custom` variants exist for components built
/// on top of this crate (hosts, communications interfaces, experiment
/// drivers) so one message type can serve a whole system simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum MemMsg {
    /// A request packet.
    Req(MemReq),
    /// A response packet.
    Resp(MemResp),
    /// Self-scheduled clock tick for pipelined components.
    Tick,
    /// Kick a DMA engine.
    DmaStart(crate::dma::DmaCmd),
    /// DMA completion notification (`id` echoes [`crate::dma::DmaCmd::id`]).
    DmaDone {
        /// Echo of the command id.
        id: u64,
    },
    /// Stream payload push (producer → buffer, buffer → consumer).
    StreamPush {
        /// Payload bytes.
        data: Vec<u8>,
        /// Marks the final beat of a stream.
        last: bool,
    },
    /// Stream credit return (buffer → producer), granting `n` more beats.
    StreamCredit {
        /// Number of beats granted.
        n: u32,
    },
    /// Interrupt line level change.
    Irq {
        /// Which line.
        line: u32,
        /// Asserted or deasserted.
        raised: bool,
    },
    /// Generic start/kick for drivers and experiment harnesses.
    Start,
    /// Doorbell from an [`crate::MmrBlock`]: a watched register was written.
    Doorbell {
        /// Offset of the register that was written.
        offset: u64,
        /// The value written.
        value: u64,
    },
    /// Escape hatch for crates layering protocols on this message type.
    Custom(u64, u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let to = CompId::from_raw(3);
        let r = MemReq::read(7, 0x100, 8, to);
        assert_eq!(r.op, MemOp::Read);
        assert_eq!(r.size, 8);
        assert!(r.data.is_none());
        let w = MemReq::write(8, 0x200, vec![1, 2, 3, 4], to);
        assert_eq!(w.op, MemOp::Write);
        assert_eq!(w.size, 4);
        assert_eq!(w.data.as_deref(), Some(&[1u8, 2, 3, 4][..]));
    }
}
