//! Set-associative write-back cache.

use std::collections::{HashMap, VecDeque};

use salam_fault::{FaultPlan, SimError};
use salam_obs::{SharedTrace, SpanId, TrackId};
use sim_core::{ClockDomain, CompId, Component, Ctx};

use crate::fault::FaultState;
use crate::msg::{MemMsg, MemOp, MemReq, MemResp};

/// Configuration for a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency_cycles: u64,
    /// Outstanding-miss registers.
    pub mshrs: u32,
    /// Cache clock.
    pub clock: ClockDomain,
}

impl Default for CacheConfig {
    /// 4 kB, 4-way, 64 B lines, 2-cycle hits, 8 MSHRs at 1 GHz.
    fn default() -> Self {
        CacheConfig {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
            hit_latency_cycles: 2,
            mshrs: 8,
            clock: ClockDomain::default(),
        }
    }
}

impl CacheConfig {
    /// Sets capacity (bytes), keeping other parameters.
    pub fn with_size(mut self, bytes: u64) -> Self {
        self.size_bytes = bytes;
        self
    }

    /// Sets line size in bytes.
    pub fn with_line(mut self, bytes: u32) -> Self {
        self.line_bytes = bytes;
        self
    }

    fn num_sets(&self) -> u64 {
        (self.size_bytes / (self.assoc as u64 * self.line_bytes as u64)).max(1)
    }

    /// Rejects knobs that would divide by zero in set indexing or wedge the
    /// miss path (a cache with zero MSHRs can never fill a line).
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |field: &str, detail: &str| Err(SimError::config("cache", field, detail));
        if self.assoc == 0 {
            return bad("assoc", "must be nonzero");
        }
        if self.line_bytes == 0 {
            return bad("line_bytes", "must be nonzero");
        }
        if self.mshrs == 0 {
            return bad("mshrs", "must be nonzero");
        }
        if self.size_bytes == 0 {
            return bad("size_bytes", "must be nonzero");
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64, // full line address
    dirty: bool,
    lru: u64,
    data: Vec<u8>,
}

/// A blocking-on-conflict, write-back, write-allocate cache with MSHRs.
///
/// Used as the accelerator-side private L1 and the cluster/system LLC in the
/// paper's cache-based memory hierarchies (Table II sweeps its capacity).
#[derive(Debug)]
pub struct Cache {
    name: String,
    cfg: CacheConfig,
    next: CompId,
    sets: Vec<Vec<Option<Line>>>,
    lru_clock: u64,
    // line addr -> requests waiting on the fill
    mshr: HashMap<u64, Vec<MemReq>>,
    // our fill-request id -> line addr
    fills: HashMap<u64, u64>,
    // ids of write-backs whose acks we swallow
    writebacks: HashMap<u64, ()>,
    overflow: VecDeque<MemReq>,
    next_id: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    wb_count: u64,
    mshr_full_rejects: u64,
    trace: SharedTrace,
    track: Option<TrackId>,
    // line addr -> span open for the outstanding fill
    fill_spans: HashMap<u64, SpanId>,
    fault: Option<FaultState>,
}

impl Cache {
    /// Creates a cache in front of `next` (the component misses go to),
    /// panicking on an invalid configuration. Thin wrapper over
    /// [`Cache::try_new`].
    pub fn new(name: &str, cfg: CacheConfig, next: CompId) -> Self {
        match Self::try_new(name, cfg, next) {
            Ok(cache) => cache,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cache::new`]: validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] per [`CacheConfig::validate`].
    pub fn try_new(name: &str, cfg: CacheConfig, next: CompId) -> Result<Self, SimError> {
        cfg.validate()?;
        let sets = (0..cfg.num_sets())
            .map(|_| vec![None; cfg.assoc as usize])
            .collect();
        Ok(Cache {
            name: name.to_string(),
            cfg,
            next,
            sets,
            lru_clock: 0,
            mshr: HashMap::new(),
            fills: HashMap::new(),
            writebacks: HashMap::new(),
            overflow: VecDeque::new(),
            next_id: 1,
            hits: 0,
            misses: 0,
            evictions: 0,
            wb_count: 0,
            mshr_full_rejects: 0,
            trace: SharedTrace::disabled(),
            track: None,
            fill_spans: HashMap::new(),
            fault: None,
        })
    }

    /// Attaches a trace sink; miss fills become spans on a `cache.{name}`
    /// track, MSHR saturation shows up as instants.
    pub fn set_trace(&mut self, trace: SharedTrace) {
        self.track = trace
            .is_enabled()
            .then(|| trace.track(&format!("cache.{}", self.name)));
        self.trace = trace;
    }

    /// Arms fault injection: filled lines take seeded single-bit flips at
    /// the plan's `mem_bitflip_rate` — a flipped line then serves corrupted
    /// data to every waiter, the classic "one upset, many consumers" SRAM
    /// failure mode.
    pub fn set_fault(&mut self, plan: &FaultPlan) {
        self.fault = Some(FaultState::new(plan, &format!("cache.{}", self.name)));
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes as u64 * self.cfg.line_bytes as u64
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line_bytes as u64) % self.cfg.num_sets()) as usize
    }

    fn lookup(&mut self, line_addr: u64) -> Option<&mut Line> {
        let set = self.set_index(line_addr);
        self.lru_clock += 1;
        let lru = self.lru_clock;
        let line = self.sets[set]
            .iter_mut()
            .flatten()
            .find(|l| l.tag == line_addr)?;
        line.lru = lru;
        Some(line)
    }

    fn serve_from_line(line: &mut Line, req: &MemReq, line_bytes: u32) -> MemResp {
        let off = (req.addr - line.tag) as usize;
        assert!(
            off + req.size as usize <= line_bytes as usize,
            "access at {:#x}+{} crosses a {}-byte cache line (scalar accesses must not straddle lines)",
            req.addr,
            req.size,
            line_bytes
        );
        match req.op {
            MemOp::Read => MemResp {
                id: req.id,
                addr: req.addr,
                op: MemOp::Read,
                data: Some(line.data[off..off + req.size as usize].to_vec()),
            },
            MemOp::Write => {
                if let Some(d) = &req.data {
                    line.data[off..off + d.len()].copy_from_slice(d);
                }
                line.dirty = true;
                MemResp {
                    id: req.id,
                    addr: req.addr,
                    op: MemOp::Write,
                    data: None,
                }
            }
        }
    }

    fn access(&mut self, req: MemReq, ctx: &mut Ctx<'_, MemMsg>) {
        let la = self.line_addr(req.addr);
        let hit_delay = self.cfg.clock.cycles(self.cfg.hit_latency_cycles);
        let line_bytes = self.cfg.line_bytes;
        if self.lookup(la).is_some() {
            self.hits += 1;
            let line = self.lookup(la).expect("hit line present");
            let resp = Self::serve_from_line(line, &req, line_bytes);
            ctx.send(req.reply_to, hit_delay, MemMsg::Resp(resp));
            return;
        }
        self.misses += 1;
        if let Some(waiters) = self.mshr.get_mut(&la) {
            waiters.push(req);
            return;
        }
        if self.mshr.len() >= self.cfg.mshrs as usize {
            self.mshr_full_rejects += 1;
            if let Some(t) = self.track {
                self.trace.instant(t, "reject:mshr_full", ctx.now());
            }
            self.overflow.push_back(req);
            return;
        }
        self.mshr.insert(la, vec![req]);
        let id = self.next_id;
        self.next_id += 1;
        self.fills.insert(id, la);
        if let Some(t) = self.track {
            let span = self
                .trace
                .begin_span(t, &format!("fill {la:#x}"), ctx.now());
            self.fill_spans.insert(la, span);
        }
        let fill = MemReq::read(id, la, self.cfg.line_bytes, ctx.self_id());
        ctx.send(self.next, hit_delay, MemMsg::Req(fill));
    }

    fn install(&mut self, la: u64, mut data: Vec<u8>, ctx: &mut Ctx<'_, MemMsg>) {
        if let Some(span) = self.fill_spans.remove(&la) {
            self.trace.end_span(span, ctx.now());
        }
        if let Some(f) = self.fault.as_mut() {
            if f.maybe_flip(&mut data) {
                if let Some(t) = self.track {
                    self.trace.instant(t, "fault:mem_bitflip", ctx.now());
                }
            }
        }
        let set = self.set_index(la);
        // Pick an invalid way or evict LRU.
        let ways = &mut self.sets[set];
        let victim = match ways.iter().position(|w| w.is_none()) {
            Some(i) => i,
            None => {
                let (i, _) = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.as_ref().map(|l| l.lru).unwrap_or(0))
                    .expect("nonzero associativity");
                i
            }
        };
        if let Some(old) = ways[victim].take() {
            self.evictions += 1;
            if old.dirty {
                self.wb_count += 1;
                let id = self.next_id;
                self.next_id += 1;
                self.writebacks.insert(id, ());
                let wb = MemReq::write(id, old.tag, old.data, ctx.self_id());
                ctx.send(self.next, 0, MemMsg::Req(wb));
            }
        }
        self.lru_clock += 1;
        self.sets[set][victim] = Some(Line {
            tag: la,
            dirty: false,
            lru: self.lru_clock,
            data,
        });

        // Serve everything waiting on this line.
        let waiters = self.mshr.remove(&la).unwrap_or_default();
        let hit_delay = self.cfg.clock.cycles(self.cfg.hit_latency_cycles);
        let line_bytes = self.cfg.line_bytes;
        for req in waiters {
            let line = self.lookup(la).expect("line just installed");
            let resp = Self::serve_from_line(line, &req, line_bytes);
            ctx.send(req.reply_to, hit_delay, MemMsg::Resp(resp));
        }
        // Retry overflowed misses now that an MSHR freed up.
        while self.mshr.len() < self.cfg.mshrs as usize {
            let Some(req) = self.overflow.pop_front() else {
                break;
            };
            self.access(req, ctx);
        }
    }
}

impl Component<MemMsg> for Cache {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::Req(req) => self.access(req, ctx),
            MemMsg::Resp(resp) => {
                if self.writebacks.remove(&resp.id).is_some() {
                    return;
                }
                let Some(la) = self.fills.remove(&resp.id) else {
                    panic!("{}: unexpected response id {}", self.name, resp.id);
                };
                let data = resp.data.expect("line fill carries data");
                self.install(la, data, ctx);
            }
            other => debug_assert!(false, "{}: unexpected message {other:?}", self.name),
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let mut v = vec![
            ("hits".into(), self.hits as f64),
            ("misses".into(), self.misses as f64),
            ("evictions".into(), self.evictions as f64),
            ("writebacks".into(), self.wb_count as f64),
            ("mshr_full_rejects".into(), self.mshr_full_rejects as f64),
        ];
        if let Some(f) = &self.fault {
            v.push(("fault_bitflips".into(), f.bitflips as f64));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{Dram, DramConfig};
    use crate::test_util::Collector;
    use sim_core::Simulation;

    fn system(cfg: CacheConfig) -> (Simulation<MemMsg>, CompId, CompId, CompId) {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new("dram", DramConfig::default(), 0, 1 << 20));
        let cache = sim.add_component(Cache::new("l1", cfg, dram));
        let col = sim.add_component(Collector::new());
        (sim, dram, cache, col)
    }

    #[test]
    fn miss_then_hit() {
        let (mut sim, dram, cache, col) = system(CacheConfig::default());
        sim.component_as_mut::<Dram>(dram)
            .unwrap()
            .poke(0x100, &[42, 43, 44, 45]);
        sim.post(cache, 0, MemMsg::Req(MemReq::read(1, 0x100, 4, col)));
        sim.post(cache, 100_000, MemMsg::Req(MemReq::read(2, 0x100, 4, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps[0].data.as_deref(), Some(&[42u8, 43, 44, 45][..]));
        assert_eq!(c.resps[1].data.as_deref(), Some(&[42u8, 43, 44, 45][..]));
        let miss_t = c.resp_ticks[0];
        let hit_t = c.resp_ticks[1] - 100_000;
        assert!(
            hit_t < miss_t,
            "hit {hit_t} must be faster than miss {miss_t}"
        );
        assert_eq!(hit_t, 2_000);
        let l1 = sim.component_as::<Cache>(cache).unwrap();
        assert_eq!((l1.hits(), l1.misses()), (1, 1));
    }

    #[test]
    fn write_back_on_eviction() {
        // Direct-mapped 2-line cache: two conflicting dirty writes force a
        // write-back that lands in DRAM.
        let cfg = CacheConfig {
            size_bytes: 128,
            assoc: 1,
            line_bytes: 64,
            ..CacheConfig::default()
        };
        let (mut sim, dram, cache, col) = system(cfg);
        sim.post(
            cache,
            0,
            MemMsg::Req(MemReq::write(1, 0x000, vec![0xAA; 4], col)),
        );
        // Same set (stride = line * num_sets = 128).
        sim.post(
            cache,
            200_000,
            MemMsg::Req(MemReq::write(2, 0x080, vec![0xBB; 4], col)),
        );
        sim.post(cache, 400_000, MemMsg::Req(MemReq::read(3, 0x100, 4, col))); // evicts 0x000? no: set 0 again at 0x100
        sim.run();
        let d = sim.component_as::<Dram>(dram).unwrap();
        assert_eq!(d.peek(0x000, 4), &[0xAA, 0xAA, 0xAA, 0xAA]);
        let l1 = sim.component_as::<Cache>(cache).unwrap();
        assert!(l1.wb_count >= 1);
    }

    #[test]
    fn coalesces_misses_to_same_line() {
        let (mut sim, _dram, cache, col) = system(CacheConfig::default());
        for i in 0..8 {
            sim.post(
                cache,
                0,
                MemMsg::Req(MemReq::read(i, 0x200 + i * 4, 4, col)),
            );
        }
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps.len(), 8);
        let l1 = sim.component_as::<Cache>(cache).unwrap();
        // All 8 fall in one 64B line: 1 fill from memory.
        assert_eq!(l1.misses(), 8);
        let stats = l1.stats();
        let _ = stats;
    }

    #[test]
    fn mshr_overflow_retries() {
        let cfg = CacheConfig {
            mshrs: 1,
            ..CacheConfig::default()
        };
        let (mut sim, _dram, cache, col) = system(cfg);
        // Two misses to different lines with only one MSHR.
        sim.post(cache, 0, MemMsg::Req(MemReq::read(1, 0x000, 4, col)));
        sim.post(cache, 0, MemMsg::Req(MemReq::read(2, 0x400, 4, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps.len(), 2);
    }

    #[test]
    fn nonsense_cache_configs_are_rejected() {
        for (cfg, field) in [
            (
                CacheConfig {
                    assoc: 0,
                    ..CacheConfig::default()
                },
                "assoc",
            ),
            (
                CacheConfig {
                    line_bytes: 0,
                    ..CacheConfig::default()
                },
                "line_bytes",
            ),
            (
                CacheConfig {
                    mshrs: 0,
                    ..CacheConfig::default()
                },
                "mshrs",
            ),
        ] {
            match Cache::try_new("l1", cfg, CompId::from_raw(0)) {
                Err(SimError::Config(c)) => assert_eq!(c.field, field),
                other => panic!("expected config error for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn armed_fill_bitflips_serve_corrupted_lines() {
        let (mut sim, dram, cache, col) = system(CacheConfig::default());
        sim.component_as_mut::<Dram>(dram)
            .unwrap()
            .poke(0x100, &[0, 0, 0, 0]);
        sim.component_as_mut::<Cache>(cache)
            .unwrap()
            .set_fault(&salam_fault::FaultPlan {
                mem_bitflip_rate: 1.0,
                ..salam_fault::FaultPlan::seeded(5)
            });
        // Two reads of the same line: both see the same corrupted fill.
        sim.post(cache, 0, MemMsg::Req(MemReq::read(1, 0x100, 4, col)));
        sim.post(cache, 100_000, MemMsg::Req(MemReq::read(2, 0x100, 4, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps[0].data, c.resps[1].data, "one upset, all waiters");
        let l1 = sim.component_as::<Cache>(cache).unwrap();
        let flips = l1
            .stats()
            .into_iter()
            .find(|(k, _)| k == "fault_bitflips")
            .unwrap()
            .1;
        assert_eq!(flips, 1.0, "hit on the installed line injects nothing new");
    }

    #[test]
    fn larger_cache_hits_more() {
        // Stream over 8 kB twice: a 16 kB cache keeps everything, a 512 B
        // cache thrashes — the Table II mechanism.
        let run = |size: u64| {
            let cfg = CacheConfig::default().with_size(size);
            let (mut sim, _dram, cache, col) = system(cfg);
            let mut t = 0;
            for pass in 0..2 {
                for i in 0..128u64 {
                    let id = pass * 1000 + i;
                    sim.post(cache, t, MemMsg::Req(MemReq::read(id, i * 64, 4, col)));
                    t += 100_000;
                }
            }
            sim.run();
            let l1 = sim.component_as::<Cache>(cache).unwrap();
            l1.hits()
        };
        assert!(run(16 * 1024) > run(512));
    }
}
