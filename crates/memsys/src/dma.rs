//! Block and stream DMA engines.

use std::collections::{HashMap, VecDeque};

use salam_fault::{FaultPlan, SimError};
use salam_obs::{SharedTrace, SpanId, TrackId};
use sim_core::{ClockDomain, CompId, Component, Ctx};

use crate::fault::FaultState;
use crate::msg::{MemMsg, MemReq};

/// A DMA command.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaCmd {
    /// Caller-chosen id echoed in [`MemMsg::DmaDone`].
    pub id: u64,
    /// Source base address (memory side).
    pub src: u64,
    /// Destination base address (memory side; ignored by stream readers).
    pub dst: u64,
    /// Transfer length in bytes.
    pub len: u64,
    /// Component notified on completion.
    pub notify: CompId,
    /// Optional interrupt line raised at `notify` on completion.
    pub irq_line: Option<u32>,
}

impl DmaCmd {
    /// A plain memory-to-memory command.
    pub fn new(id: u64, src: u64, dst: u64, len: u64, notify: CompId) -> Self {
        DmaCmd {
            id,
            src,
            dst,
            len,
            notify,
            irq_line: None,
        }
    }

    /// Adds a completion interrupt on `line`.
    pub fn with_irq(mut self, line: u32) -> Self {
        self.irq_line = Some(line);
        self
    }
}

#[derive(Debug)]
struct ActiveXfer {
    cmd: DmaCmd,
    read_cursor: u64,
    written: u64,
    inflight: u32,
    span: SpanId,
}

/// A block DMA: memory-to-memory bursts through one memory port.
///
/// The "burst width" knob corresponds to the cluster-DMA burst tuning the
/// paper uses to match the FPGA data mover in its system validation
/// (Table III).
#[derive(Debug)]
pub struct BlockDma {
    name: String,
    port: CompId,
    burst_bytes: u32,
    max_inflight: u32,
    clock: ClockDomain,
    queue: VecDeque<DmaCmd>,
    active: Option<ActiveXfer>,
    reads: HashMap<u64, u64>,  // req id -> src offset
    writes: HashMap<u64, u64>, // req id -> bytes
    next_id: u64,
    bytes_moved: u64,
    xfers: u64,
    queued_while_busy: u64,
    trace: SharedTrace,
    track: Option<TrackId>,
    fault: Option<FaultState>,
}

impl BlockDma {
    /// Creates a DMA pushing requests into `port` (usually a crossbar).
    /// Degenerate burst/in-flight knobs are clamped to 1 for backwards
    /// compatibility; use [`BlockDma::try_new`] to reject them instead.
    pub fn new(name: &str, port: CompId, burst_bytes: u32, max_inflight: u32) -> Self {
        match Self::try_new(name, port, burst_bytes.max(1), max_inflight.max(1)) {
            Ok(dma) => dma,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`BlockDma::new`]: rejects zero burst size or in-flight
    /// window (either would make [`MemMsg::DmaStart`] hang forever, issuing
    /// nothing while the transfer never completes).
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn try_new(
        name: &str,
        port: CompId,
        burst_bytes: u32,
        max_inflight: u32,
    ) -> Result<Self, SimError> {
        let bad = |field: &str, detail: &str| Err(SimError::config("dma", field, detail));
        if burst_bytes == 0 {
            return bad("burst_bytes", "must be nonzero");
        }
        if max_inflight == 0 {
            return bad("max_inflight", "must be nonzero");
        }
        Ok(BlockDma {
            name: name.to_string(),
            port,
            burst_bytes,
            max_inflight,
            clock: ClockDomain::default(),
            queue: VecDeque::new(),
            active: None,
            reads: HashMap::new(),
            writes: HashMap::new(),
            next_id: 1,
            bytes_moved: 0,
            xfers: 0,
            queued_while_busy: 0,
            trace: SharedTrace::disabled(),
            track: None,
            fault: None,
        })
    }

    /// Attaches a trace sink; each block transfer becomes one span on a
    /// `dma.{name}` track.
    pub fn set_trace(&mut self, trace: SharedTrace) {
        self.track = trace
            .is_enabled()
            .then(|| trace.track(&format!("dma.{}", self.name)));
        self.trace = trace;
    }

    /// Arms fault injection: burst issues take seeded extra stall cycles at
    /// the plan's `dma_stall_rate`, modeling descriptor-fetch hiccups and
    /// fabric backpressure storms.
    pub fn set_fault(&mut self, plan: &FaultPlan) {
        self.fault = Some(FaultState::new(plan, &format!("dma.{}", self.name)));
    }

    /// Total bytes copied.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        if self.active.is_none() {
            let Some(cmd) = self.queue.pop_front() else {
                return;
            };
            if cmd.len == 0 {
                finish(&cmd, ctx);
                self.xfers += 1;
                return self.pump(ctx);
            }
            let span = match self.track {
                Some(t) => self.trace.begin_span(
                    t,
                    &format!("xfer {:#x} -> {:#x} ({} B)", cmd.src, cmd.dst, cmd.len),
                    ctx.now(),
                ),
                None => SpanId::INVALID,
            };
            self.active = Some(ActiveXfer {
                cmd,
                read_cursor: 0,
                written: 0,
                inflight: 0,
                span,
            });
        }
        let me = ctx.self_id();
        let Some(a) = self.active.as_mut() else {
            return;
        };
        while a.inflight < self.max_inflight && a.read_cursor < a.cmd.len {
            let remaining = a.cmd.len - a.read_cursor;
            let size = remaining.min(self.burst_bytes as u64) as u32;
            let id = self.next_id;
            self.next_id += 1;
            self.reads.insert(id, a.read_cursor);
            a.inflight += 1;
            let req = MemReq::read(id, a.cmd.src + a.read_cursor, size, me);
            a.read_cursor += size as u64;
            let mut stall = 0;
            if let Some(f) = self.fault.as_mut() {
                stall = f.maybe_stall();
                if stall > 0 {
                    if let Some(t) = self.track {
                        self.trace.instant(t, "fault:dma_stall", ctx.now());
                    }
                }
            }
            ctx.send(self.port, self.clock.cycles(1 + stall), MemMsg::Req(req));
        }
    }
}

fn finish(cmd: &DmaCmd, ctx: &mut Ctx<'_, MemMsg>) {
    ctx.send(cmd.notify, 0, MemMsg::DmaDone { id: cmd.id });
    if let Some(line) = cmd.irq_line {
        ctx.send(cmd.notify, 0, MemMsg::Irq { line, raised: true });
    }
}

impl Component<MemMsg> for BlockDma {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::DmaStart(cmd) => {
                if self.active.is_some() {
                    // The engine serializes transfers: attribute the wait to
                    // the DMA itself, not the fabric behind it.
                    self.queued_while_busy += 1;
                    if let Some(t) = self.track {
                        self.trace.instant(t, "reject:busy", ctx.now());
                    }
                }
                self.queue.push_back(cmd);
                self.pump(ctx);
            }
            MemMsg::Resp(resp) => {
                let me = ctx.self_id();
                if let Some(off) = self.reads.remove(&resp.id) {
                    let a = self.active.as_mut().expect("read resp without transfer");
                    let data = resp.data.expect("dma read returns data");
                    let id = self.next_id;
                    self.next_id += 1;
                    self.writes.insert(id, data.len() as u64);
                    let req = MemReq::write(id, a.cmd.dst + off, data, me);
                    ctx.send(self.port, self.clock.cycles(1), MemMsg::Req(req));
                } else if let Some(n) = self.writes.remove(&resp.id) {
                    let a = self.active.as_mut().expect("write resp without transfer");
                    a.written += n;
                    a.inflight -= 1;
                    self.bytes_moved += n;
                    if a.written >= a.cmd.len {
                        let done = self.active.take().expect("active transfer");
                        self.trace.end_span(done.span, ctx.now());
                        self.xfers += 1;
                        finish(&done.cmd, ctx);
                    }
                    self.pump(ctx);
                } else {
                    panic!("{}: unexpected response id {}", self.name, resp.id);
                }
            }
            other => debug_assert!(false, "{}: unexpected message {other:?}", self.name),
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let mut v = vec![
            ("bytes_moved".into(), self.bytes_moved as f64),
            ("transfers".into(), self.xfers as f64),
            ("queued_while_busy".into(), self.queued_while_busy as f64),
        ];
        if let Some(f) = &self.fault {
            v.push(("fault_stalls".into(), f.stalls as f64));
        }
        v
    }
}

/// Configuration for a [`StreamDma`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDmaConfig {
    /// Memory port (crossbar or memory).
    pub port: CompId,
    /// Beat size in bytes.
    pub beat_bytes: u32,
    /// For readers: the stream buffer to push into, plus its capacity as the
    /// initial credit grant.
    pub stream_target: Option<CompId>,
    /// Initial credits (reader mode); usually the target FIFO's capacity.
    pub initial_credits: u32,
}

#[derive(Debug)]
enum StreamState {
    Idle,
    Reading {
        cmd: DmaCmd,
        cursor: u64,
        pushed: u64,
        pending: VecDeque<Vec<u8>>,
    },
    Writing {
        cmd: DmaCmd,
        received: u64,
        written: u64,
        saw_last: bool,
    },
}

/// A stream DMA: bridges memory and AXI-Stream-like beats.
///
/// * **Reader mode** (with a `stream_target`): a [`MemMsg::DmaStart`] makes it
///   read `len` bytes from `src` and push them as beats, respecting credits.
/// * **Writer mode**: a [`MemMsg::DmaStart`] arms it to receive pushed beats
///   and write them to `dst` sequentially, completing after `len` bytes or a
///   `last` beat.
#[derive(Debug)]
pub struct StreamDma {
    name: String,
    cfg: StreamDmaConfig,
    credits: u32,
    state: StreamState,
    reads: HashMap<u64, ()>,
    writes: HashMap<u64, u64>,
    next_id: u64,
    beats: u64,
}

impl StreamDma {
    /// Creates a stream DMA.
    pub fn new(name: &str, cfg: StreamDmaConfig) -> Self {
        StreamDma {
            name: name.to_string(),
            credits: cfg.initial_credits,
            cfg,
            state: StreamState::Idle,
            reads: HashMap::new(),
            writes: HashMap::new(),
            next_id: 1,
            beats: 0,
        }
    }

    /// Beats moved so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }

    fn pump_reader(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        let me = ctx.self_id();
        let target = match self.cfg.stream_target {
            Some(t) => t,
            None => return,
        };
        let StreamState::Reading {
            cmd,
            cursor,
            pushed,
            pending,
        } = &mut self.state
        else {
            return;
        };
        // Push buffered beats while credits allow.
        while self.credits > 0 && !pending.is_empty() {
            let data = pending.pop_front().expect("nonempty");
            self.credits -= 1;
            *pushed += data.len() as u64;
            self.beats += 1;
            let last = *pushed >= cmd.len;
            ctx.send(target, 0, MemMsg::StreamPush { data, last });
            if last {
                let cmd = cmd.clone();
                self.state = StreamState::Idle;
                finish(&cmd, ctx);
                return;
            }
        }
        // Keep a small window of memory reads in flight.
        while self.reads.len() < 4 && *cursor < cmd.len {
            let size = (cmd.len - *cursor).min(self.cfg.beat_bytes as u64) as u32;
            let id = self.next_id;
            self.next_id += 1;
            self.reads.insert(id, ());
            let req = MemReq::read(id, cmd.src + *cursor, size, me);
            *cursor += size as u64;
            ctx.send(self.cfg.port, 0, MemMsg::Req(req));
        }
    }
}

impl Component<MemMsg> for StreamDma {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::DmaStart(cmd) => {
                if self.cfg.stream_target.is_some() {
                    self.state = StreamState::Reading {
                        cmd,
                        cursor: 0,
                        pushed: 0,
                        pending: VecDeque::new(),
                    };
                    self.pump_reader(ctx);
                } else {
                    self.state = StreamState::Writing {
                        cmd,
                        received: 0,
                        written: 0,
                        saw_last: false,
                    };
                }
            }
            MemMsg::StreamCredit { n } => {
                self.credits += n;
                self.pump_reader(ctx);
            }
            MemMsg::Resp(resp) => {
                if self.reads.remove(&resp.id).is_some() {
                    let data = resp.data.expect("stream read returns data");
                    if let StreamState::Reading { pending, .. } = &mut self.state {
                        pending.push_back(data);
                    }
                    self.pump_reader(ctx);
                } else if let Some(n) = self.writes.remove(&resp.id) {
                    if let StreamState::Writing {
                        cmd,
                        written,
                        received,
                        saw_last,
                    } = &mut self.state
                    {
                        *written += n;
                        let done = *written >= cmd.len || (*saw_last && written == received);
                        if done {
                            let cmd = cmd.clone();
                            self.state = StreamState::Idle;
                            finish(&cmd, ctx);
                        }
                    }
                } else {
                    panic!("{}: unexpected response id {}", self.name, resp.id);
                }
            }
            MemMsg::StreamPush { data, last } => {
                let me = ctx.self_id();
                let producer = ctx.sender();
                let StreamState::Writing {
                    cmd,
                    received,
                    saw_last,
                    ..
                } = &mut self.state
                else {
                    panic!("{}: stream beat while not armed for writing", self.name);
                };
                let id = self.next_id;
                self.next_id += 1;
                self.writes.insert(id, data.len() as u64);
                let req = MemReq::write(id, cmd.dst + *received, data, me);
                *received += req.size as u64;
                *saw_last |= last;
                self.beats += 1;
                ctx.send(self.cfg.port, 0, MemMsg::Req(req));
                // Immediately re-credit the producer: memory is our sink.
                ctx.send(producer, 0, MemMsg::StreamCredit { n: 1 });
            }
            other => debug_assert!(false, "{}: unexpected message {other:?}", self.name),
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![("beats".into(), self.beats as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrMap;
    use crate::dram::{Dram, DramConfig};
    use crate::spm::{Scratchpad, ScratchpadConfig};
    use crate::test_util::Collector;
    use crate::xbar::Xbar;
    use sim_core::Simulation;

    /// DRAM + SPM behind a crossbar, with a block DMA.
    fn dma_system(burst: u32) -> (Simulation<MemMsg>, CompId, CompId, CompId, CompId) {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new(
            "dram",
            DramConfig::default(),
            0x8000_0000,
            1 << 16,
        ));
        let spm = sim.add_component(Scratchpad::new(
            "spm",
            ScratchpadConfig::default().with_ports(4, 4),
            0x1000_0000,
            1 << 16,
        ));
        let mut map = AddrMap::new();
        map.add(0x1000_0000, 0x1001_0000, spm);
        map.add(0x8000_0000, 0x8001_0000, dram);
        let xbar = sim.add_component(Xbar::new("xbar", map, 1, 8));
        let dma = sim.add_component(BlockDma::new("dma", xbar, burst, 4));
        (sim, dram, spm, xbar, dma)
    }

    #[test]
    fn copies_dram_to_spm() {
        let (mut sim, dram, spm, _xbar, dma) = dma_system(64);
        let data: Vec<u8> = (0..=255).collect();
        sim.component_as_mut::<Dram>(dram)
            .unwrap()
            .poke(0x8000_0000, &data);
        let col = sim.add_component(Collector::new());
        sim.post(
            dma,
            0,
            MemMsg::DmaStart(DmaCmd::new(9, 0x8000_0000, 0x1000_0000, 256, col).with_irq(0)),
        );
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.dma_dones, vec![(9, c.dma_dones[0].1)]);
        assert_eq!(c.irqs.len(), 1);
        let s = sim.component_as::<Scratchpad>(spm).unwrap();
        assert_eq!(s.peek(0x1000_0000, 256), &data[..]);
        let d = sim.component_as::<BlockDma>(dma).unwrap();
        assert_eq!(d.bytes_moved(), 256);
    }

    #[test]
    fn wider_bursts_finish_sooner() {
        let run = |burst: u32| {
            let (mut sim, dram, _spm, _xbar, dma) = dma_system(burst);
            sim.component_as_mut::<Dram>(dram)
                .unwrap()
                .poke(0x8000_0000, &[7; 4096]);
            let col = sim.add_component(Collector::new());
            sim.post(
                dma,
                0,
                MemMsg::DmaStart(DmaCmd::new(1, 0x8000_0000, 0x1000_0000, 4096, col)),
            );
            sim.run();
            sim.component_as::<Collector>(col).unwrap().dma_dones[0].1
        };
        assert!(run(256) < run(16), "large bursts amortize row activations");
    }

    #[test]
    fn zero_length_completes_immediately() {
        let (mut sim, _dram, _spm, _xbar, dma) = dma_system(64);
        let col = sim.add_component(Collector::new());
        sim.post(
            dma,
            0,
            MemMsg::DmaStart(DmaCmd::new(3, 0x8000_0000, 0x1000_0000, 0, col)),
        );
        sim.run();
        assert_eq!(
            sim.component_as::<Collector>(col).unwrap().dma_dones.len(),
            1
        );
    }

    #[test]
    fn zero_burst_and_inflight_are_rejected() {
        let port = CompId::from_raw(0);
        assert!(BlockDma::try_new("d", port, 0, 4).is_err());
        assert!(BlockDma::try_new("d", port, 64, 0).is_err());
        assert!(BlockDma::try_new("d", port, 64, 4).is_ok());
    }

    #[test]
    fn armed_stalls_slow_transfers_deterministically() {
        let run = |plan: Option<salam_fault::FaultPlan>| {
            let (mut sim, dram, _spm, _xbar, dma) = dma_system(64);
            sim.component_as_mut::<Dram>(dram)
                .unwrap()
                .poke(0x8000_0000, &[3; 1024]);
            if let Some(p) = plan {
                sim.component_as_mut::<BlockDma>(dma).unwrap().set_fault(&p);
            }
            let col = sim.add_component(Collector::new());
            sim.post(
                dma,
                0,
                MemMsg::DmaStart(DmaCmd::new(1, 0x8000_0000, 0x1000_0000, 1024, col)),
            );
            sim.run();
            sim.component_as::<Collector>(col).unwrap().dma_dones[0].1
        };
        let clean = run(None);
        let stormy = salam_fault::FaultPlan {
            dma_stall_rate: 1.0,
            dma_stall_cycles: 50,
            ..salam_fault::FaultPlan::seeded(2)
        };
        let slow = run(Some(stormy));
        assert!(slow > clean, "stalls must cost time ({slow} vs {clean})");
        assert_eq!(slow, run(Some(stormy)), "same seed, same schedule");
        let zero = run(Some(salam_fault::FaultPlan::seeded(2)));
        assert_eq!(zero, clean, "zero-rate plan is free");
    }

    #[test]
    fn queued_commands_run_in_order() {
        let (mut sim, dram, spm, _xbar, dma) = dma_system(64);
        sim.component_as_mut::<Dram>(dram)
            .unwrap()
            .poke(0x8000_0000, &[1; 64]);
        sim.component_as_mut::<Dram>(dram)
            .unwrap()
            .poke(0x8000_0040, &[2; 64]);
        let col = sim.add_component(Collector::new());
        sim.post(
            dma,
            0,
            MemMsg::DmaStart(DmaCmd::new(1, 0x8000_0000, 0x1000_0000, 64, col)),
        );
        sim.post(
            dma,
            0,
            MemMsg::DmaStart(DmaCmd::new(2, 0x8000_0040, 0x1000_0040, 64, col)),
        );
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.dma_dones.len(), 2);
        assert_eq!(c.dma_dones[0].0, 1);
        assert_eq!(c.dma_dones[1].0, 2);
        let s = sim.component_as::<Scratchpad>(spm).unwrap();
        assert_eq!(s.peek(0x1000_0000, 1)[0], 1);
        assert_eq!(s.peek(0x1000_0040, 1)[0], 2);
    }
}
