//! Address-range routing.

use sim_core::CompId;

/// Maps address ranges to serving components, as a gem5 address map does for
/// crossbar routing.
#[derive(Debug, Clone, Default)]
pub struct AddrMap {
    ranges: Vec<(u64, u64, CompId)>, // [start, end)
}

impl AddrMap {
    /// An empty map.
    pub fn new() -> Self {
        AddrMap::default()
    }

    /// Adds the range `[start, end)` served by `dst`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range or overlap with an existing range.
    pub fn add(&mut self, start: u64, end: u64, dst: CompId) {
        assert!(start < end, "empty address range");
        for &(s, e, _) in &self.ranges {
            assert!(
                end <= s || start >= e,
                "address ranges overlap: [{start:#x},{end:#x}) vs [{s:#x},{e:#x})"
            );
        }
        self.ranges.push((start, end, dst));
    }

    /// The component serving `addr`, if any.
    pub fn route(&self, addr: u64) -> Option<CompId> {
        self.ranges
            .iter()
            .find(|&&(s, e, _)| addr >= s && addr < e)
            .map(|&(_, _, d)| d)
    }

    /// Whether `[addr, addr+size)` fits entirely in one range.
    pub fn contains_span(&self, addr: u64, size: u32) -> bool {
        self.ranges
            .iter()
            .any(|&(s, e, _)| addr >= s && addr + size as u64 <= e)
    }

    /// All registered ranges.
    pub fn ranges(&self) -> &[(u64, u64, CompId)] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_range() {
        let a = CompId::from_raw(1);
        let b = CompId::from_raw(2);
        let mut m = AddrMap::new();
        m.add(0x0, 0x100, a);
        m.add(0x100, 0x200, b);
        assert_eq!(m.route(0x0), Some(a));
        assert_eq!(m.route(0xFF), Some(a));
        assert_eq!(m.route(0x100), Some(b));
        assert_eq!(m.route(0x200), None);
        assert!(m.contains_span(0xF0, 16));
        assert!(!m.contains_span(0xF8, 16), "span crosses a range boundary");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlap_rejected() {
        let a = CompId::from_raw(1);
        let mut m = AddrMap::new();
        m.add(0x0, 0x100, a);
        m.add(0x80, 0x180, a);
    }
}
