//! AXI-Stream-like FIFO buffers with credit-based handshake.

use std::collections::VecDeque;

use sim_core::{ClockDomain, CompId, Component, Ctx};

use crate::msg::{MemMsg, MemOp, MemReq, MemResp};

/// Configuration for a [`StreamBuffer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamBufferConfig {
    /// Capacity in beats.
    pub capacity_beats: u32,
    /// Beat size in bytes (reads pop exactly one beat).
    pub beat_bytes: u32,
    /// Pop/push latency in cycles.
    pub latency_cycles: u64,
    /// Buffer clock.
    pub clock: ClockDomain,
}

impl Default for StreamBufferConfig {
    /// 16-beat, 8-byte FIFO with 1-cycle access at 1 GHz.
    fn default() -> Self {
        StreamBufferConfig {
            capacity_beats: 16,
            beat_bytes: 8,
            latency_cycles: 1,
            clock: ClockDomain::default(),
        }
    }
}

/// A FIFO connecting two endpoints with two-way backpressure — the stream
/// interface the paper uses for direct accelerator-to-accelerator pipelines
/// (Fig. 16c).
///
/// Two producer styles are supported:
/// * **push style** ([`MemMsg::StreamPush`]): each accepted beat is matched
///   by a [`MemMsg::StreamCredit`] returned to the producer when the beat is
///   consumed (AXI-Stream `tready`).
/// * **addressed style** ([`MemMsg::Req`] writes at the buffer's address):
///   the write response doubles as the handshake; it is withheld while the
///   FIFO is full, so a blocking producer naturally stalls.
///
/// Consumers issue [`MemMsg::Req`] reads; a read pops one beat and its
/// response is withheld until data is available.
#[derive(Debug)]
pub struct StreamBuffer {
    name: String,
    cfg: StreamBufferConfig,
    // (payload, last, push-producer to credit when the beat is consumed)
    fifo: VecDeque<(Vec<u8>, bool, Option<CompId>)>,
    waiting_reads: VecDeque<MemReq>,
    waiting_writes: VecDeque<MemReq>,
    beats_in: u64,
    beats_out: u64,
    full_stalls: u64,
    empty_stalls: u64,
    max_depth: usize,
}

impl StreamBuffer {
    /// Creates an empty buffer.
    pub fn new(name: &str, cfg: StreamBufferConfig) -> Self {
        StreamBuffer {
            name: name.to_string(),
            cfg,
            fifo: VecDeque::new(),
            waiting_reads: VecDeque::new(),
            waiting_writes: VecDeque::new(),
            beats_in: 0,
            beats_out: 0,
            full_stalls: 0,
            empty_stalls: 0,
            max_depth: 0,
        }
    }

    /// Beats accepted so far.
    pub fn beats_in(&self) -> u64 {
        self.beats_in
    }

    /// Beats delivered so far.
    pub fn beats_out(&self) -> u64 {
        self.beats_out
    }

    fn latency(&self) -> sim_core::Tick {
        self.cfg.clock.cycles(self.cfg.latency_cycles)
    }

    fn pop_to_reader(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        while !self.waiting_reads.is_empty() && !self.fifo.is_empty() {
            let req = self.waiting_reads.pop_front().expect("nonempty");
            let (data, _last, producer) = self.fifo.pop_front().expect("nonempty");
            self.beats_out += 1;
            let resp = MemResp {
                id: req.id,
                addr: req.addr,
                op: MemOp::Read,
                data: Some(data),
            };
            let lat = self.latency();
            ctx.send(req.reply_to, lat, MemMsg::Resp(resp));
            // A slot freed: replenish the credit of the producer whose beat
            // was consumed, or admit a blocked addressed write.
            if let Some(w) = self.waiting_writes.pop_front() {
                self.accept_write(w, ctx);
            } else if let Some(p) = producer {
                ctx.send(p, 0, MemMsg::StreamCredit { n: 1 });
            }
        }
    }

    fn accept_write(&mut self, req: MemReq, ctx: &mut Ctx<'_, MemMsg>) {
        let data = req.data.clone().unwrap_or_default();
        // Addressed writers are flow-controlled by the withheld response,
        // not by credits.
        self.fifo.push_back((data, false, None));
        self.beats_in += 1;
        self.max_depth = self.max_depth.max(self.fifo.len());
        let resp = MemResp {
            id: req.id,
            addr: req.addr,
            op: MemOp::Write,
            data: None,
        };
        let lat = self.latency();
        ctx.send(req.reply_to, lat, MemMsg::Resp(resp));
        self.pop_to_reader(ctx);
    }
}

impl Component<MemMsg> for StreamBuffer {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::StreamPush { data, last } => {
                // Push-style producers are pre-credited up to capacity, so
                // accepting unconditionally is safe; a violation is a bug.
                assert!(
                    self.fifo.len() < self.cfg.capacity_beats as usize,
                    "{}: push into full FIFO (credit protocol violated)",
                    self.name
                );
                self.fifo.push_back((data, last, Some(ctx.sender())));
                self.beats_in += 1;
                self.max_depth = self.max_depth.max(self.fifo.len());
                self.pop_to_reader(ctx);
            }
            MemMsg::Req(req) => match req.op {
                MemOp::Read => {
                    if self.fifo.is_empty() {
                        self.empty_stalls += 1;
                    }
                    self.waiting_reads.push_back(req);
                    self.pop_to_reader(ctx);
                }
                MemOp::Write => {
                    if self.fifo.len() >= self.cfg.capacity_beats as usize {
                        self.full_stalls += 1;
                        self.waiting_writes.push_back(req);
                    } else {
                        self.accept_write(req, ctx);
                    }
                }
            },
            // Credits can echo back when a test posts pushes without a real
            // producer component; a buffer never consumes credits itself.
            MemMsg::StreamCredit { .. } => {}
            other => debug_assert!(false, "{}: unexpected message {other:?}", self.name),
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("beats_in".into(), self.beats_in as f64),
            ("beats_out".into(), self.beats_out as f64),
            ("full_stalls".into(), self.full_stalls as f64),
            ("empty_stalls".into(), self.empty_stalls as f64),
            ("max_depth".into(), self.max_depth as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::Collector;
    use sim_core::Simulation;

    #[test]
    fn read_blocks_until_data_arrives() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let buf = sim.add_component(StreamBuffer::new("fifo", StreamBufferConfig::default()));
        let col = sim.add_component(Collector::new());
        // Read first, data pushed later.
        sim.post(buf, 0, MemMsg::Req(MemReq::read(1, 0x0, 8, col)));
        sim.post(
            buf,
            50_000,
            MemMsg::StreamPush {
                data: vec![1, 2, 3, 4, 5, 6, 7, 8],
                last: false,
            },
        );
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps.len(), 1);
        assert!(c.resp_ticks[0] >= 50_000);
        assert_eq!(c.resps[0].data.as_deref().map(|d| d.len()), Some(8));
    }

    #[test]
    fn write_blocks_when_full() {
        let cfg = StreamBufferConfig {
            capacity_beats: 2,
            ..Default::default()
        };
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let buf = sim.add_component(StreamBuffer::new("fifo", cfg));
        let col = sim.add_component(Collector::new());
        for i in 0..3 {
            sim.post(
                buf,
                0,
                MemMsg::Req(MemReq::write(i, 0x0, vec![i as u8; 8], col)),
            );
        }
        // Third write's ack only arrives after a pop frees a slot.
        sim.post(buf, 100_000, MemMsg::Req(MemReq::read(10, 0x0, 8, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps.len(), 4);
        let third_ack = c
            .resps
            .iter()
            .zip(&c.resp_ticks)
            .find(|(r, _)| r.id == 2)
            .unwrap();
        assert!(
            *third_ack.1 >= 100_000,
            "blocked write acked only after pop"
        );
    }

    #[test]
    fn fifo_order_preserved() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let buf = sim.add_component(StreamBuffer::new("fifo", StreamBufferConfig::default()));
        let col = sim.add_component(Collector::new());
        for i in 0..4u8 {
            sim.post(
                buf,
                0,
                MemMsg::StreamPush {
                    data: vec![i; 8],
                    last: i == 3,
                },
            );
        }
        for i in 0..4 {
            sim.post(buf, 10_000, MemMsg::Req(MemReq::read(i, 0x0, 8, col)));
        }
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        let seq: Vec<u8> = c
            .resps
            .iter()
            .map(|r| r.data.as_ref().unwrap()[0])
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 3]);
    }

    #[test]
    fn credits_flow_back_to_push_producer() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let buf = sim.add_component(StreamBuffer::new("fifo", StreamBufferConfig::default()));
        let producer = sim.add_component(Collector::new());
        let consumer = sim.add_component(Collector::new());
        // Producer pushes one beat (sender is recorded), consumer pops it.
        sim.post_from(
            producer,
            buf,
            0,
            MemMsg::StreamPush {
                data: vec![9; 8],
                last: false,
            },
        );
        sim.post(buf, 10_000, MemMsg::Req(MemReq::read(1, 0, 8, consumer)));
        sim.run();
        // Producer received one credit back. Credits arrive as StreamCredit,
        // which Collector ignores silently — check via stats instead.
        let b = sim.component_as::<StreamBuffer>(buf).unwrap();
        assert_eq!(b.beats_in(), 1);
        assert_eq!(b.beats_out(), 1);
    }
}
