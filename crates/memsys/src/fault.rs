//! Per-component fault-injection hooks.
//!
//! Each memory component owns an optional [`FaultState`] — its slice of a
//! campaign-wide [`FaultPlan`]. The RNG streams are decorrelated per site
//! (component name), so whether faults fire in one component never depends
//! on how another component's requests interleave with it: the same seed
//! replays the same schedule regardless of system composition.

use salam_fault::{FaultPlan, SiteRng};

/// Decorrelated RNG streams for data flips and response delays, plus local
/// counters surfaced through `Component::stats`.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    flip: SiteRng,
    delay: SiteRng,
    pub bitflips: u64,
    pub delays: u64,
    pub stalls: u64,
}

impl FaultState {
    pub fn new(plan: &FaultPlan, site: &str) -> Self {
        FaultState {
            plan: *plan,
            flip: plan.site_rng(&format!("{site}.flip")),
            delay: plan.site_rng(&format!("{site}.delay")),
            bitflips: 0,
            delays: 0,
            stalls: 0,
        }
    }

    /// Flips one bit of one byte in `data` at the plan's line-flip rate.
    /// Returns `true` when a flip was injected.
    pub fn maybe_flip(&mut self, data: &mut [u8]) -> bool {
        if data.is_empty() || !self.flip.roll(self.plan.mem_bitflip_rate) {
            return false;
        }
        let i = self.flip.index(data.len());
        data[i] ^= 1 << self.flip.bit(8);
        self.bitflips += 1;
        true
    }

    /// Extra response-delay cycles at the plan's delay rate.
    pub fn maybe_delay(&mut self) -> u64 {
        if self.plan.mem_delay_cycles > 0 && self.delay.roll(self.plan.mem_delay_rate) {
            self.delays += 1;
            self.plan.mem_delay_cycles
        } else {
            0
        }
    }

    /// Extra DMA stall cycles at the plan's stall rate.
    pub fn maybe_stall(&mut self) -> u64 {
        if self.plan.dma_stall_cycles > 0 && self.delay.roll(self.plan.dma_stall_rate) {
            self.stalls += 1;
            self.plan.dma_stall_cycles
        } else {
            0
        }
    }
}
