//! Banked DRAM with row-buffer timing.

use std::collections::VecDeque;

use salam_fault::{FaultPlan, SimError};
use sim_core::{ClockDomain, Component, Ctx, Frequency, Tick};

use crate::fault::FaultState;
use crate::msg::{MemMsg, MemOp, MemReq, MemResp};

/// Configuration for a [`Dram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Cycles for a row-buffer hit (CAS).
    pub row_hit_cycles: u64,
    /// Cycles for a row-buffer miss (precharge + activate + CAS).
    pub row_miss_cycles: u64,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Number of banks.
    pub banks: u32,
    /// Data bus width in bytes per cycle (serializes large bursts).
    pub bus_bytes_per_cycle: u32,
    /// Memory clock.
    pub clock: ClockDomain,
}

impl Default for DramConfig {
    /// A DDR-class device: 12-cycle hits, 38-cycle misses, 2 kB rows,
    /// 8 banks, 8 B/cycle at 1 GHz (≈8 GB/s).
    fn default() -> Self {
        DramConfig {
            row_hit_cycles: 12,
            row_miss_cycles: 38,
            row_bytes: 2048,
            banks: 8,
            bus_bytes_per_cycle: 8,
            clock: ClockDomain::new(Frequency::ghz(1)),
        }
    }
}

/// Main memory: open-row policy per bank plus a shared data bus.
///
/// Requests to a busy bank queue behind it; the data bus serializes
/// transfers, so bulk DMA bursts see bandwidth limits as well as latency.
#[derive(Debug)]
pub struct Dram {
    name: String,
    base: u64,
    data: Vec<u8>,
    cfg: DramConfig,
    queue: VecDeque<MemReq>,
    bank_free_at: Vec<Tick>,
    open_row: Vec<Option<u64>>,
    bus_free_at: Tick,
    tick_pending: bool,
    reads: u64,
    writes: u64,
    row_hits: u64,
    row_misses: u64,
    bytes: u64,
    fault: Option<FaultState>,
}

impl Dram {
    /// Creates a zeroed DRAM covering `[base, base+size)`, panicking on an
    /// invalid configuration. Thin wrapper over [`Dram::try_new`].
    pub fn new(name: &str, cfg: DramConfig, base: u64, size: u64) -> Self {
        match Self::try_new(name, cfg, base, size) {
            Ok(dram) => dram,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Dram::new`]: validates the configuration and size.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for zero banks, rows, bus width, or size — each
    /// of which would divide by zero or wedge the issue loop.
    pub fn try_new(name: &str, cfg: DramConfig, base: u64, size: u64) -> Result<Self, SimError> {
        let bad = |field: &str, detail: &str| Err(SimError::config("dram", field, detail));
        if cfg.banks == 0 {
            return bad("banks", "must be nonzero");
        }
        if cfg.row_bytes == 0 {
            return bad("row_bytes", "must be nonzero");
        }
        if cfg.bus_bytes_per_cycle == 0 {
            return bad("bus_bytes_per_cycle", "must be nonzero");
        }
        if size == 0 {
            return bad("size", "must be nonzero");
        }
        Ok(Dram {
            name: name.to_string(),
            base,
            data: vec![0; size as usize],
            bank_free_at: vec![0; cfg.banks as usize],
            open_row: vec![None; cfg.banks as usize],
            cfg,
            queue: VecDeque::new(),
            bus_free_at: 0,
            tick_pending: false,
            reads: 0,
            writes: 0,
            row_hits: 0,
            row_misses: 0,
            bytes: 0,
            fault: None,
        })
    }

    /// Arms fault injection: read data takes seeded single-bit flips and
    /// responses take extra latency, per the plan's `mem_*` rates.
    pub fn set_fault(&mut self, plan: &FaultPlan) {
        self.fault = Some(FaultState::new(plan, &format!("dram.{}", self.name)));
    }

    /// Direct backdoor write, bypassing timing.
    pub fn poke(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr - self.base) as usize;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Direct backdoor read, bypassing timing.
    pub fn peek(&self, addr: u64, len: usize) -> &[u8] {
        let off = (addr - self.base) as usize;
        &self.data[off..off + len]
    }

    /// Total bytes transferred.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes
    }

    fn schedule_tick(&mut self, ctx: &mut Ctx<'_, MemMsg>, at: Tick) {
        if !self.tick_pending {
            self.tick_pending = true;
            let edge = self.cfg.clock.next_edge_at_or_after(at.max(ctx.now() + 1));
            ctx.wake(edge - ctx.now(), MemMsg::Tick);
        }
    }

    fn try_issue(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        let now = ctx.now();
        let mut next_retry: Option<Tick> = None;
        let mut remaining: VecDeque<MemReq> = VecDeque::new();
        while let Some(req) = self.queue.pop_front() {
            let row = req.addr / self.cfg.row_bytes;
            let bank = (row % self.cfg.banks as u64) as usize;
            let ready = self.bank_free_at[bank].max(self.bus_free_at).max(now);
            if ready > now {
                next_retry = Some(next_retry.map_or(ready, |t: Tick| t.min(ready)));
                remaining.push_back(req);
                // Preserve order behind the stalled request for same-bank
                // accesses; allowing bank-level parallelism would need a
                // scheduler — FR-FCFS is beyond what the experiments need.
                while let Some(r) = self.queue.pop_front() {
                    remaining.push_back(r);
                }
                break;
            }
            let hit = self.open_row[bank] == Some(row);
            let access_cycles = if hit {
                self.row_hits += 1;
                self.cfg.row_hit_cycles
            } else {
                self.row_misses += 1;
                self.cfg.row_miss_cycles
            };
            self.open_row[bank] = Some(row);
            let burst_cycles = (req.size as u64)
                .div_ceil(self.cfg.bus_bytes_per_cycle as u64)
                .max(1);
            let total = self.cfg.clock.cycles(access_cycles + burst_cycles);
            self.bank_free_at[bank] = now + total;
            self.bus_free_at = now + self.cfg.clock.cycles(burst_cycles);
            self.bytes += req.size as u64;

            let off = (req.addr - self.base) as usize;
            let mut resp = match req.op {
                MemOp::Read => {
                    self.reads += 1;
                    let end = (off + req.size as usize).min(self.data.len());
                    MemResp {
                        id: req.id,
                        addr: req.addr,
                        op: MemOp::Read,
                        data: Some(self.data[off..end].to_vec()),
                    }
                }
                MemOp::Write => {
                    self.writes += 1;
                    if let Some(d) = &req.data {
                        let end = (off + d.len()).min(self.data.len());
                        self.data[off..end].copy_from_slice(&d[..end - off]);
                    }
                    MemResp {
                        id: req.id,
                        addr: req.addr,
                        op: MemOp::Write,
                        data: None,
                    }
                }
            };
            let mut fault_cycles = 0;
            if let Some(f) = self.fault.as_mut() {
                if let Some(data) = resp.data.as_deref_mut() {
                    f.maybe_flip(data);
                }
                fault_cycles = f.maybe_delay();
            }
            let resp_delay = total + self.cfg.clock.cycles(fault_cycles);
            ctx.send(req.reply_to, resp_delay, MemMsg::Resp(resp));
        }
        self.queue = remaining;
        if let Some(t) = next_retry {
            self.schedule_tick(ctx, t);
        }
    }
}

impl Component<MemMsg> for Dram {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::Req(req) => {
                assert!(
                    req.addr >= self.base
                        && req.addr + req.size as u64 <= self.base + self.data.len() as u64,
                    "{}: out-of-range access at {:#x}+{}",
                    self.name,
                    req.addr,
                    req.size
                );
                self.queue.push_back(req);
                self.try_issue(ctx);
            }
            MemMsg::Tick => {
                self.tick_pending = false;
                self.try_issue(ctx);
            }
            other => debug_assert!(false, "{}: unexpected message {other:?}", self.name),
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let mut v = vec![
            ("reads".into(), self.reads as f64),
            ("writes".into(), self.writes as f64),
            ("row_hits".into(), self.row_hits as f64),
            ("row_misses".into(), self.row_misses as f64),
            ("bytes".into(), self.bytes as f64),
        ];
        if let Some(f) = &self.fault {
            v.push(("fault_bitflips".into(), f.bitflips as f64));
            v.push(("fault_delays".into(), f.delays as f64));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::Collector;
    use sim_core::Simulation;

    #[test]
    fn roundtrip_and_latency() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new("d", DramConfig::default(), 0, 1 << 16));
        let col = sim.add_component(Collector::new());
        sim.post(
            dram,
            0,
            MemMsg::Req(MemReq::write(1, 0x100, vec![5; 8], col)),
        );
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        // First access is a row miss: 38 + 1 burst cycle = 39 cycles.
        assert_eq!(c.resp_ticks[0], 39_000);
    }

    #[test]
    fn row_hits_are_faster() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new("d", DramConfig::default(), 0, 1 << 16));
        let col = sim.add_component(Collector::new());
        sim.post(dram, 0, MemMsg::Req(MemReq::read(1, 0x100, 8, col)));
        // Second access to the same row, issued well after the first drains.
        sim.post(dram, 100_000, MemMsg::Req(MemReq::read(2, 0x108, 8, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        let first = c.resp_ticks[0];
        let second = c.resp_ticks[1] - 100_000;
        assert!(second < first, "row hit {second} should beat miss {first}");
        assert_eq!(second, 13_000); // 12 + 1 burst
    }

    #[test]
    fn bus_serializes_bursts() {
        let cfg = DramConfig::default();
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new("d", cfg, 0, 1 << 16));
        let col = sim.add_component(Collector::new());
        // Two 64-byte reads to different rows/banks: bus busy 8 cycles each.
        sim.post(dram, 0, MemMsg::Req(MemReq::read(1, 0x0, 64, col)));
        sim.post(dram, 0, MemMsg::Req(MemReq::read(2, 0x800, 64, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps.len(), 2);
        assert!(c.resp_ticks[1] > c.resp_ticks[0]);
    }

    #[test]
    fn data_persists() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let dram = sim.add_component(Dram::new("d", DramConfig::default(), 0x8000_0000, 4096));
        let col = sim.add_component(Collector::new());
        sim.post(
            dram,
            0,
            MemMsg::Req(MemReq::write(1, 0x8000_0010, vec![1, 2, 3, 4], col)),
        );
        sim.post(
            dram,
            200_000,
            MemMsg::Req(MemReq::read(2, 0x8000_0010, 4, col)),
        );
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps[1].data.as_deref(), Some(&[1u8, 2, 3, 4][..]));
    }
}
