//! Small components used by tests, doctests and experiment harnesses.

use sim_core::{CompId, Component, Ctx};

use crate::msg::{MemMsg, MemReq, MemResp};

/// Records every response and interrupt it receives.
#[derive(Debug, Default)]
pub struct Collector {
    /// Responses in arrival order.
    pub resps: Vec<MemResp>,
    /// Arrival ticks aligned with `resps`.
    pub resp_ticks: Vec<sim_core::Tick>,
    /// Interrupt events `(line, raised, tick)`.
    pub irqs: Vec<(u32, bool, sim_core::Tick)>,
    /// DMA completions `(id, tick)`.
    pub dma_dones: Vec<(u64, sim_core::Tick)>,
    /// Stream beats received.
    pub stream_beats: Vec<Vec<u8>>,
}

impl Collector {
    /// A fresh collector.
    pub fn new() -> Self {
        Collector::default()
    }
}

impl Component<MemMsg> for Collector {
    fn name(&self) -> &str {
        "collector"
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::Resp(r) => {
                self.resps.push(r);
                self.resp_ticks.push(ctx.now());
            }
            MemMsg::Irq { line, raised } => self.irqs.push((line, raised, ctx.now())),
            MemMsg::DmaDone { id } => self.dma_dones.push((id, ctx.now())),
            MemMsg::StreamPush { data, .. } => self.stream_beats.push(data),
            _ => {}
        }
    }
}

/// On [`MemMsg::Start`], writes 4 bytes then reads them back through a
/// target, recording whether the data matched.
#[derive(Debug)]
pub struct Requester {
    target: CompId,
    /// Set once the read-back completes with matching data.
    pub ok: Option<bool>,
}

impl Requester {
    /// A requester that talks to `target`.
    pub fn new(target: CompId) -> Self {
        Requester { target, ok: None }
    }
}

impl Component<MemMsg> for Requester {
    fn name(&self) -> &str {
        "requester"
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        let me = ctx.self_id();
        match msg {
            MemMsg::Start => {
                ctx.send(
                    self.target,
                    0,
                    MemMsg::Req(MemReq::write(1, 0x40, vec![0xAB, 0xCD, 0xEF, 0x01], me)),
                );
            }
            MemMsg::Resp(r) if r.id == 1 => {
                ctx.send(self.target, 0, MemMsg::Req(MemReq::read(2, 0x40, 4, me)));
            }
            MemMsg::Resp(r) if r.id == 2 => {
                self.ok = Some(r.data.as_deref() == Some(&[0xAB, 0xCD, 0xEF, 0x01][..]));
            }
            _ => {}
        }
    }
}
