//! Memory-mapped registers with doorbell notification.

use sim_core::{ClockDomain, CompId, Component, Ctx};

use crate::msg::{MemMsg, MemOp, MemResp};

/// A bank of 64-bit memory-mapped registers.
///
/// This is the control plane of a gem5-SALAM accelerator: the host (or a
/// peer accelerator) programs pointers, flags and configuration through MMR
/// writes; the owning component is notified of each write via a
/// [`MemMsg::Doorbell`], and reads return current values — mirroring how the
/// paper's accelerators "respond with their current values when read by the
/// host CPU".
#[derive(Debug)]
pub struct MmrBlock {
    name: String,
    base: u64,
    regs: Vec<u64>,
    owner: Option<CompId>,
    clock: ClockDomain,
    reads: u64,
    writes: u64,
}

impl MmrBlock {
    /// Creates `count` zeroed registers at `base`, with `owner` receiving a
    /// doorbell for every write.
    pub fn new(name: &str, base: u64, count: usize, owner: Option<CompId>) -> Self {
        MmrBlock {
            name: name.to_string(),
            base,
            regs: vec![0; count],
            owner,
            clock: ClockDomain::default(),
            reads: 0,
            writes: 0,
        }
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.regs.len() as u64 * 8
    }

    /// Reads register `index` directly (no timing).
    pub fn reg(&self, index: usize) -> u64 {
        self.regs[index]
    }

    /// Writes register `index` directly (no timing, no doorbell).
    pub fn set_reg(&mut self, index: usize, value: u64) {
        self.regs[index] = value;
    }
}

impl Component<MemMsg> for MmrBlock {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        let MemMsg::Req(req) = msg else {
            debug_assert!(false, "{}: unexpected message", self.name);
            return;
        };
        let offset = req.addr - self.base;
        let index = (offset / 8) as usize;
        assert!(
            index < self.regs.len(),
            "{}: MMR index {index} out of range",
            self.name
        );
        let lat = self.clock.cycles(1);
        match req.op {
            MemOp::Read => {
                self.reads += 1;
                let bytes = self.regs[index].to_le_bytes();
                let n = (req.size as usize).min(8);
                let resp = MemResp {
                    id: req.id,
                    addr: req.addr,
                    op: MemOp::Read,
                    data: Some(bytes[..n].to_vec()),
                };
                ctx.send(req.reply_to, lat, MemMsg::Resp(resp));
            }
            MemOp::Write => {
                self.writes += 1;
                let mut bytes = self.regs[index].to_le_bytes();
                if let Some(d) = &req.data {
                    let n = d.len().min(8);
                    bytes[..n].copy_from_slice(&d[..n]);
                }
                self.regs[index] = u64::from_le_bytes(bytes);
                let value = self.regs[index];
                let resp = MemResp {
                    id: req.id,
                    addr: req.addr,
                    op: MemOp::Write,
                    data: None,
                };
                ctx.send(req.reply_to, lat, MemMsg::Resp(resp));
                if let Some(owner) = self.owner {
                    ctx.send(owner, lat, MemMsg::Doorbell { offset, value });
                }
            }
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("reads".into(), self.reads as f64),
            ("writes".into(), self.writes as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MemReq;
    use crate::test_util::Collector;
    use sim_core::Simulation;

    /// Records doorbells.
    #[derive(Debug, Default)]
    struct Owner {
        bells: Vec<(u64, u64)>,
    }

    impl Component<MemMsg> for Owner {
        fn name(&self) -> &str {
            "owner"
        }
        fn handle(&mut self, msg: MemMsg, _ctx: &mut Ctx<'_, MemMsg>) {
            if let MemMsg::Doorbell { offset, value } = msg {
                self.bells.push((offset, value));
            }
        }
    }

    #[test]
    fn write_rings_doorbell_and_read_returns_value() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let owner = sim.add_component(Owner::default());
        let mmr = sim.add_component(MmrBlock::new("mmr", 0x4000, 8, Some(owner)));
        let col = sim.add_component(Collector::new());
        sim.post(
            mmr,
            0,
            MemMsg::Req(MemReq::write(
                1,
                0x4010,
                0xDEAD_BEEFu64.to_le_bytes().to_vec(),
                col,
            )),
        );
        sim.post(mmr, 10_000, MemMsg::Req(MemReq::read(2, 0x4010, 8, col)));
        sim.run();
        let o = sim.component_as::<Owner>(owner).unwrap();
        assert_eq!(o.bells, vec![(0x10, 0xDEAD_BEEF)]);
        let c = sim.component_as::<Collector>(col).unwrap();
        let v = u64::from_le_bytes(c.resps[1].data.as_deref().unwrap().try_into().unwrap());
        assert_eq!(v, 0xDEAD_BEEF);
    }

    #[test]
    fn partial_write_merges() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let mmr = sim.add_component(MmrBlock::new("mmr", 0x0, 2, None));
        let col = sim.add_component(Collector::new());
        sim.post(
            mmr,
            0,
            MemMsg::Req(MemReq::write(1, 0x0, vec![0xFF; 8], col)),
        );
        sim.post(
            mmr,
            10_000,
            MemMsg::Req(MemReq::write(2, 0x0, vec![0x00, 0x00, 0x00, 0x00], col)),
        );
        sim.run();
        let m = sim.component_as::<MmrBlock>(mmr).unwrap();
        assert_eq!(m.reg(0), 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn direct_access_helpers() {
        let mut m = MmrBlock::new("m", 0x100, 4, None);
        m.set_reg(3, 77);
        assert_eq!(m.reg(3), 77);
        assert_eq!(m.size(), 32);
        assert_eq!(m.base(), 0x100);
    }
}
