//! Address-routed crossbar.

use std::collections::HashMap;

use salam_fault::{FaultPlan, SimError};
use salam_obs::{SharedTrace, TrackId};
use sim_core::{ClockDomain, CompId, Component, Ctx};

use crate::addr::AddrMap;
use crate::fault::FaultState;
use crate::msg::{MemMsg, MemReq, MemResp};

/// A crossbar: routes requests by address, returns responses along the same
/// path, and adds a fixed forwarding latency per hop.
///
/// Serves as both the *local* crossbar inside an accelerator cluster and the
/// *global* crossbar out to DRAM in the paper's system model. Width-based
/// serialization models header/payload occupancy on the shared fabric.
#[derive(Debug)]
pub struct Xbar {
    name: String,
    map: AddrMap,
    latency_cycles: u64,
    width_bytes: u32,
    clock: ClockDomain,
    // Response routing: our request id -> (original id, original requester).
    inflight: HashMap<u64, (u64, CompId)>,
    next_id: u64,
    busy_until: sim_core::Tick,
    forwarded: u64,
    bytes: u64,
    contended_cycles: u64,
    width_stalls: u64,
    trace: SharedTrace,
    track: Option<TrackId>,
    fault: Option<FaultState>,
}

impl Xbar {
    /// Creates a crossbar with the given routing map, per-hop latency in
    /// cycles, and data width in bytes per cycle. A zero width is clamped to
    /// 1 for backwards compatibility; use [`Xbar::try_new`] to reject it.
    pub fn new(name: &str, map: AddrMap, latency_cycles: u64, width_bytes: u32) -> Self {
        match Self::try_new(name, map, latency_cycles, width_bytes.max(1)) {
            Ok(xbar) => xbar,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Xbar::new`]: rejects a zero fabric width, which would
    /// divide by zero when computing beat occupancy.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn try_new(
        name: &str,
        map: AddrMap,
        latency_cycles: u64,
        width_bytes: u32,
    ) -> Result<Self, SimError> {
        if width_bytes == 0 {
            return Err(SimError::config("xbar", "width_bytes", "must be nonzero"));
        }
        Ok(Xbar {
            name: name.to_string(),
            map,
            latency_cycles,
            width_bytes,
            clock: ClockDomain::default(),
            inflight: HashMap::new(),
            next_id: 1,
            busy_until: 0,
            forwarded: 0,
            bytes: 0,
            contended_cycles: 0,
            width_stalls: 0,
            trace: SharedTrace::disabled(),
            track: None,
            fault: None,
        })
    }

    /// Overrides the fabric clock.
    pub fn with_clock(mut self, clock: ClockDomain) -> Self {
        self.clock = clock;
        self
    }

    /// Arms fault injection: forwarded requests take seeded extra hop
    /// latency at the plan's `mem_delay_rate`, modeling transient fabric
    /// congestion outside the modeled width serialization.
    pub fn set_fault(&mut self, plan: &FaultPlan) {
        self.fault = Some(FaultState::new(plan, &format!("xbar.{}", self.name)));
    }

    /// Attaches a trace sink; in-flight depth becomes a counter on an
    /// `xbar.{name}` track and fabric contention shows up as instants.
    pub fn set_trace(&mut self, trace: SharedTrace) {
        self.track = trace
            .is_enabled()
            .then(|| trace.track(&format!("xbar.{}", self.name)));
        self.trace = trace;
    }

    /// Total requests forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Component<MemMsg> for Xbar {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::Req(req) => {
                let Some(dst) = self.map.route(req.addr) else {
                    panic!("{}: no route for address {:#x}", self.name, req.addr);
                };
                // A crossbar routes independent single-beat requests in
                // parallel; only transfers wider than the fabric (DMA
                // bursts) serialize for their extra beats. Endpoint
                // contention is modeled at the endpoints themselves.
                let extra_beats = (req.size as u64)
                    .div_ceil(self.width_bytes as u64)
                    .saturating_sub(1);
                let start = if extra_beats > 0 {
                    self.busy_until.max(ctx.now())
                } else {
                    ctx.now()
                };
                if start > ctx.now() {
                    self.contended_cycles += (start - ctx.now()) / self.clock.period();
                    self.width_stalls += 1;
                    if let Some(t) = self.track {
                        // Cause-coded: the stall comes from fabric width
                        // (multi-beat serialization), not endpoint ports.
                        self.trace.instant(t, "contended:width", ctx.now());
                    }
                }
                if extra_beats > 0 {
                    self.busy_until = start + self.clock.cycles(extra_beats);
                }
                let mut fault_cycles = 0;
                if let Some(f) = self.fault.as_mut() {
                    fault_cycles = f.maybe_delay();
                    if fault_cycles > 0 {
                        if let Some(t) = self.track {
                            self.trace.instant(t, "fault:mem_delay", ctx.now());
                        }
                    }
                }
                let delay =
                    (start - ctx.now()) + self.clock.cycles(self.latency_cycles + fault_cycles);

                let my_id = self.next_id;
                self.next_id += 1;
                self.inflight.insert(my_id, (req.id, req.reply_to));
                self.forwarded += 1;
                self.bytes += req.size as u64;
                if let Some(t) = self.track {
                    self.trace
                        .counter(t, "inflight", ctx.now(), self.inflight.len() as f64);
                }
                let fwd = MemReq {
                    id: my_id,
                    reply_to: ctx.self_id(),
                    ..req
                };
                ctx.send(dst, delay, MemMsg::Req(fwd));
            }
            MemMsg::Resp(resp) => {
                let Some((orig_id, orig_to)) = self.inflight.remove(&resp.id) else {
                    panic!("{}: response for unknown request {}", self.name, resp.id);
                };
                if let Some(t) = self.track {
                    self.trace
                        .counter(t, "inflight", ctx.now(), self.inflight.len() as f64);
                }
                let back = MemResp {
                    id: orig_id,
                    ..resp
                };
                ctx.send(
                    orig_to,
                    self.clock.cycles(self.latency_cycles),
                    MemMsg::Resp(back),
                );
            }
            other => debug_assert!(false, "{}: unexpected message {other:?}", self.name),
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let mut v = vec![
            ("forwarded".into(), self.forwarded as f64),
            ("bytes".into(), self.bytes as f64),
            ("contended_cycles".into(), self.contended_cycles as f64),
            ("width_stalls".into(), self.width_stalls as f64),
        ];
        if let Some(f) = &self.fault {
            v.push(("fault_delays".into(), f.delays as f64));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spm::{Scratchpad, ScratchpadConfig};
    use crate::test_util::Collector;
    use sim_core::Simulation;

    #[test]
    fn routes_to_correct_target_and_back() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm_a = sim.add_component(Scratchpad::new(
            "a",
            ScratchpadConfig::default(),
            0x0,
            0x100,
        ));
        let spm_b = sim.add_component(Scratchpad::new(
            "b",
            ScratchpadConfig::default(),
            0x100,
            0x100,
        ));
        let mut map = AddrMap::new();
        map.add(0x0, 0x100, spm_a);
        map.add(0x100, 0x200, spm_b);
        let xbar = sim.add_component(Xbar::new("x", map, 1, 8));
        let col = sim.add_component(Collector::new());
        sim.post(
            xbar,
            0,
            MemMsg::Req(MemReq::write(1, 0x110, vec![7, 7], col)),
        );
        sim.post(xbar, 10_000, MemMsg::Req(MemReq::read(2, 0x110, 2, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps.len(), 2);
        assert_eq!(c.resps[1].data.as_deref(), Some(&[7u8, 7][..]));
        assert_eq!(c.resps[1].id, 2, "original id restored");
        let b = sim.component_as::<Scratchpad>(spm_b).unwrap();
        assert_eq!(b.write_count(), 1);
        let a = sim.component_as::<Scratchpad>(spm_a).unwrap();
        assert_eq!(a.write_count() + a.read_count(), 0);
    }

    #[test]
    fn hop_latency_added_both_ways() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm = sim.add_component(Scratchpad::new(
            "s",
            ScratchpadConfig::default(),
            0x0,
            0x100,
        ));
        let mut map = AddrMap::new();
        map.add(0x0, 0x100, spm);
        let xbar = sim.add_component(Xbar::new("x", map, 2, 8));
        let col = sim.add_component(Collector::new());
        sim.post(xbar, 0, MemMsg::Req(MemReq::read(1, 0x10, 4, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        // 2 cycles in + (tick align 1 + latency 1) SPM + 2 cycles out = 6.
        assert_eq!(c.resp_ticks[0], 6_000);
    }

    #[test]
    fn width_serializes_large_transfers() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm = sim.add_component(Scratchpad::new(
            "s",
            ScratchpadConfig::default().with_ports(8, 8),
            0x0,
            0x1000,
        ));
        let mut map = AddrMap::new();
        map.add(0x0, 0x1000, spm);
        let xbar = sim.add_component(Xbar::new("x", map, 1, 8));
        let col = sim.add_component(Collector::new());
        // Two 64-byte transfers: the second waits out the first one's 7
        // extra beats (64 B over an 8 B fabric).
        sim.post(xbar, 0, MemMsg::Req(MemReq::read(1, 0x0, 64, col)));
        sim.post(xbar, 0, MemMsg::Req(MemReq::read(2, 0x40, 64, col)));
        sim.run();
        let c = sim.component_as::<Collector>(col).unwrap();
        assert_eq!(c.resps.len(), 2);
        assert!(c.resp_ticks[1] >= c.resp_ticks[0] + 7_000);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unrouted_address_panics() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let xbar = sim.add_component(Xbar::new("x", AddrMap::new(), 1, 8));
        let col = sim.add_component(Collector::new());
        sim.post(xbar, 0, MemMsg::Req(MemReq::read(1, 0xDEAD, 4, col)));
        sim.run();
    }
}
