//! Multi-ported scratchpad memory.

use std::collections::VecDeque;

use salam_fault::{FaultPlan, SimError};
use salam_obs::{SharedTrace, TrackId};
use sim_core::{ClockDomain, Component, Ctx, Frequency};

use crate::fault::FaultState;
use crate::msg::{MemMsg, MemOp, MemReq, MemResp};

/// Configuration for a [`Scratchpad`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScratchpadConfig {
    /// Access latency in SPM-clock cycles.
    pub latency_cycles: u64,
    /// Reads serviced per cycle.
    pub read_ports: u32,
    /// Writes serviced per cycle.
    pub write_ports: u32,
    /// Cyclic banking factor; 0 disables bank-conflict modeling.
    pub banks: u32,
    /// Bank interleave granularity in bytes (word size).
    pub bank_word: u32,
    /// SPM clock.
    pub clock: ClockDomain,
}

impl Default for ScratchpadConfig {
    /// 1-cycle, dual-ported (1R + 1W), unbanked SPM at 1 GHz.
    fn default() -> Self {
        ScratchpadConfig {
            latency_cycles: 1,
            read_ports: 1,
            write_ports: 1,
            banks: 0,
            bank_word: 4,
            clock: ClockDomain::new(Frequency::ghz(1)),
        }
    }
}

impl ScratchpadConfig {
    /// Sets both port counts.
    pub fn with_ports(mut self, read: u32, write: u32) -> Self {
        self.read_ports = read.max(1);
        self.write_ports = write.max(1);
        self
    }

    /// Rejects knobs that can never service a request: zero ports wedge the
    /// queue forever, and banking with a zero word size divides by zero.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |field: &str, detail: &str| Err(SimError::config("scratchpad", field, detail));
        if self.read_ports == 0 {
            return bad("read_ports", "must be nonzero");
        }
        if self.write_ports == 0 {
            return bad("write_ports", "must be nonzero");
        }
        if self.banks > 0 && self.bank_word == 0 {
            return bad("bank_word", "must be nonzero when banking is enabled");
        }
        Ok(())
    }
}

/// A scratchpad: private or shared accelerator SRAM.
///
/// Requests queue at the SPM and are serviced in order, up to
/// `read_ports` reads and `write_ports` writes per cycle (with optional
/// cyclic bank-conflict modeling). Responses return after the configured
/// latency. These are exactly the knobs the paper sweeps in its GEMM
/// design-space exploration (Figs. 13–15).
#[derive(Debug)]
pub struct Scratchpad {
    name: String,
    base: u64,
    data: Vec<u8>,
    cfg: ScratchpadConfig,
    queue: VecDeque<MemReq>,
    tick_pending: bool,
    // stats
    reads: u64,
    writes: u64,
    busy_cycles: u64,
    conflict_stalls: u64,
    read_port_rejects: u64,
    write_port_rejects: u64,
    max_queue: usize,
    trace: SharedTrace,
    track: Option<TrackId>,
    fault: Option<FaultState>,
}

impl Scratchpad {
    /// Creates a zero-initialized scratchpad covering `[base, base+size)`,
    /// panicking on an invalid configuration. Thin wrapper over
    /// [`Scratchpad::try_new`].
    pub fn new(name: &str, cfg: ScratchpadConfig, base: u64, size: u64) -> Self {
        match Self::try_new(name, cfg, base, size) {
            Ok(spm) => spm,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Scratchpad::new`]: validates the configuration and size.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for zero ports, a zero bank word, or zero size.
    pub fn try_new(
        name: &str,
        cfg: ScratchpadConfig,
        base: u64,
        size: u64,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if size == 0 {
            return Err(SimError::config("scratchpad", "size", "must be nonzero"));
        }
        Ok(Scratchpad {
            name: name.to_string(),
            base,
            data: vec![0; size as usize],
            cfg,
            queue: VecDeque::new(),
            tick_pending: false,
            reads: 0,
            writes: 0,
            busy_cycles: 0,
            conflict_stalls: 0,
            read_port_rejects: 0,
            write_port_rejects: 0,
            max_queue: 0,
            trace: SharedTrace::disabled(),
            track: None,
            fault: None,
        })
    }

    /// Attaches a trace sink; queue depth becomes a counter on an
    /// `spm.{name}` track and bank conflicts show up as instants.
    pub fn set_trace(&mut self, trace: SharedTrace) {
        self.track = trace
            .is_enabled()
            .then(|| trace.track(&format!("spm.{}", self.name)));
        self.trace = trace;
    }

    /// Arms fault injection: read data takes seeded single-bit flips at the
    /// plan's `mem_bitflip_rate` and responses take extra latency at its
    /// `mem_delay_rate`. Injections appear as `fault:*` trace instants and
    /// `fault_*` stats.
    pub fn set_fault(&mut self, plan: &FaultPlan) {
        self.fault = Some(FaultState::new(plan, &format!("spm.{}", self.name)));
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }

    /// Direct backdoor read (testing / checkpointing), bypassing timing.
    pub fn peek(&self, addr: u64, len: usize) -> &[u8] {
        let off = (addr - self.base) as usize;
        &self.data[off..off + len]
    }

    /// Direct backdoor write, bypassing timing.
    pub fn poke(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr - self.base) as usize;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Total reads serviced.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total writes serviced.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    fn bank_of(&self, addr: u64) -> u64 {
        (addr / self.cfg.bank_word as u64) % self.cfg.banks.max(1) as u64
    }

    fn schedule_tick(&mut self, ctx: &mut Ctx<'_, MemMsg>) {
        if !self.tick_pending {
            self.tick_pending = true;
            let next = self.cfg.clock.next_edge_at_or_after(ctx.now() + 1);
            ctx.wake(next - ctx.now(), MemMsg::Tick);
        }
    }

    fn service(&mut self, req: MemReq, ctx: &mut Ctx<'_, MemMsg>) {
        let off = (req.addr - self.base) as usize;
        let mut resp = match req.op {
            MemOp::Read => {
                self.reads += 1;
                let end = (off + req.size as usize).min(self.data.len());
                MemResp {
                    id: req.id,
                    addr: req.addr,
                    op: MemOp::Read,
                    data: Some(self.data[off..end].to_vec()),
                }
            }
            MemOp::Write => {
                self.writes += 1;
                if let Some(d) = &req.data {
                    let end = (off + d.len()).min(self.data.len());
                    self.data[off..end].copy_from_slice(&d[..end - off]);
                }
                MemResp {
                    id: req.id,
                    addr: req.addr,
                    op: MemOp::Write,
                    data: None,
                }
            }
        };
        let mut extra_cycles = 0;
        if let Some(f) = self.fault.as_mut() {
            if let Some(data) = resp.data.as_deref_mut() {
                if f.maybe_flip(data) {
                    if let Some(t) = self.track {
                        self.trace.instant(t, "fault:mem_bitflip", ctx.now());
                    }
                }
            }
            extra_cycles = f.maybe_delay();
            if extra_cycles > 0 {
                if let Some(t) = self.track {
                    self.trace.instant(t, "fault:mem_delay", ctx.now());
                }
            }
        }
        let delay = self
            .cfg
            .clock
            .cycles(self.cfg.latency_cycles + extra_cycles);
        ctx.send(req.reply_to, delay, MemMsg::Resp(resp));
    }
}

impl Component<MemMsg> for Scratchpad {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: MemMsg, ctx: &mut Ctx<'_, MemMsg>) {
        match msg {
            MemMsg::Req(req) => {
                assert!(
                    req.addr >= self.base && req.addr + req.size as u64 <= self.base + self.size(),
                    "{}: out-of-range access at {:#x}+{}",
                    self.name,
                    req.addr,
                    req.size
                );
                self.queue.push_back(req);
                self.max_queue = self.max_queue.max(self.queue.len());
                self.schedule_tick(ctx);
            }
            MemMsg::Tick => {
                self.tick_pending = false;
                if self.queue.is_empty() {
                    return;
                }
                self.busy_cycles += 1;
                let mut reads_left = self.cfg.read_ports;
                let mut writes_left = self.cfg.write_ports;
                let mut banks_used: Vec<u64> = Vec::new();
                let mut serviced: Vec<MemReq> = Vec::new();
                let mut rest: VecDeque<MemReq> = VecDeque::new();
                while let Some(req) = self.queue.pop_front() {
                    let budget = match req.op {
                        MemOp::Read => &mut reads_left,
                        MemOp::Write => &mut writes_left,
                    };
                    let bank_ok = self.cfg.banks == 0 || {
                        let b = self.bank_of(req.addr);
                        if banks_used.contains(&b) {
                            false
                        } else {
                            banks_used.push(b);
                            true
                        }
                    };
                    if *budget > 0 && bank_ok {
                        *budget -= 1;
                        serviced.push(req);
                    } else {
                        // Attribute the reject to its cause so profiling can
                        // charge contention to the right component knob.
                        if !bank_ok {
                            self.conflict_stalls += 1;
                            if let Some(t) = self.track {
                                self.trace.instant(t, "bank_conflict", ctx.now());
                            }
                        } else {
                            let cause = match req.op {
                                MemOp::Read => {
                                    self.read_port_rejects += 1;
                                    "reject:read_ports"
                                }
                                MemOp::Write => {
                                    self.write_port_rejects += 1;
                                    "reject:write_ports"
                                }
                            };
                            if let Some(t) = self.track {
                                self.trace.instant(t, cause, ctx.now());
                            }
                        }
                        rest.push_back(req);
                        // Keep order for everything behind the blocked one.
                        while let Some(r) = self.queue.pop_front() {
                            rest.push_back(r);
                        }
                        break;
                    }
                }
                self.queue = rest;
                for req in serviced {
                    self.service(req, ctx);
                }
                if let Some(t) = self.track {
                    self.trace
                        .counter(t, "queue_depth", ctx.now(), self.queue.len() as f64);
                }
                if !self.queue.is_empty() {
                    self.schedule_tick(ctx);
                }
            }
            other => {
                debug_assert!(false, "{}: unexpected message {other:?}", self.name);
            }
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let mut v = vec![
            ("reads".into(), self.reads as f64),
            ("writes".into(), self.writes as f64),
            ("busy_cycles".into(), self.busy_cycles as f64),
            ("bank_conflict_stalls".into(), self.conflict_stalls as f64),
            ("read_port_rejects".into(), self.read_port_rejects as f64),
            ("write_port_rejects".into(), self.write_port_rejects as f64),
            ("max_queue".into(), self.max_queue as f64),
        ];
        if let Some(f) = &self.fault {
            v.push(("fault_bitflips".into(), f.bitflips as f64));
            v.push(("fault_delays".into(), f.delays as f64));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::Collector;
    use sim_core::Simulation;

    fn setup(cfg: ScratchpadConfig) -> (Simulation<MemMsg>, sim_core::CompId, sim_core::CompId) {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let spm = sim.add_component(Scratchpad::new("spm", cfg, 0x1000, 0x1000));
        let col = sim.add_component(Collector::new());
        (sim, spm, col)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut sim, spm, col) = setup(ScratchpadConfig::default());
        sim.post(
            spm,
            0,
            MemMsg::Req(MemReq::write(1, 0x1010, vec![9, 8, 7, 6], col)),
        );
        sim.post(spm, 2_000, MemMsg::Req(MemReq::read(2, 0x1010, 4, col)));
        sim.run();
        let c = collector(&sim, col);
        assert_eq!(c.resps.len(), 2);
        assert_eq!(c.resps[1].data.as_deref(), Some(&[9u8, 8, 7, 6][..]));
    }

    fn collector(sim: &Simulation<MemMsg>, id: sim_core::CompId) -> &Collector {
        sim.component_as::<Collector>(id).unwrap()
    }

    #[test]
    fn read_port_limit_serializes() {
        // 1 read port: 4 simultaneous reads take 4 cycles to issue.
        let (mut sim, spm, col) = setup(ScratchpadConfig::default());
        for i in 0..4 {
            sim.post(spm, 0, MemMsg::Req(MemReq::read(i, 0x1000 + i * 4, 4, col)));
        }
        sim.run();
        let c = collector(&sim, col);
        assert_eq!(c.resps.len(), 4);
        // Last response: issued at cycle 4 (tick at 4000ps... issue cycles 1..4),
        // + 1 cycle latency.
        assert_eq!(sim.now(), 5_000);
    }

    #[test]
    fn wide_ports_parallelize() {
        let cfg = ScratchpadConfig::default().with_ports(4, 1);
        let (mut sim, spm, col) = setup(cfg);
        for i in 0..4 {
            sim.post(spm, 0, MemMsg::Req(MemReq::read(i, 0x1000 + i * 4, 4, col)));
        }
        sim.run();
        assert_eq!(collector(&sim, col).resps.len(), 4);
        assert_eq!(sim.now(), 2_000, "all four issue in the first cycle");
    }

    #[test]
    fn bank_conflicts_stall() {
        let mut cfg = ScratchpadConfig::default().with_ports(4, 4);
        cfg.banks = 2;
        cfg.bank_word = 4;
        let (mut sim, spm, col) = setup(cfg);
        // Addresses 0x1000 and 0x1008 hit the same bank (stride 8, 2 banks).
        sim.post(spm, 0, MemMsg::Req(MemReq::read(0, 0x1000, 4, col)));
        sim.post(spm, 0, MemMsg::Req(MemReq::read(1, 0x1008, 4, col)));
        sim.run();
        let c = collector(&sim, col);
        assert_eq!(c.resps.len(), 2);
        assert_eq!(sim.now(), 3_000, "second read waits a cycle on the bank");
    }

    #[test]
    fn reads_and_writes_share_cycle() {
        let (mut sim, spm, col) = setup(ScratchpadConfig::default());
        sim.post(spm, 0, MemMsg::Req(MemReq::read(0, 0x1000, 4, col)));
        sim.post(spm, 0, MemMsg::Req(MemReq::write(1, 0x1100, vec![1], col)));
        sim.run();
        assert_eq!(sim.now(), 2_000, "1R+1W issue together");
    }

    #[test]
    fn peek_poke_backdoor() {
        let mut spm = Scratchpad::new("s", ScratchpadConfig::default(), 0, 64);
        spm.poke(8, &[1, 2, 3]);
        assert_eq!(spm.peek(8, 3), &[1, 2, 3]);
    }

    #[test]
    fn zero_size_and_zero_ports_are_rejected() {
        assert!(Scratchpad::try_new("s", ScratchpadConfig::default(), 0, 0).is_err());
        let cfg = ScratchpadConfig {
            read_ports: 0,
            ..ScratchpadConfig::default()
        };
        match Scratchpad::try_new("s", cfg, 0, 64) {
            Err(SimError::Config(c)) => assert_eq!(c.field, "read_ports"),
            other => panic!("expected config error, got {other:?}"),
        }
    }

    #[test]
    fn armed_bitflips_corrupt_reads_deterministically() {
        let run = |seed: u64| {
            let mut sim: Simulation<MemMsg> = Simulation::new();
            let mut spm = Scratchpad::new("spm", ScratchpadConfig::default(), 0x1000, 0x1000);
            spm.poke(0x1000, &[0u8; 8]);
            spm.set_fault(&salam_fault::FaultPlan {
                mem_bitflip_rate: 1.0,
                ..salam_fault::FaultPlan::seeded(seed)
            });
            let spm = sim.add_component(spm);
            let col = sim.add_component(Collector::new());
            sim.post(spm, 0, MemMsg::Req(MemReq::read(1, 0x1000, 8, col)));
            sim.run();
            collector(&sim, col).resps[0].data.clone().unwrap()
        };
        let a = run(11);
        assert_eq!(a, run(11), "same seed, same corruption");
        assert_ne!(a, vec![0u8; 8], "rate 1.0 must corrupt the read");
        let flipped: u32 = a.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips per injection");
    }

    #[test]
    fn armed_delays_slow_responses_but_keep_data() {
        let mut sim: Simulation<MemMsg> = Simulation::new();
        let mut spm = Scratchpad::new("spm", ScratchpadConfig::default(), 0x1000, 0x1000);
        spm.poke(0x1000, &[9u8; 4]);
        spm.set_fault(&salam_fault::FaultPlan {
            mem_delay_rate: 1.0,
            mem_delay_cycles: 7,
            ..salam_fault::FaultPlan::seeded(1)
        });
        let spm = sim.add_component(spm);
        let col = sim.add_component(Collector::new());
        sim.post(spm, 0, MemMsg::Req(MemReq::read(1, 0x1000, 4, col)));
        sim.run();
        let c = collector(&sim, col);
        assert_eq!(c.resps[0].data.as_deref(), Some(&[9u8; 4][..]));
        // 1 tick-align + 1 latency + 7 injected = 9 cycles.
        assert_eq!(c.resp_ticks[0], 9_000);
    }
}
