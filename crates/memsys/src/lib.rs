//! # memsys
//!
//! A packet-based memory system built on the [`sim_core`] kernel, standing in
//! for the gem5 memory infrastructure that gem5-SALAM plugs into:
//!
//! * [`Scratchpad`] — multi-ported SRAM with configurable latency, port
//!   counts and bank partitioning; the accelerator-private and cluster-shared
//!   SPMs of the paper.
//! * [`Cache`] — set-associative write-back cache with MSHRs, usable as
//!   private L1 or shared LLC.
//! * [`Dram`] — banked main memory with row-buffer timing and a shared data
//!   bus.
//! * [`Xbar`] — address-routed crossbar with configurable width and per-hop
//!   latency (the local/global crossbars of the accelerator cluster).
//! * [`BlockDma`] / [`StreamDma`] — the two DMA flavours gem5-SALAM offers.
//! * [`StreamBuffer`] — AXI-Stream-like FIFO with two-way backpressure,
//!   enabling direct accelerator-to-accelerator pipelines.
//! * [`MmrBlock`] — memory-mapped registers with doorbell notification, the
//!   control interface between host and accelerators.
//!
//! All components exchange [`MemMsg`] messages; an address map ([`AddrMap`])
//! routes requests. Every component is a [`sim_core::Component`], so full
//! systems are compositions inside one [`sim_core::Simulation`].
//!
//! # Example: write/read roundtrip through a crossbar into a scratchpad
//!
//! ```
//! use memsys::{AddrMap, MemMsg, Scratchpad, ScratchpadConfig, Xbar, test_util::Requester};
//! use sim_core::Simulation;
//!
//! let mut sim: Simulation<MemMsg> = Simulation::new();
//! let spm = sim.add_component(Scratchpad::new("spm", ScratchpadConfig::default(), 0x0, 0x1000));
//! let mut map = AddrMap::new();
//! map.add(0x0, 0x1000, spm);
//! let xbar = sim.add_component(Xbar::new("xbar", map, 1, 8));
//! let req = sim.add_component(Requester::new(xbar));
//! sim.post(req, 0, MemMsg::Start);
//! sim.run();
//! assert_eq!(sim.component_as::<Requester>(req).unwrap().ok, Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
mod dma;
mod dram;
mod fault;
mod mmr;
mod msg;
mod spm;
mod stream;
pub mod test_util;
mod xbar;

pub use addr::AddrMap;
pub use cache::{Cache, CacheConfig};
pub use dma::{BlockDma, DmaCmd, StreamDma, StreamDmaConfig};
pub use dram::{Dram, DramConfig};
pub use mmr::MmrBlock;
pub use msg::{MemMsg, MemOp, MemReq, MemResp};
pub use salam_fault::{FaultPlan, SimError};
pub use spm::{Scratchpad, ScratchpadConfig};
pub use stream::{StreamBuffer, StreamBufferConfig};
pub use xbar::Xbar;
