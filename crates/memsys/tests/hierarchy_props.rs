//! Property tests: the timed memory hierarchy is functionally equivalent to
//! a flat memory under arbitrary request interleavings. Interleavings come
//! from the in-tree seeded-case harness.

use salam_obs::det::{check_cases, SplitMix64};

use memsys::{Cache, CacheConfig, Dram, DramConfig, MemMsg, MemOp, MemReq};
use sim_core::Simulation;

#[derive(Debug, Clone)]
enum Access {
    Read { addr: u64 },
    Write { addr: u64, byte: u8 },
}

fn gen_accesses(g: &mut SplitMix64) -> Vec<Access> {
    let n = g.range_usize(1, 80);
    (0..n)
        .map(|_| {
            let addr = g.range_u64(0, 2048) * 4;
            if g.gen_bool(0.5) {
                Access::Read { addr }
            } else {
                Access::Write {
                    addr,
                    byte: g.next_u32() as u8,
                }
            }
        })
        .collect()
}

fn run_hierarchy(cfg: CacheConfig, accesses: &[Access]) -> (Vec<(u64, u8)>, Vec<u8>) {
    let mut sim: Simulation<MemMsg> = Simulation::new();
    let dram = sim.add_component(Dram::new("d", DramConfig::default(), 0, 1 << 20));
    let cache = sim.add_component(Cache::new("l1", cfg, dram));
    let col = sim.add_component(memsys::test_util::Collector::new());
    // Issue strictly in order with enough spacing that program order is
    // preserved at the cache (the flat model is sequential).
    for (i, a) in accesses.iter().enumerate() {
        let t = i as u64 * 200_000;
        match a {
            Access::Read { addr } => {
                sim.post(cache, t, MemMsg::Req(MemReq::read(i as u64, *addr, 4, col)));
            }
            Access::Write { addr, byte } => {
                sim.post(
                    cache,
                    t,
                    MemMsg::Req(MemReq::write(i as u64, *addr, vec![*byte; 4], col)),
                );
            }
        }
    }
    sim.run();
    // Drain everything back through the cache to observe dirty lines.
    let read_back_at = sim.now() + 1;
    let col2 = sim.add_component(memsys::test_util::Collector::new());
    for i in 0..2048u64 {
        sim.post(
            cache,
            read_back_at + i * 50_000,
            MemMsg::Req(MemReq::read(1 << 32 | i, i * 4, 4, col2)),
        );
    }
    sim.run();
    let c = sim
        .component_as::<memsys::test_util::Collector>(col)
        .unwrap();
    let read_results: Vec<(u64, u8)> = c
        .resps
        .iter()
        .filter(|r| r.op == MemOp::Read)
        .map(|r| (r.id, r.data.as_ref().unwrap()[0]))
        .collect();
    let c2 = sim
        .component_as::<memsys::test_util::Collector>(col2)
        .unwrap();
    let mut final_mem = vec![0u8; 2048];
    for r in &c2.resps {
        final_mem[(r.addr / 4) as usize] = r.data.as_ref().unwrap()[0];
    }
    (read_results, final_mem)
}

fn run_flat(accesses: &[Access]) -> (Vec<(u64, u8)>, Vec<u8>) {
    let mut mem = vec![0u8; 2048];
    let mut reads = Vec::new();
    for (i, a) in accesses.iter().enumerate() {
        match a {
            Access::Read { addr } => reads.push((i as u64, mem[(addr / 4) as usize])),
            Access::Write { addr, byte } => mem[(addr / 4) as usize] = *byte,
        }
    }
    (reads, mem)
}

/// A tiny thrashing cache still returns exactly the flat-memory values.
#[test]
fn tiny_cache_is_functionally_transparent() {
    check_cases("tiny_cache_is_functionally_transparent", 32, 0x31, |g| {
        let accesses = gen_accesses(g);
        let cfg = CacheConfig {
            size_bytes: 256,
            assoc: 1,
            ..CacheConfig::default()
        };
        let (got_reads, got_mem) = run_hierarchy(cfg, &accesses);
        let (want_reads, want_mem) = run_flat(&accesses);
        assert_eq!(got_reads, want_reads);
        assert_eq!(got_mem, want_mem);
    });
}

/// A large associative cache is equally transparent.
#[test]
fn large_cache_is_functionally_transparent() {
    check_cases("large_cache_is_functionally_transparent", 32, 0x32, |g| {
        let accesses = gen_accesses(g);
        let cfg = CacheConfig::default().with_size(64 * 1024);
        let (got_reads, got_mem) = run_hierarchy(cfg, &accesses);
        let (want_reads, want_mem) = run_flat(&accesses);
        assert_eq!(got_reads, want_reads);
        assert_eq!(got_mem, want_mem);
    });
}

#[test]
fn two_level_hierarchy_composes() {
    // L1 -> L2 -> DRAM: caches compose without any special casing, and the
    // L2 absorbs L1 misses (strictly fewer DRAM reads than L1 misses).
    let mut sim: Simulation<MemMsg> = Simulation::new();
    let dram = sim.add_component(Dram::new("dram", DramConfig::default(), 0, 1 << 20));
    let l2 = sim.add_component(Cache::new(
        "l2",
        CacheConfig::default().with_size(32 * 1024),
        dram,
    ));
    let l1 = sim.add_component(Cache::new("l1", CacheConfig::default().with_size(1024), l2));
    let col = sim.add_component(memsys::test_util::Collector::new());
    // Two passes over 4 kB: the second pass misses L1 (1 kB) but hits L2.
    let mut t = 0u64;
    let mut id = 0u64;
    for _pass in 0..2 {
        for i in 0..64u64 {
            sim.post(l1, t, MemMsg::Req(MemReq::read(id, i * 64, 4, col)));
            id += 1;
            t += 100_000;
        }
    }
    sim.run();
    let c = sim
        .component_as::<memsys::test_util::Collector>(col)
        .unwrap();
    assert_eq!(c.resps.len(), 128);
    let l1c = sim.component_as::<Cache>(l1).unwrap();
    let l2c = sim.component_as::<Cache>(l2).unwrap();
    assert!(l1c.misses() > 64, "1 kB L1 thrashes across 4 kB");
    assert_eq!(l2c.misses(), 64, "L2 misses only on the first pass");
    assert!(l2c.hits() > 0, "second-pass L1 misses hit in L2");
}
