//! Test-only serialization for process-global environment mutation.
//!
//! `std::env::set_var` mutates process-global state while the test harness
//! runs `#[test]` functions on many threads: two tests touching the same
//! variable — or one mutating it while another reads it through
//! [`crate::worker_count`] / [`crate::ResultCache::default_dir`] — race.
//! Every env-mutating test takes [`lock`] for its whole body and wraps the
//! mutation in an [`EnvGuard`] so the previous state is restored even if
//! the test panics.

use std::sync::{Mutex, MutexGuard};

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Serializes environment-mutating tests against each other. A poisoned
/// lock is still a valid lock for this purpose (the panicking test's guard
/// already restored the variable), so poisoning is ignored.
pub(crate) fn lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII: sets `var` to `value` on construction, restores the previous
/// state — prior value or unset — on drop.
pub(crate) struct EnvGuard {
    var: &'static str,
    prev: Option<std::ffi::OsString>,
}

impl EnvGuard {
    pub(crate) fn set(var: &'static str, value: &str) -> Self {
        let prev = std::env::var_os(var);
        std::env::set_var(var, value);
        EnvGuard { var, prev }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match &self.prev {
            Some(v) => std::env::set_var(self.var, v),
            None => std::env::remove_var(self.var),
        }
    }
}
