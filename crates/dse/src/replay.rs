//! The trace-replay fast path for sweeps: simulate once, re-schedule in
//! milliseconds.
//!
//! A sweep over *replay-safe* axes — FU pool limits, SPM port counts, SPM
//! latency, outstanding-access caps — never changes *which* dynamic
//! operations a kernel executes or *what* they depend on; it only changes
//! when the scheduler can issue them. So instead of re-simulating every
//! point, this module records each kernel's dependence stream **once** at a
//! normalized baseline configuration ([`baseline_config`]) and re-schedules
//! the recorded DAG analytically with [`salam_replay::replay`] for every
//! point that differs from the sweep base only along safe axes. Points that
//! touch an unsafe knob (reservation window, clock, hazard model, hardware
//! profile, …) fall back to the full event engine, so a mixed sweep is
//! byte-identical to a full-sim sweep for exactly those points.
//!
//! Every replayed cycle count is cross-checked against the static
//! scheduling lower bound ([`salam_verify::static_lower_bound`], PR 5): a
//! replay below the provable floor is a hard modeling error, and the point
//! silently falls back to full simulation (`engine = sim-fallback`) rather
//! than reporting an impossible number.
//!
//! Results are cached like any other sweep, but in replay-specific domains
//! (`replay/<kernel>` for points, `replay-baseline/<kernel>` for the
//! recorded bundles), so a replay row can never shadow — or be shadowed by
//! — a full-simulation entry for the same configuration.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hw_profile::SramSpec;
use machsuite::BuiltKernel;
use salam::standalone::{run_kernel, try_run_kernel_profiled, StandaloneConfig};
use salam::RunReport;
use salam_cdfg::{FuConstraints, StaticCdfg};
use salam_obs::json::Value;
use salam_obs::DepStream;
use salam_replay::{ReplayConfig, ReplayOutcome};
use salam_verify::{static_lower_bound, BoundConfig};

use crate::cache::{CacheId, CachePayload};
use crate::spec::{KernelSpec, StandalonePoint};
use crate::{run_sweep, DseOptions, PointOutcome, SweepJob};

/// Which execution model produced a point's report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Full event-engine simulation (unsafe-axis point, or the baseline
    /// itself).
    Sim,
    /// Analytic re-schedule of the recorded dependence stream.
    Replay,
    /// Replay was attempted but rejected — it errored or undercut the
    /// static lower bound — and the point re-ran on the event engine.
    SimFallback,
}

impl EngineKind {
    /// Stable row label (`sim` / `replay` / `sim-fallback`).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Sim => "sim",
            EngineKind::Replay => "replay",
            EngineKind::SimFallback => "sim-fallback",
        }
    }
}

/// Options for a replay-accelerated sweep.
#[derive(Debug, Clone, Default)]
pub struct ReplayOptions {
    /// The underlying sweep engine options (workers, cache, retries).
    pub inner: DseOptions,
    /// Accuracy-check mode: every replayed point *also* runs the full
    /// event engine, and the row records the measured cycle error and the
    /// wall-clock speedup. Replay results are not cached in this mode —
    /// the timings would be meaningless on a warm cache.
    pub check: bool,
}

/// Per-point provenance of a replay-accelerated sweep.
#[derive(Debug, Clone, Copy)]
pub struct PointProvenance {
    /// Which engine produced the report.
    pub engine: EngineKind,
    /// The static lower bound the replayed count was checked against
    /// (`None` for plain-sim points).
    pub bound: Option<u64>,
    /// Measured cycle error vs the event engine, in percent (check mode).
    pub err_pct: Option<f64>,
    /// Measured wall-clock speedup vs the event engine (check mode).
    pub speedup: Option<f64>,
}

/// A completed replay-accelerated sweep: one outcome per point in the
/// submitted order, plus per-point provenance and rollup counts.
#[derive(Debug)]
pub struct ReplayRun {
    /// One outcome per point, in submission order.
    pub outcomes: Vec<PointOutcome<RunReport>>,
    /// Per-point engine/bound/error provenance, parallel to `outcomes`.
    pub provenance: Vec<PointProvenance>,
    /// Points answered by analytic replay.
    pub replayed: usize,
    /// Points answered by full simulation (unsafe axes or baseline reuse).
    pub simulated: usize,
    /// Points where replay was rejected and simulation took over.
    pub fallbacks: usize,
    /// Baseline recordings that actually simulated (the rest were cached).
    pub baseline_misses: usize,
    /// Cache hits across baseline, replay and sim sub-sweeps.
    pub hits: usize,
    /// Cache misses across baseline, replay and sim sub-sweeps.
    pub misses: usize,
    /// Failed points (panicked out of the retry budget).
    pub failed: usize,
    /// Statically rejected points.
    pub invalid: usize,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl ReplayRun {
    /// Deterministic summary pairs for [`crate::SweepTable::set_summary`]
    /// — environment facts (wall time) are excluded so exported tables
    /// stay byte-comparable across runs.
    pub fn summary_pairs(&self) -> Vec<(String, String)> {
        [
            ("points", self.outcomes.len()),
            ("replayed", self.replayed),
            ("simulated", self.simulated),
            ("fallbacks", self.fallbacks),
            ("failed", self.failed),
            ("invalid", self.invalid),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }

    /// `replayed=… simulated=… fallbacks=…` plus cache telemetry — one
    /// stable line for logs.
    pub fn summary(&self) -> String {
        format!(
            "points={} replayed={} simulated={} fallbacks={} failed={} invalid={} \
             hits={} misses={} baseline_misses={} wall={:.3}s",
            self.outcomes.len(),
            self.replayed,
            self.simulated,
            self.fallbacks,
            self.failed,
            self.invalid,
            self.hits,
            self.misses,
            self.baseline_misses,
            self.wall.as_secs_f64()
        )
    }
}

/// Projects a configuration onto its *recording baseline*: every
/// replay-safe knob is normalized to the [`StandaloneConfig::default`]
/// value, every unsafe knob is kept. Two configurations with equal
/// baselines differ only along replay-safe axes — the recorded dependence
/// stream of one is valid for re-scheduling the other.
///
/// Replay-safe knobs (normalized away): FU constraints, SPM read/write
/// ports, SPM latency, outstanding read/write caps. Everything else —
/// reservation window, clock, pipelining, hazard model, hardware profile,
/// SPM word width — stays, conservatively splitting the baseline.
pub fn baseline_config(cfg: &StandaloneConfig) -> StandaloneConfig {
    let defaults = StandaloneConfig::default();
    let mut base = cfg.clone();
    base.constraints = FuConstraints::unconstrained();
    base.spm_latency = defaults.spm_latency;
    base.spm_read_ports = defaults.spm_read_ports;
    base.spm_write_ports = defaults.spm_write_ports;
    base.engine.max_outstanding_reads = defaults.engine.max_outstanding_reads;
    base.engine.max_outstanding_writes = defaults.engine.max_outstanding_writes;
    base
}

/// Whether `point` differs from `base` only along replay-safe axes — i.e.
/// whether a stream recorded at `base`'s baseline re-schedules `point`
/// exactly.
pub fn replay_safe(point: &StandaloneConfig, base: &StandaloneConfig) -> bool {
    baseline_config(point).canonical_repr() == baseline_config(base).canonical_repr()
}

/// Lowers a standalone configuration to the analytic scheduler's knobs.
/// The FU pool comes from the point's own CDFG elaboration, so constraint
/// axes bind exactly as they would in the event engine.
pub fn replay_config(cfg: &StandaloneConfig, cdfg: &StaticCdfg) -> ReplayConfig {
    ReplayConfig {
        reservation_entries: cfg.engine.reservation_entries,
        max_outstanding_reads: cfg.engine.max_outstanding_reads,
        max_outstanding_writes: cfg.engine.max_outstanding_writes,
        pipelined_fus: cfg.engine.pipelined_fus,
        mem_latency: cfg.spm_latency,
        spm_read_ports: cfg.spm_read_ports,
        spm_write_ports: cfg.spm_write_ports,
        fu_pool: cdfg.fu_counts().collect(),
        // The DSE layer only consumes cycles + attribution; skip the
        // retimed-stream rebuild (it costs more than the schedule).
        want_retimed: false,
        ..ReplayConfig::default()
    }
}

/// Derives per-block dynamic trip counts from a recorded stream: every
/// instruction executes exactly once per execution of its block, so a
/// block's trip count is the execution count of its most-recorded
/// instruction (phis and terminators never enter the stream, hence the
/// max rather than "first instruction").
pub fn trips_from_trace(
    f: &salam_ir::Function,
    stream: &DepStream,
) -> HashMap<salam_ir::BlockId, u64> {
    let mut per_inst: HashMap<u32, u64> = HashMap::new();
    for op in stream.ops() {
        *per_inst.entry(op.meta.inst).or_insert(0) += 1;
    }
    let mut trips = HashMap::new();
    for (bid, block) in f.blocks() {
        let t = block
            .insts
            .iter()
            .map(|id| per_inst.get(&(id.index() as u32)).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        if t > 0 {
            trips.insert(bid, t);
        }
    }
    trips
}

/// The recorded bundle for one kernel: the baseline report (energies,
/// verification, schedule-independent counters) plus the dependence
/// stream that replay re-schedules.
#[derive(Debug, Clone)]
pub struct ReplayBaseline {
    /// The baseline configuration's full report.
    pub report: RunReport,
    /// The recorded dependence stream (with replay metadata).
    pub trace: DepStream,
}

impl CachePayload for ReplayBaseline {
    fn payload_to_json(&self) -> String {
        format!(
            "{{\"report\": {}, \"trace\": {}}}",
            self.report.to_json().trim_end(),
            self.trace.to_json().trim_end()
        )
    }

    fn payload_from_json(v: &Value) -> Result<Self, String> {
        let report = RunReport::from_json_value(v.get("report").ok_or("missing 'report'")?)?;
        let trace = DepStream::from_json_value(v.get("trace").ok_or("missing 'trace'")?)?;
        Ok(ReplayBaseline { report, trace })
    }
}

/// One replayed point's cached result: the synthesized report plus the
/// engine provenance, so a cache hit still knows how the row was produced.
#[derive(Debug, Clone)]
pub struct ReplayedPoint {
    /// `Replay` or `SimFallback`.
    pub engine: EngineKind,
    /// The point's report (synthesized from replay, or full-sim fallback).
    pub report: RunReport,
    /// The static lower bound the replayed count was checked against.
    pub bound: u64,
    /// Measured cycle error in percent (check mode only).
    pub err_pct: Option<f64>,
    /// Measured wall-clock speedup (check mode only).
    pub speedup: Option<f64>,
}

impl CachePayload for ReplayedPoint {
    fn payload_to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x}"));
        format!(
            "{{\"engine\": \"{}\", \"bound\": {}, \"err_pct\": {}, \"speedup\": {}, \"report\": {}}}",
            self.engine.label(),
            self.bound,
            opt(self.err_pct),
            opt(self.speedup),
            self.report.to_json().trim_end()
        )
    }

    fn payload_from_json(v: &Value) -> Result<Self, String> {
        let engine = match v.get("engine").and_then(Value::as_str) {
            Some("replay") => EngineKind::Replay,
            Some("sim-fallback") => EngineKind::SimFallback,
            Some(other) => return Err(format!("unknown engine kind '{other}'")),
            None => return Err("missing 'engine'".to_string()),
        };
        let bound = v
            .get("bound")
            .and_then(Value::as_f64)
            .ok_or("missing 'bound'")? as u64;
        let opt = |key: &str| match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("non-numeric '{key}'")),
        };
        Ok(ReplayedPoint {
            engine,
            report: RunReport::from_json_value(v.get("report").ok_or("missing 'report'")?)?,
            bound,
            err_pct: opt("err_pct")?,
            speedup: opt("speedup")?,
        })
    }
}

/// Records one kernel's baseline bundle (full simulation with dependence
/// recording on), cached under `replay-baseline/<kernel>`.
struct BaselineJob {
    kernel: KernelSpec,
    config: StandaloneConfig,
}

impl SweepJob for BaselineJob {
    type Output = ReplayBaseline;

    fn cache_id(&self) -> CacheId {
        CacheId::new(
            format!("replay-baseline/{}", self.kernel.id),
            self.config.canonical_repr(),
        )
    }

    fn validate(&self) -> Result<(), salam_verify::Diagnostic> {
        config_diagnostic(&self.config)
    }

    fn run(&self) -> ReplayBaseline {
        match try_run_kernel_profiled(&self.kernel.build(), &self.config) {
            Ok((report, trace)) => ReplayBaseline { report, trace },
            // The panic is caught by the sweep engine's isolation layer and
            // becomes this point's `failed:<cause>` row.
            Err(e) => panic!("{e}"),
        }
    }
}

/// One kernel's sweep-wide replay state, built once after the baseline is
/// recorded (or cache-loaded) and shared by every point of that kernel:
/// the resolved scheduler form of the trace and the dynamic trip counts —
/// neither depends on the point's configuration.
struct PreparedBaseline {
    report: RunReport,
    prepared: salam_replay::Prepared,
    trips: HashMap<salam_ir::BlockId, u64>,
    /// Memoized static lower bounds, keyed by the knobs the bound
    /// actually reads (SPM ports, FU pipelining, FU constraints); every
    /// other replay-safe axis leaves the floor unchanged, so points
    /// sharing those knobs share one computation.
    bounds: Mutex<HashMap<String, u64>>,
}

/// Re-schedules one point against its kernel's recorded baseline, cached
/// under `replay/<kernel>`.
struct ReplayPointJob {
    kernel: KernelSpec,
    config: StandaloneConfig,
    baseline: Arc<PreparedBaseline>,
    check: bool,
}

impl SweepJob for ReplayPointJob {
    type Output = ReplayedPoint;

    fn cache_id(&self) -> CacheId {
        CacheId::new(
            format!("replay/{}", self.kernel.id),
            self.config.canonical_repr(),
        )
    }

    fn validate(&self) -> Result<(), salam_verify::Diagnostic> {
        config_diagnostic(&self.config)
    }

    fn run(&self) -> ReplayedPoint {
        let kernel = self.kernel.build();
        let cfg = &self.config;
        let t_replay = Instant::now();
        let cdfg = StaticCdfg::elaborate(&kernel.func, &cfg.profile, &cfg.constraints);
        let attempt =
            salam_replay::replay_prepared(&self.baseline.prepared, &replay_config(cfg, &cdfg));
        // Cross-check against the provable static floor — derived from the
        // point's own elaboration and ports, with dynamic trip counts read
        // off the recorded trace. Memoized across the kernel's points on
        // the knobs the bound reads.
        let bound_key = format!(
            "r{}/w{}/p{}/{}",
            cfg.spm_read_ports,
            cfg.spm_write_ports,
            cfg.engine.pipelined_fus,
            cfg.constraints.canonical_repr()
        );
        let memoized = self
            .baseline
            .bounds
            .lock()
            .ok()
            .and_then(|m| m.get(&bound_key).copied());
        let bound = match memoized {
            Some(b) => b,
            None => {
                let b = static_lower_bound(
                    &kernel.func,
                    &cdfg,
                    &self.baseline.trips,
                    &BoundConfig {
                        read_ports: cfg.spm_read_ports,
                        write_ports: cfg.spm_write_ports,
                        pipelined_fus: cfg.engine.pipelined_fus,
                        reservation_entries: cfg.engine.reservation_entries,
                    },
                )
                .lower_bound;
                if let Ok(mut m) = self.baseline.bounds.lock() {
                    m.insert(bound_key, b);
                }
                b
            }
        };
        let outcome = match attempt {
            Ok(out) if out.cycles >= bound => out,
            // Replay error or a cycle count below the provable floor: the
            // analytic model is wrong for this point — full sim takes over.
            _ => {
                let report = run_kernel(&kernel, cfg);
                return ReplayedPoint {
                    engine: EngineKind::SimFallback,
                    report,
                    bound,
                    err_pct: None,
                    speedup: None,
                };
            }
        };
        let report = synthesize_report(&kernel, cfg, &cdfg, &self.baseline.report, outcome);
        let replay_wall = t_replay.elapsed();
        let (err_pct, speedup) = if self.check {
            let t_sim = Instant::now();
            let sim = run_kernel(&kernel, cfg);
            let sim_wall = t_sim.elapsed();
            let err =
                (report.cycles as f64 - sim.cycles as f64).abs() / sim.cycles.max(1) as f64 * 100.0;
            let ratio = sim_wall.as_secs_f64() / replay_wall.as_secs_f64().max(1e-9);
            (Some(err), Some(ratio))
        } else {
            (None, None)
        };
        ReplayedPoint {
            engine: EngineKind::Replay,
            report,
            bound,
            err_pct,
            speedup,
        }
    }
}

/// Assembles a full [`RunReport`] for a replayed schedule. Schedule-shaped
/// counters (cycles, attribution, FU occupancy, stall/port-reject cycles)
/// come from the replay; everything schedule-*independent* — op counts,
/// energies, byte traffic, verification — is inherited from the baseline
/// run, because a resource re-schedule executes exactly the same dynamic
/// operations on exactly the same data. Power rolls up from those energies
/// over the replayed runtime, area from the point's own elaboration.
fn synthesize_report(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
    cdfg: &StaticCdfg,
    baseline: &RunReport,
    out: ReplayOutcome,
) -> RunReport {
    let mut stats = baseline.stats.clone();
    stats.cycles = out.cycles;
    stats.new_exec_cycles = out.new_exec_cycles;
    stats.stall_cycles = out.stall_cycles;
    stats.port_reject_cycles = out.port_reject_cycles;
    stats.attribution = out.attribution;
    stats.fu_busy_cycle_sum = out.fu_busy_cycle_sum.into_iter().collect();
    stats.fu_pool = cdfg.fu_counts().collect();
    stats.depstream = None;
    stats.timeline = Vec::new();
    // Same SPM sizing rule as the standalone harness, under the point's
    // port/word knobs.
    let (lo, hi) = kernel.init_span();
    let footprint = (hi.saturating_sub(lo)).next_power_of_two().max(1024);
    let spm = SramSpec::new(footprint, cfg.spm_word_bytes)
        .with_ports(cfg.spm_read_ports, cfg.spm_write_ports);
    RunReport::assemble(
        &kernel.name,
        &stats,
        cdfg,
        &cfg.profile,
        Some(&spm),
        cfg.engine.clock_period_ps,
        baseline.verified,
    )
}

/// Records one kernel at `cfg`'s baseline projection and re-schedules it
/// analytically at `cfg` — the single-kernel entry point behind
/// `salam_report --diff replay`. Returns the synthesized report plus the
/// recorded baseline stream (for critical-path analysis on the replayed
/// side).
///
/// # Errors
///
/// A message when the baseline recording fails, the replay is rejected,
/// or the replayed cycle count undercuts the static lower bound (the
/// sweep path falls back to full simulation on these; a debugging CLI
/// wants the reason instead).
pub fn replay_one(
    kernel: &BuiltKernel,
    cfg: &StandaloneConfig,
) -> Result<(RunReport, DepStream), String> {
    let base = baseline_config(cfg);
    let (base_report, trace) =
        try_run_kernel_profiled(kernel, &base).map_err(|e| format!("baseline recording: {e}"))?;
    let cdfg = StaticCdfg::elaborate(&kernel.func, &cfg.profile, &cfg.constraints);
    let out = salam_replay::replay(&trace, &replay_config(cfg, &cdfg))
        .map_err(|e| format!("replay rejected: {e}"))?;
    let trips = trips_from_trace(&kernel.func, &trace);
    let bound = static_lower_bound(
        &kernel.func,
        &cdfg,
        &trips,
        &BoundConfig {
            read_ports: cfg.spm_read_ports,
            write_ports: cfg.spm_write_ports,
            pipelined_fus: cfg.engine.pipelined_fus,
            reservation_entries: cfg.engine.reservation_entries,
        },
    )
    .lower_bound;
    if out.cycles < bound {
        return Err(format!(
            "replayed {} cycles undercuts the static lower bound {bound}",
            out.cycles
        ));
    }
    Ok((
        synthesize_report(kernel, cfg, &cdfg, &base_report, out),
        trace,
    ))
}

/// Maps a rejected configuration to the sweep engine's `C001` diagnostic
/// (same contract as [`StandalonePoint::validate`]).
fn config_diagnostic(cfg: &StandaloneConfig) -> Result<(), salam_verify::Diagnostic> {
    use salam_verify::{codes, Diagnostic, Span};
    cfg.validate().map_err(|e| match e {
        salam::SimError::Config(c) => Diagnostic::error(
            codes::C001,
            Span::default(),
            format!("{}.{}: {}", c.component, c.field, c.detail),
        ),
        other => Diagnostic::error(codes::C001, Span::default(), other.to_string()),
    })
}

/// Runs a sweep with the replay fast path: points that differ from `base`
/// only along replay-safe axes are re-scheduled from a per-kernel recorded
/// baseline; everything else runs the full event engine. Outcomes come
/// back in the submitted point order, each tagged with its engine.
///
/// The `base` configuration anchors eligibility — it is the configuration
/// the sweep's axes perturb (usually [`SweepSpec::new`]'s base). Pass the
/// same base that produced the points, or every point degenerates to full
/// simulation.
///
/// [`SweepSpec::new`]: crate::SweepSpec::new
pub fn run_replay_sweep(
    points: &[StandalonePoint],
    base: &StandaloneConfig,
    opts: &ReplayOptions,
) -> ReplayRun {
    let t0 = Instant::now();
    let base_key = baseline_config(base).canonical_repr();

    // Partition: replay-eligible vs full-sim, preserving submitted order.
    let mut eligible: Vec<usize> = Vec::new();
    let mut plain: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if baseline_config(&p.config).canonical_repr() == base_key {
            eligible.push(i);
        } else {
            plain.push(i);
        }
    }

    // Record (or cache-load) one baseline bundle per kernel with eligible
    // points. Baselines run at the *normalized* configuration so every
    // sweep over the same unsafe knobs shares them.
    let baseline_cfg = baseline_config(base);
    let mut baseline_jobs: Vec<BaselineJob> = Vec::new();
    for &i in &eligible {
        let id = &points[i].kernel.id;
        if !baseline_jobs.iter().any(|j| &j.kernel.id == id) {
            baseline_jobs.push(BaselineJob {
                kernel: points[i].kernel.clone(),
                config: baseline_cfg.clone(),
            });
        }
    }
    let baseline_run = run_sweep(&baseline_jobs, &opts.inner);
    // Resolve each usable baseline into its sweep-wide shared form once:
    // the prepared scheduler stream and the trace's trip counts are the
    // same for every point of the kernel. A trace the scheduler rejects
    // outright demotes the kernel to plain simulation below.
    let mut baselines: HashMap<String, (Arc<PreparedBaseline>, bool)> = HashMap::new();
    for (job, outcome) in baseline_jobs.iter().zip(&baseline_run.outcomes) {
        if let Some(b) = outcome.payload() {
            if let Ok(prepared) = salam_replay::Prepared::new(&b.trace) {
                let trips = trips_from_trace(&job.kernel.build().func, &b.trace);
                baselines.insert(
                    job.kernel.id.clone(),
                    (
                        Arc::new(PreparedBaseline {
                            report: b.report.clone(),
                            prepared,
                            trips,
                            bounds: Mutex::new(HashMap::new()),
                        }),
                        outcome.from_cache,
                    ),
                );
            }
        }
    }

    // Eligible points whose kernel has no usable baseline (recording
    // failed) demote to plain simulation; points *equal* to the baseline
    // reuse its report outright — recording never changes report fields,
    // so the row is byte-identical to a full-sim row.
    let baseline_canon = baseline_cfg.canonical_repr();
    let mut replay_idx: Vec<usize> = Vec::new();
    let mut reuse: HashMap<usize, (Arc<PreparedBaseline>, bool)> = HashMap::new();
    for &i in &eligible {
        match baselines.get(&points[i].kernel.id) {
            Some(b) if points[i].config.canonical_repr() == baseline_canon => {
                reuse.insert(i, b.clone());
            }
            Some(_) => replay_idx.push(i),
            None => plain.push(i),
        }
    }
    plain.sort_unstable();

    let replay_jobs: Vec<ReplayPointJob> = replay_idx
        .iter()
        .map(|&i| ReplayPointJob {
            kernel: points[i].kernel.clone(),
            config: points[i].config.clone(),
            baseline: baselines[&points[i].kernel.id].0.clone(),
            check: opts.check,
        })
        .collect();
    let replay_opts = if opts.check {
        // Timings are only honest when every replayed point actually runs.
        opts.inner.clone().without_cache()
    } else {
        opts.inner.clone()
    };
    let replay_run = run_sweep(&replay_jobs, &replay_opts);

    let plain_points: Vec<StandalonePoint> = plain.iter().map(|&i| points[i].clone()).collect();
    let plain_run = run_sweep(&plain_points, &opts.inner);

    // Reassemble in submitted order.
    let mut slots: Vec<Option<(PointOutcome<RunReport>, PointProvenance)>> =
        (0..points.len()).map(|_| None).collect();
    for (&i, outcome) in replay_idx.iter().zip(replay_run.outcomes) {
        let provenance = match outcome.payload() {
            Some(p) => PointProvenance {
                engine: p.engine,
                bound: Some(p.bound),
                err_pct: p.err_pct,
                speedup: p.speedup,
            },
            None => PointProvenance {
                engine: EngineKind::Replay,
                bound: None,
                err_pct: None,
                speedup: None,
            },
        };
        let from_cache = outcome.from_cache;
        let result = outcome.result.map(|p| p.report);
        slots[i] = Some((PointOutcome { result, from_cache }, provenance));
    }
    // A baseline-equal point inherits the baseline's result *and* its
    // cache provenance: on a cold run it was simulated, not hit.
    for (&i, (b, from_cache)) in &reuse {
        slots[i] = Some((
            PointOutcome {
                result: Ok(b.report.clone()),
                from_cache: *from_cache,
            },
            PointProvenance {
                engine: EngineKind::Sim,
                bound: None,
                err_pct: None,
                speedup: None,
            },
        ));
    }
    for (&i, outcome) in plain.iter().zip(plain_run.outcomes) {
        slots[i] = Some((
            outcome,
            PointProvenance {
                engine: EngineKind::Sim,
                bound: None,
                err_pct: None,
                speedup: None,
            },
        ));
    }

    let mut run = ReplayRun {
        outcomes: Vec::with_capacity(points.len()),
        provenance: Vec::with_capacity(points.len()),
        replayed: 0,
        simulated: 0,
        fallbacks: 0,
        baseline_misses: baseline_run.misses + baseline_run.corrupt,
        hits: baseline_run.hits
            + replay_run.hits
            + plain_run.hits
            + reuse.values().filter(|(_, hit)| *hit).count(),
        misses: replay_run.misses + replay_run.corrupt + plain_run.misses + plain_run.corrupt,
        failed: baseline_run.failed + replay_run.failed + plain_run.failed,
        invalid: replay_run.invalid + plain_run.invalid,
        wall: Duration::default(),
    };
    for slot in slots {
        let (outcome, provenance) = slot.expect("every point assigned exactly once");
        if outcome.payload().is_some() {
            match provenance.engine {
                EngineKind::Replay => run.replayed += 1,
                EngineKind::Sim => run.simulated += 1,
                EngineKind::SimFallback => run.fallbacks += 1,
            }
        }
        run.outcomes.push(outcome);
        run.provenance.push(provenance);
    }
    run.wall = t0.elapsed();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, SweepSpec};

    fn tiny_gemm() -> KernelSpec {
        KernelSpec::custom("gemm[n=4,u=1]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 })
        })
    }

    fn no_cache() -> ReplayOptions {
        ReplayOptions {
            inner: DseOptions::default().without_cache().with_workers(2),
            check: false,
        }
    }

    #[test]
    fn baseline_projection_normalizes_safe_axes_only() {
        let a = StandaloneConfig {
            spm_read_ports: 7,
            spm_latency: 9,
            constraints: FuConstraints::unconstrained().with_limit(hw_profile::FuKind::IntAdder, 1),
            ..StandaloneConfig::default()
        };
        assert!(replay_safe(&a, &StandaloneConfig::default()));

        let mut b = StandaloneConfig::default();
        b.engine.reservation_entries = 5;
        assert!(!replay_safe(&b, &StandaloneConfig::default()));
        b.spm_read_ports = 3;
        // Still the same unsafe projection as plain `reservation_entries=5`.
        let mut c = StandaloneConfig::default();
        c.engine.reservation_entries = 5;
        assert!(replay_safe(&b, &c));
    }

    #[test]
    fn replayed_points_match_the_event_engine_exactly_on_safe_axes() {
        let spec = SweepSpec::new("t", StandaloneConfig::default())
            .kernel(tiny_gemm())
            .axis(Axis::spm_ports(&[1, 2]))
            .axis(Axis::spm_latency(&[1, 3]));
        let points = spec.points();
        let run = run_replay_sweep(&points, &StandaloneConfig::default(), &no_cache());
        assert_eq!(run.outcomes.len(), 4);
        assert_eq!(run.fallbacks, 0, "no point may undercut the bound");
        for (point, (outcome, prov)) in points.iter().zip(run.outcomes.iter().zip(&run.provenance))
        {
            let sim = run_kernel(&point.kernel.build(), &point.config);
            let got = outcome.payload().expect("point succeeded");
            assert_eq!(
                got.cycles,
                sim.cycles,
                "replay must be cycle-exact for safe axes at {}",
                point.label()
            );
            if prov.engine == EngineKind::Replay {
                let bound = prov.bound.expect("replayed points carry a bound");
                assert!(got.cycles >= bound);
                assert_eq!(got.stats.attribution.total(), got.cycles);
            }
        }
        // The default-config point reuses the baseline simulation; the
        // others replay.
        assert_eq!(run.simulated, 1);
        assert_eq!(run.replayed, 3);
    }

    #[test]
    fn unsafe_axis_points_are_byte_identical_to_full_sim() {
        let spec = SweepSpec::new("t", StandaloneConfig::default())
            .kernel(tiny_gemm())
            .axis(Axis::reservation_entries(&[8, 128]))
            .axis(Axis::spm_ports(&[1, 2]));
        let points = spec.points();
        let run = run_replay_sweep(&points, &StandaloneConfig::default(), &no_cache());
        for (i, point) in points.iter().enumerate() {
            // Unsafe-axis points simulate; so does the point equal to its
            // own baseline (it reuses the baseline's simulation).
            let expected_engine = if point.config.engine.reservation_entries == 8
                || point.config.canonical_repr() == baseline_config(&point.config).canonical_repr()
            {
                EngineKind::Sim
            } else {
                EngineKind::Replay
            };
            assert_eq!(
                run.provenance[i].engine,
                expected_engine,
                "engine choice at {}",
                point.label()
            );
            if run.provenance[i].engine == EngineKind::Sim {
                let sim = run_kernel(&point.kernel.build(), &point.config);
                assert_eq!(
                    run.outcomes[i].payload().expect("sim point ok").to_json(),
                    sim.to_json(),
                    "unsafe-axis point must be byte-identical to full sim at {}",
                    point.label()
                );
            }
        }
    }

    #[test]
    fn check_mode_measures_zero_error_for_exact_points() {
        let spec = SweepSpec::new("t", StandaloneConfig::default())
            .kernel(tiny_gemm())
            .axis(Axis::spm_ports(&[1]));
        let points = spec.points();
        let mut opts = no_cache();
        opts.check = true;
        let run = run_replay_sweep(&points, &StandaloneConfig::default(), &opts);
        let prov = run.provenance[0];
        assert_eq!(prov.engine, EngineKind::Replay);
        assert_eq!(prov.err_pct, Some(0.0));
        assert!(prov.speedup.is_some());
    }

    #[test]
    fn payloads_roundtrip_through_cache_json() {
        let kernel = tiny_gemm().build();
        let cfg = StandaloneConfig::default();
        let (report, trace) = try_run_kernel_profiled(&kernel, &cfg).expect("baseline runs");
        let b = ReplayBaseline {
            report: report.clone(),
            trace,
        };
        let text = b.payload_to_json();
        let v = salam_obs::json::parse(&text).expect("valid JSON");
        let back = ReplayBaseline::payload_from_json(&v).expect("parses back");
        assert_eq!(back.report.to_json(), b.report.to_json());
        assert_eq!(back.trace, b.trace);

        let p = ReplayedPoint {
            engine: EngineKind::Replay,
            report,
            bound: 42,
            err_pct: Some(1.5),
            speedup: None,
        };
        let text = p.payload_to_json();
        let v = salam_obs::json::parse(&text).expect("valid JSON");
        let back = ReplayedPoint::payload_from_json(&v).expect("parses back");
        assert_eq!(back.engine, EngineKind::Replay);
        assert_eq!(back.bound, 42);
        assert_eq!(back.err_pct, Some(1.5));
        assert_eq!(back.speedup, None);
        assert_eq!(back.report.to_json(), p.report.to_json());
    }
}
