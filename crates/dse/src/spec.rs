//! Sweep specification: deterministic parameter grids over standalone
//! accelerator configurations.
//!
//! A [`SweepSpec`] is kernels × axes. Each axis is an ordered list of
//! labelled settings (closures over [`StandaloneConfig`]); enumeration is
//! kernel-major with the **last axis varying fastest**, so a spec always
//! yields the same points in the same order — the foundation for both
//! byte-identical reports across worker counts and stable cache keys.

use std::sync::Arc;

use hw_profile::FuKind;
use machsuite::{Bench, BuiltKernel};
use salam::standalone::{run_kernel, StandaloneConfig};
use salam::RunReport;

use crate::cache::CacheId;
use crate::SweepJob;

/// A kernel the sweep can instantiate on any worker thread.
///
/// The `id` is part of the cache identity: it must uniquely describe the
/// kernel *including its parameters and dataset* (the bundled builders are
/// deterministic, seeded generators, so the id is sufficient). Builders
/// run once per point per worker — kernels are built where they run
/// instead of being shared across threads.
#[derive(Clone)]
pub struct KernelSpec {
    /// Stable identity, e.g. `gemm-ncubed` or `gemm[n=16,u=16]`.
    pub id: String,
    builder: Arc<dyn Fn() -> BuiltKernel + Send + Sync>,
}

impl std::fmt::Debug for KernelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSpec").field("id", &self.id).finish()
    }
}

impl KernelSpec {
    /// A standard MachSuite benchmark instance.
    pub fn bench(bench: Bench) -> Self {
        KernelSpec {
            id: bench.label().to_ascii_lowercase(),
            builder: Arc::new(move || bench.build_standard()),
        }
    }

    /// A custom kernel. `id` must change whenever the built kernel does.
    pub fn custom(
        id: impl Into<String>,
        builder: impl Fn() -> BuiltKernel + Send + Sync + 'static,
    ) -> Self {
        KernelSpec {
            id: id.into(),
            builder: Arc::new(builder),
        }
    }

    /// Instantiates the kernel.
    pub fn build(&self) -> BuiltKernel {
        (self.builder)()
    }
}

type Apply = Arc<dyn Fn(&mut StandaloneConfig) + Send + Sync>;

/// One sweep dimension: a name (the report column) and an ordered list of
/// labelled settings.
#[derive(Clone)]
pub struct Axis {
    /// Column name, e.g. `ports` or `fmul`.
    pub name: String,
    settings: Vec<(String, Apply)>,
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("labels", &self.labels().collect::<Vec<_>>())
            .finish()
    }
}

impl Axis {
    /// An empty axis; add settings with [`Axis::setting`].
    pub fn new(name: impl Into<String>) -> Self {
        Axis {
            name: name.into(),
            settings: Vec::new(),
        }
    }

    /// Renames the axis (the report column header) — e.g. the paper calls
    /// the `fp_mul_dp` pool limit simply `fmul`.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Appends a labelled setting.
    pub fn setting(
        mut self,
        label: impl Into<String>,
        apply: impl Fn(&mut StandaloneConfig) + Send + Sync + 'static,
    ) -> Self {
        self.settings.push((label.into(), Arc::new(apply)));
        self
    }

    /// Symmetric SPM read/write ports (the Fig. 14 knob).
    pub fn spm_ports(values: &[u32]) -> Self {
        values.iter().fold(Axis::new("ports"), |a, &v| {
            a.setting(v.to_string(), move |c| {
                c.spm_read_ports = v;
                c.spm_write_ports = v;
            })
        })
    }

    /// SPM access latency in cycles.
    pub fn spm_latency(values: &[u64]) -> Self {
        values.iter().fold(Axis::new("spm-lat"), |a, &v| {
            a.setting(v.to_string(), move |c| c.spm_latency = v)
        })
    }

    /// Reservation-window depth (the lookahead knob).
    pub fn reservation_entries(values: &[usize]) -> Self {
        values.iter().fold(Axis::new("window"), |a, &v| {
            a.setting(v.to_string(), move |c| c.engine.reservation_entries = v)
        })
    }

    /// Caps one functional-unit pool (the FU-constraint knob of the
    /// paper's co-design sweeps). Column name is the FU's stable name.
    pub fn fu_limit(kind: FuKind, values: &[u32]) -> Self {
        values.iter().fold(Axis::new(kind.name()), |a, &v| {
            a.setting(v.to_string(), move |c| {
                c.constraints = c.constraints.clone().with_limit(kind, v);
            })
        })
    }

    /// An on/off ablation knob.
    pub fn toggle(
        name: impl Into<String>,
        apply: impl Fn(&mut StandaloneConfig, bool) + Send + Sync + 'static,
    ) -> Self {
        let apply = Arc::new(apply);
        let on = apply.clone();
        Axis::new(name)
            .setting("off", move |c| apply(c, false))
            .setting("on", move |c| on(c, true))
    }

    /// Setting labels in order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.settings.iter().map(|(l, _)| l.as_str())
    }

    /// Number of settings.
    pub fn len(&self) -> usize {
        self.settings.len()
    }

    /// Whether the axis has no settings.
    pub fn is_empty(&self) -> bool {
        self.settings.is_empty()
    }
}

/// A deterministic parameter grid: kernels × axes over a base config.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (report titles, metric prefixes).
    pub name: String,
    base: StandaloneConfig,
    kernels: Vec<KernelSpec>,
    axes: Vec<Axis>,
}

impl SweepSpec {
    /// A sweep over `base`; add kernels and axes, then [`SweepSpec::points`].
    pub fn new(name: impl Into<String>, base: StandaloneConfig) -> Self {
        SweepSpec {
            name: name.into(),
            base,
            kernels: Vec::new(),
            axes: Vec::new(),
        }
    }

    /// Adds a kernel (outermost enumeration dimension).
    pub fn kernel(mut self, k: KernelSpec) -> Self {
        self.kernels.push(k);
        self
    }

    /// Adds an axis; later axes vary faster.
    pub fn axis(mut self, a: Axis) -> Self {
        assert!(!a.is_empty(), "axis '{}' has no settings", a.name);
        self.axes.push(a);
        self
    }

    /// Axis names in declaration order (the report's coordinate columns).
    pub fn axis_names(&self) -> Vec<String> {
        self.axes.iter().map(|a| a.name.clone()).collect()
    }

    /// Total number of points (kernels × settings product).
    pub fn point_count(&self) -> usize {
        self.kernels.len() * self.axes.iter().map(Axis::len).product::<usize>()
    }

    /// Enumerates every design point in canonical order: kernels outermost
    /// (in insertion order), then the axis grid with the last axis varying
    /// fastest — exactly nested-for-loop order.
    pub fn points(&self) -> Vec<StandalonePoint> {
        let combos: usize = self.axes.iter().map(Axis::len).product();
        let mut out = Vec::with_capacity(self.point_count());
        for kernel in &self.kernels {
            for combo in 0..combos {
                // Decode the mixed-radix index, last axis fastest.
                let mut idx = vec![0usize; self.axes.len()];
                let mut n = combo;
                for pos in (0..self.axes.len()).rev() {
                    idx[pos] = n % self.axes[pos].len();
                    n /= self.axes[pos].len();
                }
                let mut config = self.base.clone();
                let mut coords = Vec::with_capacity(self.axes.len());
                for (a, &i) in self.axes.iter().zip(&idx) {
                    let (label, apply) = &a.settings[i];
                    apply(&mut config);
                    coords.push((a.name.clone(), label.clone()));
                }
                out.push(StandalonePoint {
                    kernel: kernel.clone(),
                    config,
                    coords,
                });
            }
        }
        out
    }
}

/// One enumerated design point: a kernel plus the fully applied config and
/// the human-readable coordinates that produced it.
#[derive(Debug, Clone)]
pub struct StandalonePoint {
    /// The kernel to run.
    pub kernel: KernelSpec,
    /// The point's complete configuration.
    pub config: StandaloneConfig,
    /// `(axis name, setting label)` pairs in axis order.
    pub coords: Vec<(String, String)>,
}

impl StandalonePoint {
    /// A compact `kernel/axis=v/axis=v` label for metrics and logs.
    pub fn label(&self) -> String {
        let mut s = self.kernel.id.clone();
        for (k, v) in &self.coords {
            s.push_str(&format!("/{k}={v}"));
        }
        s
    }
}

impl SweepJob for StandalonePoint {
    type Output = RunReport;

    fn cache_id(&self) -> CacheId {
        CacheId::new(
            format!("standalone/{}", self.kernel.id),
            self.config.canonical_repr(),
        )
    }

    /// A nonsensical configuration (zero ports, zero word size, …) is
    /// rejected as a `C001` diagnostic instead of panicking a worker:
    /// axis grids routinely sweep a knob through zero.
    fn validate(&self) -> Result<(), salam_verify::Diagnostic> {
        use salam_verify::{codes, Diagnostic, Span};
        self.config.validate().map_err(|e| match e {
            salam::SimError::Config(c) => Diagnostic::error(
                codes::C001,
                Span::default(),
                format!("{}.{}: {}", c.component, c.field, c.detail),
            ),
            other => Diagnostic::error(codes::C001, Span::default(), other.to_string()),
        })
    }

    fn run(&self) -> RunReport {
        run_kernel(&self.kernel.build(), &self.config)
    }

    /// Records the point's cycle count into the sweep-wide `dse.point.cycles`
    /// histogram. Called for cache hits and fresh simulations alike, so the
    /// histogram is a pure function of the point set — independent of cache
    /// state, worker count and merge order.
    fn record_telemetry(&self, output: &RunReport, tel: &mut salam_telemetry::Telemetry) {
        tel.record("dse.point.cycles", output.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gemm() -> KernelSpec {
        KernelSpec::custom("gemm[n=4,u=1]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 })
        })
    }

    #[test]
    fn enumeration_is_nested_loop_order() {
        let spec = SweepSpec::new("t", StandaloneConfig::default())
            .kernel(tiny_gemm())
            .axis(Axis::spm_ports(&[1, 2]))
            .axis(Axis::spm_latency(&[1, 2, 4]));
        let pts = spec.points();
        assert_eq!(pts.len(), 6);
        assert_eq!(spec.point_count(), 6);
        let coords: Vec<String> = pts.iter().map(|p| p.label()).collect();
        assert_eq!(
            coords,
            [
                "gemm[n=4,u=1]/ports=1/spm-lat=1",
                "gemm[n=4,u=1]/ports=1/spm-lat=2",
                "gemm[n=4,u=1]/ports=1/spm-lat=4",
                "gemm[n=4,u=1]/ports=2/spm-lat=1",
                "gemm[n=4,u=1]/ports=2/spm-lat=2",
                "gemm[n=4,u=1]/ports=2/spm-lat=4",
            ]
        );
        // Settings really applied.
        assert_eq!(pts[0].config.spm_read_ports, 1);
        assert_eq!(pts[5].config.spm_latency, 4);
        assert_eq!(pts[5].config.spm_write_ports, 2);
    }

    #[test]
    fn no_axes_yields_one_point_per_kernel() {
        let spec = SweepSpec::new("t", StandaloneConfig::default())
            .kernel(tiny_gemm())
            .kernel(KernelSpec::bench(Bench::SpmvCrs));
        let pts = spec.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].kernel.id, "spmv");
    }

    #[test]
    fn distinct_points_have_distinct_cache_ids() {
        let spec = SweepSpec::new("t", StandaloneConfig::default())
            .kernel(tiny_gemm())
            .axis(Axis::spm_ports(&[1, 2, 4]))
            .axis(Axis::fu_limit(FuKind::FpMulF64, &[1, 2]));
        let pts = spec.points();
        let mut keys: Vec<u64> = pts.iter().map(|p| p.cache_id().key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), pts.len(), "cache keys must be unique");
    }

    #[test]
    fn point_runs_and_verifies() {
        let spec = SweepSpec::new("t", StandaloneConfig::default()).kernel(tiny_gemm());
        let pts = spec.points();
        let report = pts[0].run();
        assert!(report.verified);
        assert!(report.cycles > 0);
    }
}
