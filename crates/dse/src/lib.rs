//! `salam-dse` — the parallel design-space-exploration engine.
//!
//! The paper's headline results are parameter sweeps: FU constraints, SPM
//! ports and latency, DMA burst, crossbar width. This crate turns those
//! sweeps from serial, from-scratch loops into an engine that is
//!
//! * **parallel** — a `std::thread` worker pool ([`pool`]) fed by a
//!   channel job queue; worker count from `SALAM_JOBS`, default the
//!   machine's available parallelism;
//! * **incremental** — a persistent, content-addressed result cache
//!   ([`cache`]): FNV-1a over the kernel identity and the canonical
//!   configuration text maps each design point to a JSON entry under
//!   `target/dse-cache/`, so re-runs and resumed sweeps skip completed
//!   points, and corrupted entries are detected and re-simulated;
//! * **deterministic** — a [`SweepSpec`] enumerates its grid in a fixed
//!   order and results are reassembled in that order, so the report is
//!   byte-identical whether it ran on one worker or sixteen, from the
//!   cache or from scratch;
//! * **reportable** — [`report`] renders CSV/JSON/text tables, rolls every
//!   point's metrics into one [`salam_obs::MetricsRegistry`], and extracts
//!   the Pareto frontier over (cycles, area, power);
//! * **panic-isolated** — each job runs under `catch_unwind` with a bounded
//!   retry, so one diverging design point becomes a `failed:<cause>` row
//!   instead of killing a thousand-point campaign;
//! * **statically screened** — [`SweepJob::validate`] runs before the cache
//!   probe, so a point `salam-verify` rejects becomes an `invalid:<code>`
//!   row without consuming a simulation slot or a cache entry;
//! * **flow-pruned** — [`run_sweep_pruned`] simulates a small reference set
//!   first, then drops every point whose `salam-flow`-tightened static
//!   cycle bound proves it cannot beat a no-costlier reference: a
//!   `pruned:F005` row and a `pruned=` summary count instead of a
//!   simulation.
//!
//! Everything is std-only: the workspace stays offline-buildable.
//!
//! ```no_run
//! use salam_dse::{run_sweep, Axis, DseOptions, KernelSpec, SweepSpec};
//! use salam::standalone::StandaloneConfig;
//!
//! let spec = SweepSpec::new("ports", StandaloneConfig::default())
//!     .kernel(KernelSpec::bench(machsuite::Bench::GemmNcubed))
//!     .axis(Axis::spm_ports(&[1, 2, 4, 8]));
//! let run = run_sweep(&spec.points(), &DseOptions::default());
//! for (point, outcome) in spec.points().iter().zip(&run.outcomes) {
//!     match outcome.payload() {
//!         Some(r) => println!("{}: {} cycles", point.label(), r.cycles),
//!         None => println!("{}: {}", point.label(), outcome.failure_label().unwrap()),
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fnv;
pub mod pool;
pub mod prune;
pub mod replay;
pub mod report;
pub mod spec;
#[cfg(test)]
pub(crate) mod test_env;

pub use cache::{
    env_max_bytes, plan_evictions, CacheId, CachePayload, EntryMeta, Lookup, ResultCache,
    CACHE_FORMAT_VERSION,
};
pub use pool::{run_parallel, run_parallel_with, worker_count};
pub use prune::{run_sweep_pruned, PrunableJob, StaticProfile};
pub use replay::{
    baseline_config, replay_config, replay_one, replay_safe, run_replay_sweep, trips_from_trace,
    EngineKind, PointProvenance, ReplayBaseline, ReplayOptions, ReplayRun, ReplayedPoint,
};
pub use report::{metrics_rollup, objectives, pareto_frontier, SweepTable};
pub use spec::{Axis, KernelSpec, StandalonePoint, SweepSpec};

use std::path::PathBuf;
use std::time::{Duration, Instant};

use salam_telemetry::Telemetry;

/// One unit of sweep work: an identity for the cache and a way to produce
/// the result. Implemented by [`StandalonePoint`] for datapath+SPM runs;
/// experiment crates implement it for their own scenario types (the Fig. 16
/// cluster sweep does).
pub trait SweepJob: Sync {
    /// The cached result type.
    type Output: CachePayload + Send;

    /// The point's content identity. Equal ids ⇒ interchangeable results.
    fn cache_id(&self) -> CacheId;

    /// Static pre-flight check. A rejected point becomes an
    /// `invalid:<code>` row without consuming a simulation slot or a cache
    /// entry — the sweep engine never calls [`SweepJob::run`] (or even
    /// probes the cache) for it. The default accepts everything.
    fn validate(&self) -> Result<(), salam_verify::Diagnostic> {
        Ok(())
    }

    /// Simulates the point from scratch.
    fn run(&self) -> Self::Output;

    /// Records per-point telemetry (histograms, counters) into the
    /// sweep-wide registry. Called for every successful outcome — cache
    /// hits included — so whatever is recorded here is a pure function of
    /// the point set, independent of cache state and worker count. The
    /// default records nothing.
    fn record_telemetry(&self, _output: &Self::Output, _tel: &mut salam_telemetry::Telemetry) {}
}

/// References delegate, so sweep drivers can run arbitrary sub-slices
/// (e.g. [`run_sweep_pruned`]'s reference and survivor phases) without
/// cloning jobs.
impl<J: SweepJob> SweepJob for &J {
    type Output = J::Output;

    fn cache_id(&self) -> CacheId {
        (**self).cache_id()
    }

    fn validate(&self) -> Result<(), salam_verify::Diagnostic> {
        (**self).validate()
    }

    fn run(&self) -> Self::Output {
        (**self).run()
    }

    fn record_telemetry(&self, output: &Self::Output, tel: &mut salam_telemetry::Telemetry) {
        (**self).record_telemetry(output, tel)
    }
}

/// Engine options; the default reads everything from the environment.
#[derive(Debug, Clone)]
pub struct DseOptions {
    /// Worker threads; `None` uses [`worker_count`] (`SALAM_JOBS` / cores).
    pub workers: Option<usize>,
    /// Cache directory; `None` uses [`ResultCache::default_dir`]
    /// (`SALAM_DSE_CACHE` / `target/dse-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Disables the result cache entirely (every point simulates).
    pub no_cache: bool,
    /// Cache size cap in bytes; `None` uses `SALAM_DSE_CACHE_MAX_BYTES`
    /// ([`cache::env_max_bytes`]; absent means unbounded).
    pub cache_max_bytes: Option<u64>,
    /// Extra attempts after a job panics before recording it as failed.
    /// A panic can be an artifact of thread-local or timing state, so one
    /// retry is cheap insurance; a deterministic panic fails again and is
    /// reported with `attempts = retries + 1`.
    pub retries: u32,
    /// Spacing between retry attempts: seeded exponential backoff with
    /// full jitter, keyed by the job's cache identity so the schedule is a
    /// pure function of the point — identical across worker counts.
    /// `None` retries immediately (the historical behaviour).
    pub backoff: Option<salam_resilience::BackoffPolicy>,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            workers: None,
            cache_dir: None,
            no_cache: false,
            cache_max_bytes: None,
            retries: 1,
            backoff: None,
        }
    }
}

impl DseOptions {
    /// Explicit worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Explicit cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Cache disabled.
    pub fn without_cache(mut self) -> Self {
        self.no_cache = true;
        self
    }

    /// Explicit cache size cap in bytes.
    pub fn with_cache_max_bytes(mut self, bytes: u64) -> Self {
        self.cache_max_bytes = Some(bytes);
        self
    }

    /// Explicit retry budget for panicking jobs (0 disables retries).
    pub fn with_retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }

    /// Deterministic backoff between retry attempts.
    pub fn with_backoff(mut self, policy: salam_resilience::BackoffPolicy) -> Self {
        self.backoff = Some(policy);
        self
    }

    fn resolve_workers(&self) -> usize {
        self.workers.unwrap_or_else(worker_count).max(1)
    }

    fn resolve_cache(&self) -> Option<ResultCache> {
        if self.no_cache || std::env::var_os("SALAM_DSE_NO_CACHE").is_some_and(|v| v == "1") {
            return None;
        }
        Some(
            ResultCache::at(
                self.cache_dir
                    .clone()
                    .unwrap_or_else(ResultCache::default_dir),
            )
            .with_max_bytes(self.cache_max_bytes.or_else(cache::env_max_bytes)),
        )
    }
}

/// Why a design point produced no result: its job panicked on every
/// attempt. The cause is the panic payload (first line, truncated), the
/// attempt count includes the retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// First line of the panic message.
    pub cause: String,
    /// Total attempts made (1 + retries).
    pub attempts: u32,
}

impl JobFailure {
    /// The stable `failed:<cause>` row label used in sweep tables and CI
    /// output.
    pub fn label(&self) -> String {
        format!("failed:{}", self.cause)
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job failed after {} attempt{}: {}",
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.cause
        )
    }
}

/// Why a design point has no payload: its job panicked out of the retry
/// budget, a static pre-flight check rejected it before any simulation, or
/// flow-based pruning proved it can never win the sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum PointError {
    /// The job panicked on every attempt.
    Failed(JobFailure),
    /// [`SweepJob::validate`] rejected the point; it never simulated.
    Invalid(salam_verify::Diagnostic),
    /// [`run_sweep_pruned`] proved the point dominated by an
    /// already-simulated reference; it never simulated.
    Pruned(salam_verify::Diagnostic),
}

impl PointError {
    /// The stable row label: `failed:<cause>`, `invalid:<code>` or
    /// `pruned:<code>`.
    pub fn label(&self) -> String {
        match self {
            PointError::Failed(f) => f.label(),
            PointError::Invalid(d) => format!("invalid:{}", d.code),
            PointError::Pruned(d) => format!("pruned:{}", d.code),
        }
    }
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointError::Failed(j) => j.fmt(f),
            PointError::Invalid(d) => write!(f, "invalid design point: {d}"),
            PointError::Pruned(d) => write!(f, "pruned design point: {d}"),
        }
    }
}

/// One point's result plus its provenance.
#[derive(Debug, Clone)]
pub struct PointOutcome<T> {
    /// The simulation result (fresh or from the cache — byte-equivalent),
    /// the failure that exhausted the retry budget, or the diagnostic that
    /// invalidated the point before it ran.
    pub result: Result<T, PointError>,
    /// Served from the result cache without simulating.
    pub from_cache: bool,
}

impl<T> PointOutcome<T> {
    /// The payload, if the point succeeded.
    pub fn payload(&self) -> Option<&T> {
        self.result.as_ref().ok()
    }

    /// The failure, if the point's job panicked out.
    pub fn failure(&self) -> Option<&JobFailure> {
        match &self.result {
            Err(PointError::Failed(f)) => Some(f),
            _ => None,
        }
    }

    /// The diagnostic, if the point was statically rejected.
    pub fn invalid(&self) -> Option<&salam_verify::Diagnostic> {
        match &self.result {
            Err(PointError::Invalid(d)) => Some(d),
            _ => None,
        }
    }

    /// The diagnostic, if the point was pruned as provably dominated.
    pub fn pruned(&self) -> Option<&salam_verify::Diagnostic> {
        match &self.result {
            Err(PointError::Pruned(d)) => Some(d),
            _ => None,
        }
    }

    /// `failed:<cause>` / `invalid:<code>` / `pruned:<code>` for pointless
    /// points, `None` otherwise.
    pub fn failure_label(&self) -> Option<String> {
        self.result.as_ref().err().map(PointError::label)
    }

    /// The payload, panicking with the failure cause when the point failed.
    /// For tools that treat any failed point as fatal.
    pub fn expect_payload(&self) -> &T {
        match &self.result {
            Ok(p) => p,
            Err(f) => panic!("design point failed: {f}"),
        }
    }
}

/// A completed sweep: outcomes in canonical point order plus cache and
/// timing telemetry.
#[derive(Debug)]
pub struct SweepRun<T> {
    /// One outcome per job, in submission order.
    pub outcomes: Vec<PointOutcome<T>>,
    /// Points served from the cache.
    pub hits: usize,
    /// Points simulated because no entry existed.
    pub misses: usize,
    /// Points re-simulated because their entry failed validation.
    pub corrupt: usize,
    /// Points whose job panicked on every attempt.
    pub failed: usize,
    /// Points statically rejected by [`SweepJob::validate`] — never
    /// simulated, never cached.
    pub invalid: usize,
    /// Points [`run_sweep_pruned`] proved dominated — never simulated,
    /// never cached. Always 0 for plain [`run_sweep`].
    pub pruned: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Typed telemetry accumulated across workers: `dse.points.*`
    /// counters plus whatever [`SweepJob::record_telemetry`] contributed.
    /// Per-worker shards merge commutatively, so counters and histogram
    /// buckets (and therefore quantiles) are identical for any
    /// `SALAM_JOBS` value.
    pub telemetry: Telemetry,
}

impl<T> SweepRun<T> {
    /// `hits=h misses=m corrupt=c failed=f invalid=i pruned=p workers=w
    /// points=n wall=…` — one stable line for logs and CI assertions.
    pub fn summary(&self) -> String {
        format!(
            "hits={} misses={} corrupt={} failed={} invalid={} pruned={} workers={} points={} \
             wall={:.3}s",
            self.hits,
            self.misses,
            self.corrupt,
            self.failed,
            self.invalid,
            self.pruned,
            self.workers,
            self.outcomes.len(),
            self.wall.as_secs_f64()
        )
    }

    /// The counts that are a pure function of the submitted job set and
    /// cache state, as `(key, value)` pairs for
    /// [`SweepTable::set_summary`]. Environment facts — worker count, wall
    /// time — are deliberately excluded so exported tables stay
    /// byte-comparable across runs.
    pub fn summary_pairs(&self) -> Vec<(String, String)> {
        [
            ("points", self.outcomes.len()),
            ("failed", self.failed),
            ("invalid", self.invalid),
            ("pruned", self.pruned),
            ("hits", self.hits),
            ("misses", self.misses),
            ("corrupt", self.corrupt),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }
}

/// Runs one job under `catch_unwind`, retrying up to `retries` extra times.
/// The panic payload's first line (capped) becomes the failure cause.
/// With a backoff policy, attempts are spaced by the policy's full-jitter
/// delays keyed on the job's cache identity — a pure function of the
/// point, so the retry schedule replays across worker counts.
fn run_isolated<J: SweepJob>(
    job: &J,
    retries: u32,
    backoff: Option<&salam_resilience::BackoffPolicy>,
) -> Result<J::Output, JobFailure> {
    let mut attempts = 0;
    loop {
        attempts += 1;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run())) {
            Ok(out) => return Ok(out),
            Err(payload) if attempts > retries => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                let mut cause: String = msg.lines().next().unwrap_or("panic").to_string();
                if cause.len() > 120 {
                    let mut end = 120;
                    while !cause.is_char_boundary(end) {
                        end -= 1;
                    }
                    cause.truncate(end);
                }
                return Err(JobFailure { cause, attempts });
            }
            Err(_) => {
                if let Some(policy) = backoff {
                    let id = job.cache_id();
                    let site = format!("{}/{}", id.domain, id.canon);
                    let delay = policy.delay_ms(&site, attempts);
                    if delay > 0 {
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                }
            }
        }
    }
}

/// Runs every job — cache probe, simulate on miss, store — across the
/// worker pool and reassembles results in job order. Cache writes are
/// best-effort: an I/O failure costs a warning and a future re-simulation,
/// never the sweep. A job that panics out of its retry budget becomes a
/// failed outcome (never cached); the rest of the sweep is unaffected.
pub fn run_sweep<J: SweepJob>(jobs: &[J], opts: &DseOptions) -> SweepRun<J::Output> {
    let workers = opts.resolve_workers();
    let cache = opts.resolve_cache();
    let retries = opts.retries;
    let backoff = opts.backoff.clone();
    let t0 = Instant::now();

    enum Provenance {
        Hit,
        Miss,
        Corrupt,
        Invalid,
    }

    type Isolated<T> = (Provenance, Result<T, PointError>);
    let (results, shards): (Vec<Isolated<J::Output>>, Vec<Telemetry>) = run_parallel_with(
        jobs.len(),
        workers,
        Telemetry::new,
        |i, tel: &mut Telemetry| {
            let job = &jobs[i];
            // Pre-flight before the cache probe: an invalid point must not
            // consume a simulation slot, and caching it would make a later
            // fix of the validator invisible.
            if let Err(d) = job.validate() {
                tel.counter_add("dse.points.invalid", 1);
                return (Provenance::Invalid, Err(PointError::Invalid(d)));
            }
            let finish = |provenance: Provenance,
                          result: Result<J::Output, JobFailure>,
                          tel: &mut Telemetry| {
                match &result {
                    Ok(out) => {
                        tel.counter_add(
                            match provenance {
                                Provenance::Hit => "dse.points.cache_hits",
                                _ => "dse.points.simulated",
                            },
                            1,
                        );
                        // Hits and fresh runs both record, so per-point
                        // telemetry is independent of cache state.
                        job.record_telemetry(out, tel);
                    }
                    Err(_) => tel.counter_add("dse.points.failed", 1),
                }
                (provenance, result.map_err(PointError::Failed))
            };
            let Some(cache) = &cache else {
                return finish(
                    Provenance::Miss,
                    run_isolated(job, retries, backoff.as_ref()),
                    tel,
                );
            };
            let id = job.cache_id();
            let (provenance, result) = match cache.lookup::<J::Output>(&id) {
                Lookup::Hit(p) => return finish(Provenance::Hit, Ok(p), tel),
                Lookup::Miss => (
                    Provenance::Miss,
                    run_isolated(job, retries, backoff.as_ref()),
                ),
                Lookup::Corrupt => (
                    Provenance::Corrupt,
                    run_isolated(job, retries, backoff.as_ref()),
                ),
            };
            if let Ok(payload) = &result {
                if let Err(e) = cache.store(&id, payload) {
                    eprintln!(
                        "salam-dse: warning: could not write cache entry {}: {e}",
                        cache.entry_path(&id).display()
                    );
                }
            }
            finish(provenance, result, tel)
        },
    );
    let mut telemetry = Telemetry::new();
    for shard in &shards {
        telemetry.merge_from(shard);
    }

    let wall = t0.elapsed();
    let mut run = SweepRun {
        outcomes: Vec::with_capacity(results.len()),
        hits: 0,
        misses: 0,
        corrupt: 0,
        failed: 0,
        invalid: 0,
        pruned: 0,
        workers,
        wall,
        telemetry,
    };
    for (provenance, result) in results {
        let from_cache = match provenance {
            Provenance::Hit => {
                run.hits += 1;
                true
            }
            Provenance::Miss => {
                run.misses += 1;
                false
            }
            Provenance::Corrupt => {
                run.corrupt += 1;
                false
            }
            Provenance::Invalid => {
                run.invalid += 1;
                false
            }
        };
        if matches!(result, Err(PointError::Failed(_))) {
            run.failed += 1;
        }
        run.outcomes.push(PointOutcome { result, from_cache });
    }
    run
}
