//! Flow-based pre-flight pruning for minimize-cycles sweeps.
//!
//! A design point that is provably slower than an already-simulated,
//! no-costlier point can never win the sweep, so simulating it is wasted
//! work. The proof chain is entirely static: `salam-flow` infers loop trip
//! counts without running anything, `salam_verify::flow_lower_bound` turns
//! them into a sound cycle lower bound for the point's exact configuration
//! (ports, FU limits, reservation window), and the hardware models give the
//! point's area and leakage as pure functions of the config. A point `P` is
//! pruned when some same-kernel reference `Q` with a measured result
//! satisfies
//!
//! 1. `cycles(Q) <= bound(P)` — `P` is at least as slow as `Q` on every
//!    possible execution (`bound(P) <= cycles(P)` by soundness), and
//! 2. `area(Q) <= area(P)` and `leakage(Q) <= leakage(P)` — `Q` is
//!    no costlier in the static objectives.
//!
//! Pruning is deliberately restricted to the *cycles* objective plus the
//! static cost guard: dynamic power is a rate, and a slower design can
//! average less power over its longer runtime, so sweeps that rank points
//! by measured power must use plain [`crate::run_sweep`].
//!
//! Pruned rows appear as `pruned:F005` with the summary's `pruned=` count;
//! the `dse_smoke --prune` CI probe re-simulates every pruned point once
//! and asserts the dominance chain actually held.

use salam_verify::{codes, Diagnostic, Span};

use crate::{DseOptions, PointError, PointOutcome, SweepJob, SweepRun};

/// The simulation-free profile pruning decisions are made from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticProfile {
    /// Sound lower bound on the point's cycle count (flow-tightened).
    pub cycle_bound: u64,
    /// Total area (datapath + SPM) in square micrometres.
    pub area_um2: f64,
    /// Static leakage (FUs + registers + SPM) in milliwatts — a lower
    /// bound on the point's total power.
    pub leakage_mw: f64,
}

/// A sweep job that can be screened against references without simulating.
pub trait PrunableJob: SweepJob {
    /// Points compete only within a group (one kernel, one workload);
    /// cross-group cycle comparisons are meaningless.
    fn prune_group(&self) -> String;

    /// Human-readable point label for the `F005` diagnostic.
    fn prune_label(&self) -> String;

    /// The point's simulation-free profile; `None` opts the point out of
    /// pruning (and disqualifies it as a cost reference).
    fn static_profile(&self) -> Option<StaticProfile>;

    /// Cycle count of a completed output.
    fn measured_cycles(out: &Self::Output) -> u64;
}

/// Like [`crate::run_sweep`], but simulates the `refs` points first and
/// prunes every other point a reference provably dominates (see the module
/// docs for the criterion). Outcomes come back in job order regardless of
/// phase; pruned points get `Err(PointError::Pruned)` with an `F005`
/// diagnostic naming the dominating reference, and are counted in
/// [`SweepRun::pruned`] and the `dse.points.pruned` telemetry counter.
///
/// The pruning verdict is a pure function of the job set and the reference
/// results, so — like everything else in the engine — the outcome vector is
/// identical for any worker count or cache state. Out-of-range or duplicate
/// reference indices are ignored; with no usable references the call
/// degenerates to [`crate::run_sweep`].
pub fn run_sweep_pruned<J: PrunableJob>(
    jobs: &[J],
    refs: &[usize],
    opts: &DseOptions,
) -> SweepRun<J::Output> {
    let t0 = std::time::Instant::now();
    let mut is_ref = vec![false; jobs.len()];
    for &i in refs {
        if i < jobs.len() {
            is_ref[i] = true;
        }
    }
    let ref_idx: Vec<usize> = (0..jobs.len()).filter(|&i| is_ref[i]).collect();
    let ref_jobs: Vec<&J> = ref_idx.iter().map(|&i| &jobs[i]).collect();
    let ref_run = crate::run_sweep(&ref_jobs, opts);

    // A reference can vouch for a pruning only if it finished and its own
    // static cost is known (the cost guard compares like with like).
    struct Reference {
        group: String,
        label: String,
        cycles: u64,
        profile: StaticProfile,
    }
    let references: Vec<Reference> = ref_idx
        .iter()
        .zip(&ref_run.outcomes)
        .filter_map(|(&i, outcome)| {
            let out = outcome.payload()?;
            let profile = jobs[i].static_profile()?;
            Some(Reference {
                group: jobs[i].prune_group(),
                label: jobs[i].prune_label(),
                cycles: J::measured_cycles(out),
                profile,
            })
        })
        .collect();

    // Screen the non-reference points; survivors simulate.
    let mut verdicts: Vec<Option<Diagnostic>> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        if is_ref[i] {
            verdicts.push(None);
            continue;
        }
        let dominated = job.static_profile().and_then(|p| {
            references
                .iter()
                .find(|q| {
                    q.group == job.prune_group()
                        && q.cycles <= p.cycle_bound
                        && q.profile.area_um2 <= p.area_um2
                        && q.profile.leakage_mw <= p.leakage_mw
                })
                .map(|q| {
                    Diagnostic::info(
                        codes::F005,
                        Span::default(),
                        format!(
                            "static cycle bound {} can never beat reference {} \
                             ({} measured cycles, no costlier: {:.0} <= {:.0} um^2, \
                             {:.3} <= {:.3} mW leakage)",
                            p.cycle_bound,
                            q.label,
                            q.cycles,
                            q.profile.area_um2,
                            p.area_um2,
                            q.profile.leakage_mw,
                            p.leakage_mw,
                        ),
                    )
                })
        });
        verdicts.push(dominated);
    }
    let survivor_idx: Vec<usize> = (0..jobs.len())
        .filter(|&i| !is_ref[i] && verdicts[i].is_none())
        .collect();
    let survivor_jobs: Vec<&J> = survivor_idx.iter().map(|&i| &jobs[i]).collect();
    let surv_run = crate::run_sweep(&survivor_jobs, opts);

    // Stitch the three classes back into job order.
    let mut ref_outcomes = ref_run.outcomes.into_iter();
    let mut surv_outcomes = surv_run.outcomes.into_iter();
    let mut run = SweepRun {
        outcomes: Vec::with_capacity(jobs.len()),
        hits: ref_run.hits + surv_run.hits,
        misses: ref_run.misses + surv_run.misses,
        corrupt: ref_run.corrupt + surv_run.corrupt,
        failed: ref_run.failed + surv_run.failed,
        invalid: ref_run.invalid + surv_run.invalid,
        pruned: 0,
        workers: ref_run.workers.max(surv_run.workers),
        wall: t0.elapsed(),
        telemetry: ref_run.telemetry,
    };
    run.telemetry.merge_from(&surv_run.telemetry);
    for (i, verdict) in verdicts.into_iter().enumerate() {
        let outcome = if is_ref[i] {
            ref_outcomes.next().expect("one outcome per reference")
        } else if let Some(d) = verdict {
            run.pruned += 1;
            PointOutcome {
                result: Err(PointError::Pruned(d)),
                from_cache: false,
            }
        } else {
            surv_outcomes.next().expect("one outcome per survivor")
        };
        run.outcomes.push(outcome);
    }
    if run.pruned > 0 {
        run.telemetry
            .counter_add("dse.points.pruned", run.pruned as u64);
    }
    run
}

impl PrunableJob for crate::StandalonePoint {
    fn prune_group(&self) -> String {
        self.kernel.id.clone()
    }

    fn prune_label(&self) -> String {
        self.label()
    }

    /// Builds the kernel (cheap, deterministic) but never simulates it:
    /// trip counts come from `salam-flow`'s static inference, the cycle
    /// bound from `flow_lower_bound` under the point's exact port / FU /
    /// reservation-window configuration, and area and leakage from the
    /// same hardware models [`salam::RunReport::assemble`] uses — sized
    /// with the same SPM-footprint rule — so the cost guard compares the
    /// numbers a real run would report.
    fn static_profile(&self) -> Option<StaticProfile> {
        use std::collections::HashMap;

        use hw_profile::SramSpec;
        use salam_cdfg::StaticCdfg;
        use salam_verify::{flow_lower_bound, static_memdeps, BoundConfig};

        if self.config.validate().is_err() {
            return None;
        }
        let k = self.kernel.build();
        let cdfg = StaticCdfg::elaborate(&k.func, &self.config.profile, &self.config.constraints);
        let facts = salam_flow::analyze(&k.func, &k.args);
        let trips: HashMap<_, _> = facts
            .trips
            .block_trips
            .iter()
            .map(|(&b, &t)| (b, t))
            .collect();
        let deps = static_memdeps(&k.func, &k.args);
        let bc = BoundConfig {
            read_ports: self.config.spm_read_ports,
            write_ports: self.config.spm_write_ports,
            pipelined_fus: self.config.engine.pipelined_fus,
            reservation_entries: self.config.engine.reservation_entries,
        };
        let bound = flow_lower_bound(&k.func, &cdfg, &trips, &bc, &deps.edges);
        let (lo, hi) = k.init_span();
        let footprint = (hi.saturating_sub(lo)).next_power_of_two().max(1024);
        let spm = SramSpec::new(footprint, self.config.spm_word_bytes)
            .with_ports(self.config.spm_read_ports, self.config.spm_write_ports);
        let area = cdfg.area_report(&self.config.profile);
        let leak = cdfg.static_power_report(&self.config.profile);
        Some(StaticProfile {
            cycle_bound: bound.lower_bound,
            area_um2: area.total_um2 + spm.area_um2(),
            leakage_mw: leak.fu_mw + leak.register_mw + spm.leakage_mw(),
        })
    }

    fn measured_cycles(out: &Self::Output) -> u64 {
        out.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheId, CachePayload};

    #[derive(Debug, Clone, PartialEq)]
    struct Cycles(u64);

    impl CachePayload for Cycles {
        fn payload_to_json(&self) -> String {
            format!("{{\"cycles\": {}}}", self.0)
        }

        fn payload_from_json(v: &salam_obs::json::Value) -> Result<Self, String> {
            v.get("cycles")
                .and_then(salam_obs::json::Value::as_f64)
                .map(|c| Cycles(c as u64))
                .ok_or_else(|| "missing cycles".into())
        }
    }

    struct Fake {
        group: &'static str,
        label: &'static str,
        cycles: u64,
        profile: Option<StaticProfile>,
    }

    impl SweepJob for Fake {
        type Output = Cycles;

        fn cache_id(&self) -> CacheId {
            CacheId::new("fake", self.label)
        }

        fn run(&self) -> Cycles {
            Cycles(self.cycles)
        }
    }

    impl PrunableJob for Fake {
        fn prune_group(&self) -> String {
            self.group.into()
        }

        fn prune_label(&self) -> String {
            self.label.into()
        }

        fn static_profile(&self) -> Option<StaticProfile> {
            self.profile
        }

        fn measured_cycles(out: &Cycles) -> u64 {
            out.0
        }
    }

    fn profile(cycle_bound: u64, area_um2: f64, leakage_mw: f64) -> Option<StaticProfile> {
        Some(StaticProfile {
            cycle_bound,
            area_um2,
            leakage_mw,
        })
    }

    fn opts() -> DseOptions {
        DseOptions::default().without_cache().with_workers(2)
    }

    #[test]
    fn dominated_points_are_pruned_and_outcomes_stay_in_job_order() {
        let jobs = [
            // Reference: 100 cycles, cheap.
            Fake {
                group: "a",
                label: "ref",
                cycles: 100,
                profile: profile(90, 10.0, 1.0),
            },
            // Bound 150 >= 100, no cheaper: pruned.
            Fake {
                group: "a",
                label: "slow",
                cycles: 170,
                profile: profile(150, 10.0, 1.0),
            },
            // Bound 150 but *cheaper* area: must simulate (could win on cost).
            Fake {
                group: "a",
                label: "small",
                cycles: 160,
                profile: profile(150, 5.0, 1.0),
            },
            // Bound below the reference's cycles: must simulate.
            Fake {
                group: "a",
                label: "fast",
                cycles: 80,
                profile: profile(60, 10.0, 1.0),
            },
            // Same numbers as "slow" but another group: must simulate.
            Fake {
                group: "b",
                label: "other",
                cycles: 170,
                profile: profile(150, 10.0, 1.0),
            },
            // No profile: never pruned.
            Fake {
                group: "a",
                label: "opaque",
                cycles: 500,
                profile: None,
            },
        ];
        let run = run_sweep_pruned(&jobs, &[0], &opts());
        let labels: Vec<Option<String>> = run
            .outcomes
            .iter()
            .map(PointOutcome::failure_label)
            .collect();
        assert_eq!(labels[0], None);
        assert_eq!(labels[1].as_deref(), Some("pruned:F005"));
        assert_eq!(labels[2], None);
        assert_eq!(labels[3], None);
        assert_eq!(labels[4], None);
        assert_eq!(labels[5], None);
        assert_eq!(run.pruned, 1);
        assert_eq!(run.outcomes[3].payload(), Some(&Cycles(80)));
        let diag = run.outcomes[1].pruned().unwrap();
        assert!(
            diag.message.contains("ref"),
            "cites the reference: {}",
            diag.message
        );
        assert!(run.summary().contains("pruned=1"));
        assert_eq!(
            run.telemetry.counter("dse.points.pruned"),
            1,
            "pruning is counted in telemetry"
        );
    }

    #[test]
    fn no_references_degenerates_to_a_plain_sweep() {
        let jobs = [
            Fake {
                group: "a",
                label: "x",
                cycles: 10,
                profile: profile(1000, 1.0, 1.0),
            },
            Fake {
                group: "a",
                label: "y",
                cycles: 20,
                profile: profile(1000, 1.0, 1.0),
            },
        ];
        // Out-of-range indices are ignored; nothing can be pruned without
        // a simulated reference.
        let run = run_sweep_pruned(&jobs, &[99], &opts());
        assert_eq!(run.pruned, 0);
        assert_eq!(run.outcomes[0].payload(), Some(&Cycles(10)));
        assert_eq!(run.outcomes[1].payload(), Some(&Cycles(20)));
    }

    #[test]
    fn a_costlier_reference_cannot_vouch() {
        let jobs = [
            // Fast but huge reference.
            Fake {
                group: "a",
                label: "big",
                cycles: 100,
                profile: profile(90, 100.0, 9.0),
            },
            // Provably slower, but smaller: may still win on area.
            Fake {
                group: "a",
                label: "small",
                cycles: 300,
                profile: profile(200, 10.0, 1.0),
            },
        ];
        let run = run_sweep_pruned(&jobs, &[0], &opts());
        assert_eq!(run.pruned, 0);
        assert_eq!(run.outcomes[1].payload(), Some(&Cycles(300)));
    }
}
