//! Sweep report assembly: CSV/JSON tables, per-point metric rollups, and
//! Pareto-frontier extraction over (cycles, area, power) — the paper's
//! Fig. 15/16 trade-off views.

use salam::RunReport;
use salam_obs::MetricsRegistry;

/// A rendered sweep table: coordinate columns plus metric columns, rows in
/// canonical point order. All cells are pre-formatted strings so the same
/// table serializes byte-identically regardless of how it was produced.
#[derive(Debug, Clone)]
pub struct SweepTable {
    /// Table title.
    pub title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    summary: Vec<(String, String)>,
}

impl SweepTable {
    /// A table with the given title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        SweepTable {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Attaches sweep-level summary counters (`failed`, `invalid`, …) so
    /// they survive into **every** serialization — plain text, CSV and
    /// JSON — not just the human table. Order is preserved.
    pub fn set_summary(&mut self, pairs: Vec<(String, String)>) {
        self.summary = pairs;
    }

    /// The attached summary pairs (empty when none were set).
    pub fn summary(&self) -> &[(String, String)] {
        &self.summary
    }

    fn summary_line(&self) -> String {
        self.summary
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Raw rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// RFC-4180-ish CSV: header line, comma-separated, cells containing
    /// commas/quotes/newlines quoted and doubled.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if c.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&c.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(c);
                }
            }
            out.push('\n');
        };
        line(&self.columns, &mut out);
        for r in &self.rows {
            line(r, &mut out);
        }
        if !self.summary.is_empty() {
            // A `#` comment line: ignored by naive CSV readers, greppable
            // by CI, and round-trippable by anything that keeps comments.
            out.push_str(&format!("# {}\n", self.summary_line()));
        }
        out
    }

    /// JSON: a plain array of row objects keyed by column name when no
    /// summary is attached (the historical shape), otherwise
    /// `{"rows": [...], "summary": {...}}` so `failed=`/`invalid=` counts
    /// survive machine exports too.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut rows = String::from("[");
        for (ri, r) in self.rows.iter().enumerate() {
            if ri > 0 {
                rows.push(',');
            }
            rows.push_str("\n  {");
            for (ci, (k, v)) in self.columns.iter().zip(r).enumerate() {
                if ci > 0 {
                    rows.push_str(", ");
                }
                rows.push_str(&format!("\"{}\": \"{}\"", esc(k), esc(v)));
            }
            rows.push('}');
        }
        rows.push_str("\n]");
        if self.summary.is_empty() {
            return format!("{rows}\n");
        }
        let summary = self
            .summary
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", esc(k), esc(v)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{\n\"rows\": {rows},\n\"summary\": {{{summary}}}\n}}\n")
    }

    /// Renders CSV when the process was invoked with `--csv` (or
    /// `SALAM_CSV=1`), aligned plain text otherwise — the same contract as
    /// the experiment binaries' native tables.
    pub fn render_auto(&self) -> String {
        let csv = std::env::args().any(|a| a == "--csv")
            || std::env::var("SALAM_CSV")
                .map(|v| v == "1")
                .unwrap_or(false);
        if csv {
            self.to_csv()
        } else {
            self.render()
        }
    }

    /// Aligned plain text with the title on top.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_line = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{c:<width$}", width = widths[i]));
            }
            s.trim_end().to_string()
        };
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&fmt_line(&self.columns));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_line(r));
            out.push('\n');
        }
        if !self.summary.is_empty() {
            out.push_str(&format!("-- {}\n", self.summary_line()));
        }
        out
    }
}

/// Indices of the Pareto-optimal points when **minimizing** every
/// objective, in input order. A point is dominated if some other point is
/// no worse in all objectives and strictly better in at least one; ties on
/// all objectives keep the earliest point only, so the frontier is stable
/// under permutation of equals.
pub fn pareto_frontier(points: &[[f64; 3]]) -> Vec<usize> {
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| dominates(p, &points[i]) || (j < i && p == &points[i]))
        })
        .collect()
}

/// The (cycles, total area µm², total power mW) objective vector of a run
/// — the trade-off space of the paper's co-design figures.
pub fn objectives(report: &RunReport) -> [f64; 3] {
    [
        report.cycles as f64,
        report.total_area_um2(),
        report.power.total_mw(),
    ]
}

/// Publishes every point's full report into one registry under
/// `dse.<sweep>.<point label>` — the sweep-wide observability rollup.
pub fn metrics_rollup<'a>(
    sweep: &str,
    points: impl IntoIterator<Item = (String, &'a RunReport)>,
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for (label, report) in points {
        report.export_metrics(&mut reg, &format!("dse.{sweep}.{label}"));
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = SweepTable::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        t.row(vec!["has \"q\"".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",plain\n\"has \"\"q\"\"\",2\n");
    }

    #[test]
    fn json_rows_keyed_by_column() {
        let mut t = SweepTable::new("t", &["k", "v"]);
        t.row(vec!["gemm".into(), "12".into()]);
        let v = salam_obs::json::parse(&t.to_json()).unwrap();
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("k").unwrap().as_str(), Some("gemm"));
        assert_eq!(rows[0].get("v").unwrap().as_str(), Some("12"));
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = SweepTable::new("sweep", &["name", "cycles"]);
        t.row(vec!["a".into(), "100".into()]);
        t.row(vec!["longer".into(), "9".into()]);
        let text = t.render();
        assert!(text.contains("== sweep =="));
        // Title, header, rule, two rows.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        // "name" padded to the widest cell ("longer", 6 chars) + 2 spaces.
        assert!(lines[1].starts_with("name    cycles"));
        assert!(lines[4].starts_with("longer  9"));
    }

    #[test]
    fn summary_survives_every_serialization() {
        let mut t = SweepTable::new("t", &["k", "v"]);
        t.row(vec!["gemm".into(), "12".into()]);
        t.set_summary(vec![
            ("points".into(), "4".into()),
            ("failed".into(), "1".into()),
            ("invalid".into(), "2".into()),
        ]);
        // Plain text: summary rendered after the rows.
        assert!(t.render().contains("-- points=4 failed=1 invalid=2"));
        // CSV: exact pinned format — rows unchanged, `#` comment trailer.
        assert_eq!(t.to_csv(), "k,v\ngemm,12\n# points=4 failed=1 invalid=2\n");
        // JSON: {"rows": [...], "summary": {...}} shape, round-trippable.
        let v = salam_obs::json::parse(&t.to_json()).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("k").unwrap().as_str(), Some("gemm"));
        let summary = v.get("summary").unwrap();
        assert_eq!(summary.get("failed").unwrap().as_str(), Some("1"));
        assert_eq!(summary.get("invalid").unwrap().as_str(), Some("2"));
        assert_eq!(summary.get("points").unwrap().as_str(), Some("4"));
    }

    #[test]
    fn summaryless_exports_keep_historical_shape() {
        let mut t = SweepTable::new("t", &["k"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.to_csv(), "k\nx\n");
        assert!(salam_obs::json::parse(&t.to_json())
            .unwrap()
            .as_array()
            .is_some());
    }

    #[test]
    fn pareto_keeps_only_non_dominated() {
        let pts = [
            [100.0, 10.0, 1.0], // frontier
            [200.0, 10.0, 1.0], // dominated by 0
            [50.0, 20.0, 2.0],  // frontier (fastest)
            [50.0, 20.0, 2.0],  // duplicate of 2 → dropped
            [40.0, 25.0, 0.5],  // frontier (lowest power)
        ];
        assert_eq!(pareto_frontier(&pts), vec![0, 2, 4]);
    }

    #[test]
    fn pareto_of_empty_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
    }
}
