//! FNV-1a 64-bit hashing for cache content addresses.
//!
//! FNV-1a is the right tool here: the inputs are canonical config texts
//! (already collision-hardened by storing a secondary check hash and the
//! input length in each cache entry), the hash must be stable across
//! platforms and releases, and the implementation is four lines. A
//! SplitMix64 finalizer decorrelates the secondary hash from the primary.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` from the standard offset basis.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_from(FNV_OFFSET, bytes)
}

/// FNV-1a continuing from an arbitrary state — chain calls to hash
/// multi-part keys without concatenating.
pub fn fnv1a64_from(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The SplitMix64 finalizer: a full-avalanche bijection on `u64`. Applied
/// to an FNV state it yields a second, independent 64-bit check value.
pub fn splitmix_finalize(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lower-case 16-digit hex of a hash value (cache file stems).
pub fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn chaining_matches_concatenation() {
        let whole = fnv1a64(b"hello world");
        let chained = fnv1a64_from(fnv1a64(b"hello "), b"world");
        assert_eq!(whole, chained);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex64(0), "0000000000000000");
        assert_eq!(hex64(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn finalizer_changes_value() {
        let h = fnv1a64(b"x");
        assert_ne!(splitmix_finalize(h), h);
    }
}
