//! The persistent, content-addressed result cache.
//!
//! One design point = one JSON file under the cache directory, named by
//! the FNV-1a hash of the point's identity (format version + domain +
//! canonical config text). Every entry embeds enough redundancy — the
//! expected key, the domain, the canonical text's length and an
//! independent check hash — that a stale, truncated, hand-edited or
//! hash-colliding file is detected on read and treated as a miss: the
//! point is re-simulated and the entry rewritten. Writes go through a
//! temp file + rename so a crashed run never leaves a half-written entry
//! behind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::fnv::{fnv1a64, fnv1a64_from, hex64, splitmix_finalize};
use salam::RunReport;
use salam_obs::json::{self, escape, Value};

/// Bumped whenever the entry format or any payload serialization changes
/// incompatibly; old entries then read as misses, never as wrong results.
/// Version 3: [`RunReport`] stats gained the `fault_counts` map.
pub const CACHE_FORMAT_VERSION: u64 = 3;

/// A value that can live in the cache: serializes to a JSON object and
/// parses back from the entry's embedded payload value.
pub trait CachePayload: Sized {
    /// The payload as a standalone JSON object text.
    fn payload_to_json(&self) -> String;

    /// Parses the payload from the entry's already-parsed JSON.
    ///
    /// # Errors
    ///
    /// Any message marks the entry corrupt (the point is re-simulated).
    fn payload_from_json(v: &Value) -> Result<Self, String>;
}

impl CachePayload for RunReport {
    fn payload_to_json(&self) -> String {
        self.to_json()
    }

    fn payload_from_json(v: &Value) -> Result<Self, String> {
        RunReport::from_json_value(v)
    }
}

/// The identity of one design point: a `domain` namespace (e.g.
/// `standalone/gemm-ncubed` or `fig16/stream-buffers`) plus the canonical
/// text of every knob that can change the result. Equal identities — and
/// only equal identities — map to the same cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheId {
    /// Namespace: execution model + kernel/scenario identity.
    pub domain: String,
    /// Canonical configuration text (see `canonical_repr` on the config
    /// types). Not hashed-only: its length and check hash are stored in
    /// the entry so collisions are detected rather than served.
    pub canon: String,
}

impl CacheId {
    /// An id from a cache domain and a canonical configuration string.
    pub fn new(domain: impl Into<String>, canon: impl Into<String>) -> Self {
        CacheId {
            domain: domain.into(),
            canon: canon.into(),
        }
    }

    /// The primary content address (the cache file stem).
    pub fn key(&self) -> u64 {
        let mut h = fnv1a64(b"salam-dse");
        h = fnv1a64_from(h, &CACHE_FORMAT_VERSION.to_le_bytes());
        h = fnv1a64_from(h, &[0]);
        h = fnv1a64_from(h, self.domain.as_bytes());
        h = fnv1a64_from(h, &[0]);
        fnv1a64_from(h, self.canon.as_bytes())
    }

    /// Hex form of [`CacheId::key`].
    pub fn key_hex(&self) -> String {
        hex64(self.key())
    }

    /// The independent secondary hash over the canonical text, stored in
    /// the entry to catch primary-key collisions.
    pub fn canon_check_hex(&self) -> String {
        hex64(splitmix_finalize(fnv1a64(self.canon.as_bytes())))
    }
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum Lookup<T> {
    /// A valid entry was found.
    Hit(T),
    /// No entry exists for this key.
    Miss,
    /// An entry exists but failed validation; the caller should re-run
    /// the point and overwrite it.
    Corrupt,
}

/// A directory of result entries.
///
/// Optionally size-capped: when `max_bytes` is set (explicitly or via
/// `SALAM_DSE_CACHE_MAX_BYTES`), every store enforces the cap by evicting
/// the least-recently-written entries (LRU by file mtime, ties broken by
/// file name for determinism) until the directory fits. A long-running
/// server would otherwise grow `target/dse-cache` without bound.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    max_bytes: Option<u64>,
    /// Cumulative evictions, shared across clones so the server's metrics
    /// see every worker's evictions.
    evictions: Arc<AtomicU64>,
}

impl ResultCache {
    /// A cache rooted at `dir` (created on first store). Unbounded by
    /// default; set a cap with [`ResultCache::with_max_bytes`], typically
    /// from [`env_max_bytes`] at process entry points.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: dir.into(),
            max_bytes: None,
            evictions: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets (or clears) the size cap in bytes.
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The configured size cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Entries evicted by this cache (and its clones) so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total bytes of entry files currently on disk.
    pub fn disk_bytes(&self) -> u64 {
        list_entries(&self.dir).iter().map(|e| e.bytes).sum()
    }

    /// Publishes cache occupancy and eviction counters under `prefix`
    /// (`{prefix}.entries`, `{prefix}.bytes`, `{prefix}.evictions`,
    /// `{prefix}.max_bytes`).
    pub fn export_metrics(&self, reg: &mut salam_obs::MetricsRegistry, prefix: &str) {
        reg.set(&format!("{prefix}.entries"), self.entry_count() as f64);
        reg.set(&format!("{prefix}.bytes"), self.disk_bytes() as f64);
        reg.set(&format!("{prefix}.evictions"), self.evictions() as f64);
        reg.set(
            &format!("{prefix}.max_bytes"),
            self.max_bytes.map(|b| b as f64).unwrap_or(-1.0),
        );
    }

    /// The default location: `$SALAM_DSE_CACHE` if set, else
    /// `target/dse-cache` under the current directory.
    pub fn default_dir() -> PathBuf {
        match std::env::var_os("SALAM_DSE_CACHE") {
            Some(d) if !d.is_empty() => PathBuf::from(d),
            _ => PathBuf::from("target/dse-cache"),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an identity maps to.
    pub fn entry_path(&self, id: &CacheId) -> PathBuf {
        self.dir.join(format!("{}.json", id.key_hex()))
    }

    /// Probes the cache for `id`, validating the entry end to end.
    pub fn lookup<T: CachePayload>(&self, id: &CacheId) -> Lookup<T> {
        let path = self.entry_path(id);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            Err(_) => return Lookup::Corrupt,
        };
        match Self::validate(id, &text) {
            Ok(payload) => Lookup::Hit(payload),
            Err(_) => Lookup::Corrupt,
        }
    }

    fn validate<T: CachePayload>(id: &CacheId, text: &str) -> Result<T, String> {
        let v = json::parse(text)?;
        let field = |key: &str| -> Result<&Value, String> {
            v.get(key).ok_or_else(|| format!("missing '{key}'"))
        };
        if field("version")?.as_f64() != Some(CACHE_FORMAT_VERSION as f64) {
            return Err("format version mismatch".into());
        }
        if field("key")?.as_str() != Some(id.key_hex().as_str()) {
            return Err("key mismatch".into());
        }
        if field("domain")?.as_str() != Some(id.domain.as_str()) {
            return Err("domain mismatch".into());
        }
        if field("canon_len")?.as_f64() != Some(id.canon.len() as f64) {
            return Err("canonical-config length mismatch".into());
        }
        if field("canon_check")?.as_str() != Some(id.canon_check_hex().as_str()) {
            return Err("canonical-config check-hash mismatch".into());
        }
        T::payload_from_json(field("payload")?)
    }

    /// Writes (or overwrites) the entry for `id` atomically.
    ///
    /// # Errors
    ///
    /// I/O failures only; callers may treat the cache as best-effort.
    pub fn store<T: CachePayload>(&self, id: &CacheId, payload: &T) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(id);
        let payload_text = payload.payload_to_json();
        let entry = format!(
            "{{\n\"version\": {},\n\"key\": \"{}\",\n\"domain\": \"{}\",\n\"canon_len\": {},\n\"canon_check\": \"{}\",\n\"payload\": {}}}\n",
            CACHE_FORMAT_VERSION,
            id.key_hex(),
            escape(&id.domain),
            id.canon.len(),
            id.canon_check_hex(),
            payload_text.trim_end(),
        );
        let tmp = self
            .dir
            .join(format!(".{}.tmp.{}", id.key_hex(), std::process::id()));
        std::fs::write(&tmp, entry)?;
        std::fs::rename(&tmp, &path)?;
        self.enforce_cap(&path);
        Ok(())
    }

    /// Evicts least-recently-written entries until the directory fits the
    /// cap. The entry just written (`keep`) is never evicted — a cap
    /// smaller than one entry must not turn every store into a miss loop.
    /// Best-effort: racing removals and I/O errors are ignored.
    fn enforce_cap(&self, keep: &Path) {
        let Some(cap) = self.max_bytes else { return };
        let entries = list_entries(&self.dir);
        for name in plan_evictions(&entries, cap, keep.file_name().and_then(|n| n.to_str())) {
            let victim = self.dir.join(&name);
            if std::fs::remove_file(&victim).is_ok() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "salam-dse: cache cap {cap}B exceeded, evicted {}",
                    victim.display()
                );
            }
        }
    }

    /// Number of entries currently on disk (diagnostics / tests).
    pub fn entry_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

/// One cache entry file as seen by the eviction planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryMeta {
    /// File name (`<key>.json`).
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Modification time as a sortable integer (nanoseconds since the
    /// epoch; 0 when the filesystem can't say).
    pub mtime_ns: u128,
}

/// The cap configured through `SALAM_DSE_CACHE_MAX_BYTES` (unset, empty,
/// unparsable or zero all mean unbounded). Read at process entry points —
/// the sweep driver and the serve binary — not inside [`ResultCache::at`],
/// so library callers stay deterministic under test.
pub fn env_max_bytes() -> Option<u64> {
    std::env::var("SALAM_DSE_CACHE_MAX_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&b| b > 0)
}

fn list_entries(dir: &Path) -> Vec<EntryMeta> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<EntryMeta> = rd
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .filter_map(|e| {
            let md = e.metadata().ok()?;
            let mtime_ns = md
                .modified()
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            Some(EntryMeta {
                name: e.file_name().to_string_lossy().into_owned(),
                bytes: md.len(),
                mtime_ns,
            })
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Picks the entries to evict so the remaining total fits `cap`: oldest
/// mtime first, file-name order on ties, `keep` exempt. Pure so the policy
/// is unit-testable without touching filesystem timestamps.
pub fn plan_evictions(entries: &[EntryMeta], cap: u64, keep: Option<&str>) -> Vec<String> {
    let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
    if total <= cap {
        return Vec::new();
    }
    let mut candidates: Vec<&EntryMeta> = entries
        .iter()
        .filter(|e| Some(e.name.as_str()) != keep)
        .collect();
    candidates.sort_by(|a, b| a.mtime_ns.cmp(&b.mtime_ns).then(a.name.cmp(&b.name)));
    let mut out = Vec::new();
    for e in candidates {
        if total <= cap {
            break;
        }
        total -= e.bytes;
        out.push(e.name.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("salam-dse-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report() -> RunReport {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        salam::standalone::run_kernel(&k, &salam::standalone::StandaloneConfig::default())
    }

    #[test]
    fn default_dir_respects_env_override() {
        let _env = crate::test_env::lock();
        let over = crate::test_env::EnvGuard::set("SALAM_DSE_CACHE", "/tmp/salam-cache-override");
        assert_eq!(
            ResultCache::default_dir(),
            PathBuf::from("/tmp/salam-cache-override")
        );
        drop(over);
        // Empty counts as unset; still under the lock so nobody else can
        // have re-set the variable in between.
        let _empty = crate::test_env::EnvGuard::set("SALAM_DSE_CACHE", "");
        assert_eq!(
            ResultCache::default_dir(),
            PathBuf::from("target/dse-cache")
        );
    }

    #[test]
    fn ids_differ_by_domain_and_canon() {
        let a = CacheId::new("standalone/gemm", "x=1");
        let b = CacheId::new("standalone/gemm", "x=2");
        let c = CacheId::new("standalone/bfs", "x=1");
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), CacheId::new("standalone/gemm", "x=1").key());
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = ResultCache::at(scratch_dir("roundtrip"));
        let id = CacheId::new("standalone/gemm[n=4,u=1]", "cfg-canon-text");
        let report = sample_report();
        assert!(matches!(cache.lookup::<RunReport>(&id), Lookup::Miss));
        cache.store(&id, &report).unwrap();
        match cache.lookup::<RunReport>(&id) {
            Lookup::Hit(back) => {
                assert_eq!(back.cycles, report.cycles);
                assert_eq!(back.to_json(), report.to_json());
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_entry_reads_as_corrupt() {
        let cache = ResultCache::at(scratch_dir("truncated"));
        let id = CacheId::new("standalone/x", "canon");
        cache.store(&id, &sample_report()).unwrap();
        let path = cache.entry_path(&id);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(cache.lookup::<RunReport>(&id), Lookup::Corrupt));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entry_for_different_canon_is_not_served() {
        // Simulate a primary-key collision: copy an entry onto the file
        // name of a *different* identity. The canon check must reject it.
        let cache = ResultCache::at(scratch_dir("collision"));
        let a = CacheId::new("standalone/x", "canon-a");
        let b = CacheId::new("standalone/x", "canon-b");
        cache.store(&a, &sample_report()).unwrap();
        std::fs::copy(cache.entry_path(&a), cache.entry_path(&b)).unwrap();
        assert!(matches!(cache.lookup::<RunReport>(&b), Lookup::Corrupt));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn eviction_plan_is_lru_by_mtime_with_name_tiebreak() {
        let e = |name: &str, bytes: u64, mtime_ns: u128| EntryMeta {
            name: name.into(),
            bytes,
            mtime_ns,
        };
        let entries = vec![
            e("cc.json", 100, 30),
            e("aa.json", 100, 10),
            e("bb.json", 100, 20),
            e("dd.json", 100, 20),
        ];
        // Under cap: nothing to do.
        assert!(plan_evictions(&entries, 400, None).is_empty());
        // Oldest first; equal mtimes fall back to name order.
        assert_eq!(
            plan_evictions(&entries, 200, None),
            vec!["aa.json".to_string(), "bb.json".to_string()]
        );
        // The just-written entry is exempt even when it is the oldest.
        assert_eq!(
            plan_evictions(&entries, 200, Some("aa.json")),
            vec!["bb.json".to_string(), "dd.json".to_string()]
        );
        // A cap below a single entry still keeps the protected one.
        assert_eq!(plan_evictions(&entries, 0, Some("aa.json")).len(), 3);
    }

    #[test]
    fn store_enforces_cap_and_counts_evictions() {
        let report = sample_report();
        let entry_bytes = {
            let probe = ResultCache::at(scratch_dir("cap-probe")).with_max_bytes(None);
            probe
                .store(&CacheId::new("standalone/x", "probe"), &report)
                .unwrap();
            let bytes = probe.disk_bytes();
            let _ = std::fs::remove_dir_all(probe.dir());
            bytes
        };
        // Room for two entries, not three.
        let cache = ResultCache::at(scratch_dir("cap")).with_max_bytes(Some(entry_bytes * 2 + 10));
        let ids: Vec<CacheId> = (0..3)
            .map(|i| CacheId::new("standalone/x", format!("canon-{i}")))
            .collect();
        for id in &ids {
            cache.store(id, &report).unwrap();
        }
        assert_eq!(cache.entry_count(), 2, "cap must hold two entries");
        assert_eq!(cache.evictions(), 1);
        assert!(
            matches!(cache.lookup::<RunReport>(&ids[2]), Lookup::Hit(_)),
            "the just-written entry must survive its own eviction pass"
        );
        let survivors = (0..2)
            .filter(|&i| matches!(cache.lookup::<RunReport>(&ids[i]), Lookup::Hit(_)))
            .count();
        assert_eq!(survivors, 1, "exactly one older entry must remain");

        let mut reg = salam_obs::MetricsRegistry::new();
        cache.export_metrics(&mut reg, "cache");
        assert_eq!(reg.get("cache.evictions"), Some(1.0));
        assert_eq!(reg.get("cache.entries"), Some(2.0));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cap_env_override_parses() {
        let _env = crate::test_env::lock();
        // A huge cap: even if a concurrently-running sweep test resolves
        // its cache while this guard is live, nothing gets evicted.
        let _cap = crate::test_env::EnvGuard::set("SALAM_DSE_CACHE_MAX_BYTES", "1099511627776");
        assert_eq!(env_max_bytes(), Some(1 << 40));
        let _bad = crate::test_env::EnvGuard::set("SALAM_DSE_CACHE_MAX_BYTES", "nope");
        assert_eq!(env_max_bytes(), None);
        let _zero = crate::test_env::EnvGuard::set("SALAM_DSE_CACHE_MAX_BYTES", "0");
        assert_eq!(env_max_bytes(), None);
    }

    #[test]
    fn version_bump_invalidates() {
        let cache = ResultCache::at(scratch_dir("version"));
        let id = CacheId::new("standalone/x", "canon");
        cache.store(&id, &sample_report()).unwrap();
        let path = cache.entry_path(&id);
        let text = std::fs::read_to_string(&path).unwrap();
        let current = format!("\"version\": {CACHE_FORMAT_VERSION}");
        assert!(text.contains(&current), "entry must embed the version");
        std::fs::write(&path, text.replace(&current, "\"version\": 999")).unwrap();
        assert!(matches!(cache.lookup::<RunReport>(&id), Lookup::Corrupt));
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
