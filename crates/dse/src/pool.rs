//! The `std::thread` worker pool: a channel-fed job queue, results
//! reassembled in submission order so every downstream consumer sees a
//! deterministic sequence regardless of completion order or worker count.

use std::sync::mpsc;
use std::sync::Mutex;

/// The worker count to use: `SALAM_JOBS` if set (values < 1 clamp to 1),
/// otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("SALAM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..n)` across `workers` threads and returns the results indexed
/// by job, independent of scheduling. Jobs are fed through an
/// `mpsc` channel that the workers drain behind a shared mutex, so a slow
/// job never blocks the queue — idle workers keep pulling.
///
/// With `workers == 1` the jobs run inline on the calling thread (the
/// serial baseline, with zero thread overhead); the result is identical
/// either way.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_parallel<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let (job_tx, job_rx) = mpsc::channel::<usize>();
    for i in 0..n {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);
    let job_rx = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();

    let nworkers = workers.min(n);
    std::thread::scope(|scope| {
        for _ in 0..nworkers {
            let res_tx = res_tx.clone();
            let job_rx = &job_rx;
            let f = &f;
            scope.spawn(move || loop {
                let job = match job_rx.lock().unwrap().recv() {
                    Ok(i) => i,
                    Err(_) => break,
                };
                let out = f(job);
                if res_tx.send((job, out)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
    });

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in res_rx.iter() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect()
}

/// [`run_parallel`] with per-worker scratch state: each worker owns an
/// `S` built by `init` and threads it through every job it runs; all
/// states come back alongside the ordered results so the caller can fold
/// them together. The fold order is **not** deterministic (it follows
/// worker scheduling), so `S` must only carry commutatively-mergeable
/// data — counters and fixed-layout histograms qualify, gauges and
/// sequences do not.
///
/// With `workers <= 1` the jobs run inline against a single state, which
/// is the serial baseline the determinism tests compare against.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_parallel_with<T, S, I, F>(n: usize, workers: usize, init: I, f: F) -> (Vec<T>, Vec<S>)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        let mut state = init();
        let out = (0..n).map(|i| f(i, &mut state)).collect();
        return (out, vec![state]);
    }
    let (job_tx, job_rx) = mpsc::channel::<usize>();
    for i in 0..n {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);
    let job_rx = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();
    let (state_tx, state_rx) = mpsc::channel::<S>();

    let nworkers = workers.min(n);
    std::thread::scope(|scope| {
        for _ in 0..nworkers {
            let res_tx = res_tx.clone();
            let state_tx = state_tx.clone();
            let job_rx = &job_rx;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let job = match job_rx.lock().unwrap().recv() {
                        Ok(i) => i,
                        Err(_) => break,
                    };
                    let out = f(job, &mut state);
                    if res_tx.send((job, out)).is_err() {
                        break;
                    }
                }
                let _ = state_tx.send(state);
            });
        }
        drop(res_tx);
        drop(state_tx);
    });

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in res_rx.iter() {
        slots[i] = Some(out);
    }
    let out = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect();
    (out, state_rx.iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 4] {
            let out = run_parallel(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_parallel(64, 4, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn per_worker_state_sees_every_job_once() {
        for workers in [1, 2, 4] {
            let (out, states) = run_parallel_with(
                32,
                workers,
                || 0u64,
                |i, s| {
                    *s += 1;
                    i * 2
                },
            );
            assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(states.iter().sum::<u64>(), 32, "workers={workers}");
            assert!(states.len() <= workers.max(1));
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_respects_env_override() {
        // `set_var` mutates process-global state under a multi-threaded
        // test harness: serialize with every other env-touching test and
        // restore the prior value even on panic.
        let _env = crate::test_env::lock();
        let _jobs = crate::test_env::EnvGuard::set("SALAM_JOBS", "3");
        assert_eq!(worker_count(), 3);
        let _clamped = crate::test_env::EnvGuard::set("SALAM_JOBS", "0");
        assert_eq!(worker_count(), 1);
    }
}
