//! End-to-end guarantees of the DSE engine: determinism across worker
//! counts, full cache reuse on re-runs, corruption recovery, and the
//! per-worker trace-recorder pattern enabled by the `Send` trace handle.

use std::path::PathBuf;
use std::sync::Arc;

use machsuite::Bench;
use salam::standalone::StandaloneConfig;
use salam_dse::{
    pareto_frontier, run_sweep, Axis, DseOptions, KernelSpec, SweepJob, SweepSpec, SweepTable,
};

/// A fresh scratch cache directory unique to this test.
fn scratch_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("salam-dse-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but non-trivial sweep: 2 kernels × (2 ports × 2 window) = 8 points.
fn smoke_spec() -> SweepSpec {
    SweepSpec::new("smoke", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=8,u=2]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 })
        }))
        .kernel(KernelSpec::bench(Bench::SpmvCrs))
        .axis(Axis::spm_ports(&[1, 2]))
        .axis(Axis::reservation_entries(&[8, 64]))
}

/// Renders the sweep's outcomes exactly the way the exp binaries do.
fn table_csv(spec: &SweepSpec, run: &salam_dse::SweepRun<salam::RunReport>) -> String {
    let points = spec.points();
    let mut cols = vec!["kernel".to_string()];
    cols.extend(spec.axis_names());
    cols.extend(["cycles", "stall%", "power(mW)"].map(String::from));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = SweepTable::new(&spec.name, &cols);
    for (point, outcome) in points.iter().zip(&run.outcomes) {
        let mut row = vec![point.kernel.id.clone()];
        row.extend(point.coords.iter().map(|(_, v)| v.clone()));
        match outcome.payload() {
            Some(r) => {
                row.push(r.cycles.to_string());
                row.push(format!("{:.2}", r.stats.stall_fraction() * 100.0));
                row.push(format!("{:.3}", r.power.total_mw()));
            }
            None => {
                let label = outcome.failure_label().unwrap();
                row.extend([label, String::new(), String::new()]);
            }
        }
        table.row(row);
    }
    table.to_csv()
}

#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let spec = smoke_spec();
    let points = spec.points();

    let serial_dir = scratch_cache("serial");
    let serial = run_sweep(
        &points,
        &DseOptions::default()
            .with_workers(1)
            .with_cache_dir(&serial_dir),
    );
    let parallel_dir = scratch_cache("parallel");
    let parallel = run_sweep(
        &points,
        &DseOptions::default()
            .with_workers(4)
            .with_cache_dir(&parallel_dir),
    );

    assert_eq!(serial.outcomes.len(), points.len());
    assert_eq!(serial.misses, points.len());
    assert_eq!(parallel.misses, points.len());
    assert_eq!(
        table_csv(&spec, &serial),
        table_csv(&spec, &parallel),
        "sweep report must not depend on worker count"
    );
    // The full reports — not just the table projection — must agree.
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.expect_payload().to_json(), p.expect_payload().to_json());
    }

    let _ = std::fs::remove_dir_all(serial_dir);
    let _ = std::fs::remove_dir_all(parallel_dir);
}

#[test]
fn telemetry_histograms_are_identical_across_worker_counts() {
    // The sweep-wide `dse.point.cycles` histogram is accumulated in
    // per-worker shards and merged in completion order; element-wise
    // bucket addition makes that merge commutative, so 1 worker
    // (`SALAM_JOBS=1`) and 8 workers (`SALAM_JOBS=8`, here pinned via
    // `with_workers` to keep the env untouched) must produce identical
    // bucket counts and quantiles — and a warm cache must not change the
    // histogram either, since hits record the same per-point telemetry.
    let spec = smoke_spec();
    let points = spec.points();

    let serial_dir = scratch_cache("tel-serial");
    let serial = run_sweep(
        &points,
        &DseOptions::default()
            .with_workers(1)
            .with_cache_dir(&serial_dir),
    );
    let parallel_dir = scratch_cache("tel-parallel");
    let opts8 = DseOptions::default()
        .with_workers(8)
        .with_cache_dir(&parallel_dir);
    let parallel = run_sweep(&points, &opts8);

    let a = serial.telemetry.hist("dse.point.cycles").unwrap();
    let b = parallel.telemetry.hist("dse.point.cycles").unwrap();
    assert_eq!(a.count(), points.len() as u64);
    assert_eq!(a, b, "bucket counts must not depend on worker count");
    for q in [0.5, 0.95, 0.99, 1.0] {
        assert_eq!(a.quantile(q), b.quantile(q), "q{q} differs");
    }
    assert_eq!(
        serial.telemetry.counter("dse.points.simulated"),
        parallel.telemetry.counter("dse.points.simulated")
    );

    // Warm re-run: all hits, same histogram.
    let warm = run_sweep(&points, &opts8);
    assert_eq!(warm.hits, points.len());
    assert_eq!(
        warm.telemetry.hist("dse.point.cycles").unwrap(),
        a,
        "cache hits must record the same per-point telemetry as fresh runs"
    );
    assert_eq!(
        warm.telemetry.counter("dse.points.cache_hits"),
        points.len() as u64
    );

    let _ = std::fs::remove_dir_all(serial_dir);
    let _ = std::fs::remove_dir_all(parallel_dir);
}

#[test]
fn second_run_is_all_cache_hits_and_identical() {
    let spec = smoke_spec();
    let points = spec.points();
    let dir = scratch_cache("rerun");

    let opts = DseOptions::default().with_workers(2).with_cache_dir(&dir);
    let first = run_sweep(&points, &opts);
    assert_eq!(first.hits, 0);
    assert_eq!(first.misses, points.len());

    let second = run_sweep(&points, &opts);
    assert_eq!(
        second.hits,
        points.len(),
        "every point must be served from cache"
    );
    assert_eq!(second.misses, 0);
    assert_eq!(second.corrupt, 0);
    assert!(second.outcomes.iter().all(|o| o.from_cache));
    assert_eq!(
        table_csv(&spec, &first),
        table_csv(&spec, &second),
        "cached results must reproduce the fresh report byte-for-byte"
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupted_entry_is_detected_and_resimulated() {
    let spec = smoke_spec();
    let points = spec.points();
    let dir = scratch_cache("corrupt");

    let opts = DseOptions::default().with_workers(1).with_cache_dir(&dir);
    let first = run_sweep(&points, &opts);
    assert_eq!(first.misses, points.len());

    // Vandalize one entry: truncate it mid-payload.
    let victim = salam_dse::ResultCache::at(&dir).entry_path(&points[3].cache_id());
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &text[..text.len() / 2]).unwrap();

    let second = run_sweep(&points, &opts);
    assert_eq!(second.corrupt, 1, "the truncated entry must be flagged");
    assert_eq!(second.hits, points.len() - 1);
    assert_eq!(second.misses, 0);
    assert_eq!(
        table_csv(&spec, &first),
        table_csv(&spec, &second),
        "re-simulation must restore the exact original result"
    );

    // The rewritten entry is healthy again.
    let third = run_sweep(&points, &opts);
    assert_eq!(third.hits, points.len());
    assert_eq!(third.corrupt, 0);

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn no_cache_mode_always_simulates() {
    let spec = SweepSpec::new("nocache", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=4,u=1]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 })
        }))
        .axis(Axis::spm_latency(&[1, 2]));
    let points = spec.points();
    let opts = DseOptions::default().with_workers(1).without_cache();
    let a = run_sweep(&points, &opts);
    let b = run_sweep(&points, &opts);
    assert_eq!(a.hits + b.hits, 0);
    assert_eq!(a.misses + b.misses, 2 * points.len());
}

#[test]
fn pareto_frontier_over_sweep_objectives() {
    let spec = smoke_spec();
    let points = spec.points();
    let run = run_sweep(
        &points,
        &DseOptions::default().with_workers(2).without_cache(),
    );
    let objs: Vec<[f64; 3]> = run
        .outcomes
        .iter()
        .map(|o| salam_dse::objectives(o.expect_payload()))
        .collect();
    let frontier = pareto_frontier(&objs);
    assert!(!frontier.is_empty());
    // No frontier point may be dominated by any other point.
    for &i in &frontier {
        for (j, p) in objs.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates = p.iter().zip(&objs[i]).all(|(a, b)| a <= b)
                && p.iter().zip(&objs[i]).any(|(a, b)| a < b);
            assert!(!dominates, "frontier point {i} dominated by {j}");
        }
    }
}

/// A job wrapper that panics for one designated point. Used to prove a
/// sweep survives a diverging design point: the point becomes a
/// `failed:<cause>` row, nothing else changes.
struct Sabotaged {
    inner: salam_dse::StandalonePoint,
    poisoned: bool,
}

impl SweepJob for Sabotaged {
    type Output = salam::RunReport;

    fn cache_id(&self) -> salam_dse::CacheId {
        self.inner.cache_id()
    }

    fn run(&self) -> salam::RunReport {
        if self.poisoned {
            panic!("deliberate divergence for test");
        }
        self.inner.run()
    }
}

#[test]
fn sweep_survives_a_panicking_job() {
    let spec = smoke_spec();
    let points = spec.points();
    let poisoned_idx = 3;
    let jobs: Vec<Sabotaged> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Sabotaged {
            inner: p.clone(),
            poisoned: i == poisoned_idx,
        })
        .collect();

    let dir = scratch_cache("panic");
    let opts = DseOptions::default().with_workers(4).with_cache_dir(&dir);
    let run = run_sweep(&jobs, &opts);

    assert_eq!(run.outcomes.len(), points.len(), "sweep must complete");
    assert_eq!(run.failed, 1);
    let failed = &run.outcomes[poisoned_idx];
    assert!(failed.payload().is_none());
    assert_eq!(
        failed.failure_label().as_deref(),
        Some("failed:deliberate divergence for test")
    );
    assert_eq!(
        failed.failure().unwrap().attempts,
        2,
        "default retry budget is one extra attempt"
    );

    // Every healthy row is byte-identical to a clean sweep of the same spec.
    let clean_dir = scratch_cache("panic-clean");
    let clean = run_sweep(
        &points,
        &DseOptions::default()
            .with_workers(4)
            .with_cache_dir(&clean_dir),
    );
    for (i, (sab, ok)) in run.outcomes.iter().zip(&clean.outcomes).enumerate() {
        if i == poisoned_idx {
            continue;
        }
        assert_eq!(
            sab.expect_payload().to_json(),
            ok.expect_payload().to_json()
        );
    }

    // A failed point is never cached: re-running the same jobs fails the
    // point again as a miss while the rest hit.
    let second = run_sweep(&jobs, &opts);
    assert_eq!(second.hits, points.len() - 1);
    assert_eq!(second.failed, 1);
    assert!(!second.outcomes[poisoned_idx].from_cache);

    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(clean_dir);
}

/// A statically invalid point — here a zero-port SPM, the kind of value an
/// axis grid sweeps through naturally — must become an `invalid:<code>` row
/// without ever simulating or touching the cache.
#[test]
fn invalid_point_consumes_no_simulation_slot_or_cache_entry() {
    let spec = SweepSpec::new("invalid", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=4,u=1]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 })
        }))
        .axis(Axis::spm_ports(&[0, 2]));
    let points = spec.points();
    assert_eq!(points.len(), 2);

    let dir = scratch_cache("invalid");
    let opts = DseOptions::default().with_workers(2).with_cache_dir(&dir);
    let run = run_sweep(&points, &opts);

    assert_eq!(run.invalid, 1);
    assert_eq!(run.failed, 0, "a screened point is not a failure");
    assert_eq!(run.misses, 1, "only the valid point simulates");
    assert!(run.summary().contains("failed=0 invalid=1"));

    let bad = &run.outcomes[0];
    assert!(bad.payload().is_none());
    assert_eq!(bad.failure_label().as_deref(), Some("invalid:C001"));
    let diag = bad.invalid().expect("carries the rejecting diagnostic");
    assert_eq!(diag.code, "C001");
    assert!(diag.message.contains("spm_read_ports"), "{}", diag.message);
    run.outcomes[1].expect_payload();

    // No cache entry was written for the invalid point, and a re-run
    // screens it again rather than serving anything stale.
    let cache = salam_dse::ResultCache::at(&dir);
    assert!(!cache.entry_path(&points[0].cache_id()).exists());
    let second = run_sweep(&points, &opts);
    assert_eq!(second.invalid, 1);
    assert_eq!(second.hits, 1);
    assert!(!second.outcomes[0].from_cache);

    let _ = std::fs::remove_dir_all(dir);
}

/// The satellite-1 pattern end-to-end: each worker thread records into its
/// own `TraceRecorder` via a thread-local `SharedTrace` (now `Send + Sync`),
/// and the per-worker traces merge into one coherent, time-sorted timeline.
#[test]
fn per_worker_traces_merge_into_one_timeline() {
    use salam_obs::{SharedTrace, TraceRecorder};

    let kernels: Vec<KernelSpec> = vec![
        KernelSpec::custom("gemm[n=4,u=1]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 })
        }),
        KernelSpec::bench(Bench::SpmvCrs),
    ];
    let kernels = Arc::new(kernels);

    let recorders: Vec<TraceRecorder> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..kernels.len())
            .map(|i| {
                let kernels = kernels.clone();
                scope.spawn(move || {
                    // One recorder per worker — no sharing, no contention.
                    let mut trace = SharedTrace::enabled();
                    let track = trace.track(&format!("worker{i}"));
                    let span = trace.begin_span(track, &kernels[i].id, (i as u64 + 1) * 10);
                    let report = salam::standalone::run_kernel(
                        &kernels[i].build(),
                        &StandaloneConfig::default(),
                    );
                    trace.counter(track, "cycles", (i as u64 + 1) * 100, report.cycles as f64);
                    trace.end_span(span, (i as u64 + 1) * 1000);
                    trace
                        .take_recorder()
                        .expect("enabled handle owns a recorder")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut merged = TraceRecorder::new(4096);
    for rec in &recorders {
        merged.merge_from(rec);
    }
    assert_eq!(merged.tracks().len(), 2);
    // 2 workers × (begin + counter + end).
    assert_eq!(merged.len(), 6);
    let ts: Vec<u64> = merged.events().map(|e| e.ts_ps()).collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "merged timeline must be sorted"
    );
}

/// Flow-based pruning on real kernels: the verdict vector is a pure
/// function of the point set (identical across worker counts), pruned
/// points never simulate (no cache entry, no miss), and the pruned count
/// lands in the summary.
#[test]
fn pruned_sweep_is_deterministic_and_skips_simulation() {
    use salam_dse::run_sweep_pruned;

    // gemm only: 4 points, reference = ports=1/window=64.
    let spec = SweepSpec::new("prune", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=8,u=2]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 })
        }))
        .axis(Axis::spm_ports(&[1, 2]))
        .axis(Axis::reservation_entries(&[8, 64]));
    let points = spec.points();
    let refs: Vec<usize> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.label().ends_with("/ports=1/window=64"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(refs, [1]);

    let serial = run_sweep_pruned(
        &points,
        &refs,
        &DseOptions::default().without_cache().with_workers(1),
    );
    let parallel = run_sweep_pruned(
        &points,
        &refs,
        &DseOptions::default().without_cache().with_workers(4),
    );
    let labels = |run: &salam_dse::SweepRun<salam::RunReport>| -> Vec<Option<String>> {
        run.outcomes.iter().map(|o| o.failure_label()).collect()
    };
    assert_eq!(labels(&serial), labels(&parallel));
    assert!(serial.pruned > 0, "the starved-window points should prune");
    assert_eq!(serial.pruned, parallel.pruned);
    // Pruned points never simulated: misses cover only the reference and
    // the survivors.
    assert_eq!(
        serial.misses,
        points.len() - serial.pruned,
        "each non-pruned point simulates exactly once"
    );
    assert!(serial
        .summary()
        .contains(&format!("pruned={}", serial.pruned)));
    // Every pruned verdict cites F005 and the reference point.
    for outcome in &serial.outcomes {
        if let Some(d) = outcome.pruned() {
            assert_eq!(d.code, "F005");
            assert!(d.message.contains("ports=1/window=64"), "{}", d.message);
        }
    }
}
