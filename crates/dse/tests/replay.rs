//! End-to-end guarantees of the trace-replay fast path: cycle accuracy
//! against the event engine across every MachSuite kernel on a
//! three-axis grid, the engine selector's sim/replay split on mixed
//! sweeps, and cache-domain separation between replayed and simulated
//! results.

use std::path::PathBuf;

use machsuite::Bench;
use salam::standalone::{run_kernel, StandaloneConfig};
use salam_dse::{
    run_replay_sweep, Axis, DseOptions, EngineKind, KernelSpec, ReplayOptions, SweepSpec,
};

/// A fresh scratch cache directory unique to this test.
fn scratch_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("salam-replay-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Outstanding-read-cap axis (a replay-safe knob without a stock helper).
fn reads_axis(values: &[usize]) -> Axis {
    values.iter().fold(Axis::new("reads"), |a, &v| {
        a.setting(v.to_string(), move |c| c.engine.max_outstanding_reads = v)
    })
}

/// The paper's acceptance grid: every MachSuite kernel over a three-axis
/// replay-safe grid, measured against the event engine in check mode.
/// Replay must stay within 2% of simulated cycles (it is in fact exact),
/// and no point may undercut the static lower bound (a bound violation
/// would surface as a `sim-fallback` row).
#[test]
fn nine_kernels_replay_within_two_percent_over_three_axis_grid() {
    let mut spec = SweepSpec::new("replay-accept", StandaloneConfig::default())
        .axis(Axis::spm_ports(&[1, 2]))
        .axis(Axis::spm_latency(&[1, 3]))
        .axis(reads_axis(&[4, 64]));
    for bench in Bench::ALL {
        spec = spec.kernel(KernelSpec::bench(bench));
    }
    let points = spec.points();
    let opts = ReplayOptions {
        inner: DseOptions::default().without_cache(),
        check: true,
    };
    let run = run_replay_sweep(&points, &StandaloneConfig::default(), &opts);

    assert_eq!(run.outcomes.len(), 9 * 8);
    assert_eq!(run.failed, 0);
    assert_eq!(run.invalid, 0);
    assert_eq!(
        run.fallbacks, 0,
        "a fallback means replay undercut the static lower bound"
    );
    let mut max_err: f64 = 0.0;
    for (point, (outcome, prov)) in points.iter().zip(run.outcomes.iter().zip(&run.provenance)) {
        let report = outcome.payload().expect("point succeeded");
        assert!(report.cycles > 0);
        match prov.engine {
            EngineKind::Replay => {
                let err = prov.err_pct.expect("check mode measured the error");
                assert!(
                    err <= 2.0,
                    "{}: replay error {err:.3}% exceeds 2%",
                    point.label()
                );
                max_err = max_err.max(err);
                let bound = prov.bound.expect("replayed points carry a bound");
                assert!(
                    report.cycles >= bound,
                    "{}: replayed {} cycles below static bound {}",
                    point.label(),
                    report.cycles,
                    bound
                );
                // Attribution stays a full partition of the replayed run.
                assert_eq!(report.stats.attribution.total(), report.cycles);
            }
            // The ports=2/spm-lat=1/reads=64 point *is* the baseline.
            EngineKind::Sim => assert_eq!(
                point.config.canonical_repr(),
                salam_dse::baseline_config(&point.config).canonical_repr()
            ),
            EngineKind::SimFallback => unreachable!("fallbacks asserted zero"),
        }
    }
    // One baseline-equal point per kernel, everything else replayed.
    assert_eq!(run.simulated, 9);
    assert_eq!(run.replayed, 9 * 8 - 9);
    println!("max replay error over the acceptance grid: {max_err:.4}%");
}

/// The engine selector on a mixed sweep: points touching the unsafe
/// reservation-window axis simulate and are byte-identical to a plain
/// full-sim run; safe-axis points replay.
#[test]
fn mixed_sweep_selector_splits_sim_and_replay() {
    let spec = SweepSpec::new("mixed", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=8,u=2]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 2 })
        }))
        .axis(Axis::reservation_entries(&[8, 128]))
        .axis(Axis::spm_ports(&[1, 2]));
    let points = spec.points();
    let opts = ReplayOptions {
        inner: DseOptions::default().without_cache(),
        check: false,
    };
    let run = run_replay_sweep(&points, &StandaloneConfig::default(), &opts);

    for (i, point) in points.iter().enumerate() {
        let is_default_window = point.config.engine.reservation_entries == 128;
        let is_baseline = point.config.spm_read_ports == 2;
        let expected = if !is_default_window || is_baseline {
            EngineKind::Sim
        } else {
            EngineKind::Replay
        };
        assert_eq!(run.provenance[i].engine, expected, "at {}", point.label());
        if expected == EngineKind::Sim {
            // Unsafe-axis (and baseline-reuse) rows are byte-identical to
            // a from-scratch full simulation.
            let sim = run_kernel(&point.kernel.build(), &point.config);
            assert_eq!(
                run.outcomes[i].payload().expect("sim point ok").to_json(),
                sim.to_json(),
                "at {}",
                point.label()
            );
        }
    }
    assert_eq!(run.simulated, 3);
    assert_eq!(run.replayed, 1);
}

/// Replay results cache under their own domain and are served back on a
/// second run without re-simulating — and the baseline bundle caches too,
/// so a warm second sweep does zero event-engine work.
#[test]
fn replay_results_cache_and_rerun_hits() {
    let dir = scratch_cache("rerun");
    let spec = SweepSpec::new("cache", StandaloneConfig::default())
        .kernel(KernelSpec::custom("gemm[n=8,u=1]", || {
            machsuite::gemm::build(&machsuite::gemm::Params { n: 8, unroll: 1 })
        }))
        .axis(Axis::spm_ports(&[1, 2, 4]));
    let points = spec.points();
    let opts = ReplayOptions {
        inner: DseOptions::default().with_cache_dir(&dir),
        check: false,
    };
    let cold = run_replay_sweep(&points, &StandaloneConfig::default(), &opts);
    assert_eq!(cold.hits, 0);
    let warm = run_replay_sweep(&points, &StandaloneConfig::default(), &opts);
    assert_eq!(warm.misses, 0);
    assert_eq!(warm.baseline_misses, 0);
    // Warm rows are byte-identical to cold rows, engine labels included.
    for ((c, w), (pc, pw)) in cold
        .outcomes
        .iter()
        .zip(&warm.outcomes)
        .zip(cold.provenance.iter().zip(&warm.provenance))
    {
        assert_eq!(
            c.payload().expect("cold ok").to_json(),
            w.payload().expect("warm ok").to_json()
        );
        assert_eq!(pc.engine, pw.engine);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
