//! Memory-dependence analysis: the dynamic loop-carried profiler shared
//! with the HLS scheduler, plus a purely static affine-address analyzer
//! feeding the hazard lints.
//!
//! Two complementary views live here:
//!
//! * **Dynamic** ([`profile_memdeps`]) — runs the reference interpreter and
//!   records store→load conflicts with their iteration distance, the way an
//!   HLS co-simulation would. This is the pass `salam-hls` re-exports; the
//!   scheduler and the lint agree on dependence edges by construction.
//! * **Static** ([`analyze_accesses`], [`static_memdeps`], [`check_bounds`],
//!   [`check_shared_spm`]) — resolves load/store addresses into affine
//!   forms `base + Σ stride·iv` over counted-loop induction variables.
//!   Where resolution is *exact* it emits RAW/WAR/WAW dependence edges
//!   (`M001`/`M002`), statically-out-of-bounds accesses (`M003`), and
//!   cross-accelerator shared-SPM write races (`M004`). Anything it cannot
//!   prove it stays silent about: the lint never guesses.

use std::collections::HashMap;

use salam_ir::analysis::{find_natural_loops, Cfg, DomTree};
use salam_ir::interp::{run_function, Memory, Observer, ProfileObserver, RtVal, SparseMemory};
use salam_ir::{BlockId, Function, InstId, Opcode, Type, ValueId, ValueKind};

use crate::diag::{codes, Diagnostic, Span};

// ---- dynamic profiling (promoted from crates/hls) --------------------------

/// Loop-carried RAW memory dependences, keyed by loop header: each entry is
/// `(load, store, iteration distance)` meaning the load at distance `d`
/// iterations after the store reads the store's address.
#[derive(Debug, Clone, Default)]
pub struct MemDeps {
    by_header: HashMap<BlockId, Vec<(InstId, InstId, u64)>>,
}

impl MemDeps {
    /// Dependences recorded for the loop headed at `header`.
    pub fn for_header(&self, header: BlockId) -> &[(InstId, InstId, u64)] {
        self.by_header
            .get(&header)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total recorded dependences.
    pub fn len(&self) -> usize {
        self.by_header.values().map(Vec::len).sum()
    }

    /// Whether any dependences were found.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All recorded distances (diagnostics).
    pub fn by_header_distances(&self) -> Vec<u64> {
        self.by_header
            .values()
            .flatten()
            .map(|&(_, _, d)| d)
            .collect()
    }
}

struct DepObserver {
    /// innermost loop header per instruction (if any).
    inst_loop: HashMap<InstId, BlockId>,
    /// iteration clock per header.
    header_clock: HashMap<BlockId, u64>,
    /// address -> (store inst, its loop header, header clock at store).
    last_store: HashMap<u64, (InstId, BlockId, u64)>,
    /// (header, load, store) -> min distance.
    found: HashMap<(BlockId, InstId, InstId), u64>,
    profile: ProfileObserver,
}

impl Observer for DepObserver {
    fn on_block_enter(&mut self, f: &Function, b: BlockId) {
        *self.header_clock.entry(b).or_insert(0) += 1;
        self.profile.on_block_enter(f, b);
    }

    fn on_inst(&mut self, f: &Function, id: InstId, result: Option<&RtVal>, mem_addr: Option<u64>) {
        self.profile.on_inst(f, id, result, mem_addr);
        let Some(addr) = mem_addr else { return };
        match f.inst(id).op {
            Opcode::Store => {
                if let Some(&header) = self.inst_loop.get(&id) {
                    let clock = self.header_clock.get(&header).copied().unwrap_or(0);
                    self.last_store.insert(addr, (id, header, clock));
                } else {
                    self.last_store.remove(&addr);
                }
            }
            Opcode::Load => {
                let Some(&(store, s_header, s_clock)) = self.last_store.get(&addr) else {
                    return;
                };
                let Some(&l_header) = self.inst_loop.get(&id) else {
                    return;
                };
                if l_header != s_header {
                    return;
                }
                let now = self.header_clock.get(&l_header).copied().unwrap_or(0);
                let distance = now.saturating_sub(s_clock);
                if distance >= 1 {
                    let e = self.found.entry((l_header, id, store)).or_insert(distance);
                    *e = (*e).min(distance);
                }
            }
            _ => {}
        }
    }
}

/// Profiles `f` and returns block trip counts plus loop-carried memory
/// dependences for its innermost loops.
///
/// # Panics
///
/// Panics if the reference execution faults.
pub fn profile_memdeps(
    f: &Function,
    args: &[RtVal],
    init: &[(u64, Vec<u8>)],
) -> (ProfileObserver, MemDeps) {
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let loops = find_natural_loops(f, &cfg, &dom);
    let innermost: Vec<_> = loops
        .iter()
        .filter(|l| {
            !loops
                .iter()
                .any(|o| o.header != l.header && l.blocks.contains(&o.header))
        })
        .collect();
    let mut inst_loop = HashMap::new();
    for l in &innermost {
        for &b in &l.blocks {
            for &i in &f.block(b).insts {
                inst_loop.insert(i, l.header);
            }
        }
    }
    let mut obs = DepObserver {
        inst_loop,
        header_clock: HashMap::new(),
        last_store: HashMap::new(),
        found: HashMap::new(),
        profile: ProfileObserver::default(),
    };
    let mut mem = SparseMemory::new();
    for (addr, bytes) in init {
        mem.write(*addr, bytes);
    }
    run_function(f, args, &mut mem, &mut obs, 500_000_000).expect("profiling run");

    let mut deps = MemDeps::default();
    for ((header, load, store), distance) in obs.found {
        deps.by_header
            .entry(header)
            .or_default()
            .push((load, store, distance));
    }
    (obs.profile, deps)
}

// ---- static affine address analysis ----------------------------------------

/// An address as `base + Σ stride·phi`, where each term ranges over a
/// counted-loop induction variable. `base` folds in every constant and
/// every argument value the caller supplied.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Affine {
    base: i128,
    /// `(phi value, stride)`, sorted by value id, strides nonzero.
    terms: Vec<(ValueId, i64)>,
}

impl Affine {
    fn constant(base: i128) -> Self {
        Affine {
            base,
            terms: Vec::new(),
        }
    }

    fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    fn normalize(mut self) -> Self {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut merged: Vec<(ValueId, i64)> = Vec::with_capacity(self.terms.len());
        for (v, s) in self.terms {
            match merged.last_mut() {
                Some((lv, ls)) if *lv == v => *ls += s,
                _ => merged.push((v, s)),
            }
        }
        merged.retain(|&(_, s)| s != 0);
        self.terms = merged;
        self
    }

    fn add(&self, other: &Affine, sign: i64) -> Affine {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().map(|&(v, s)| (v, s * sign)));
        Affine {
            base: self.base + other.base * sign as i128,
            terms,
        }
        .normalize()
    }

    fn scale(&self, k: i64) -> Affine {
        Affine {
            base: self.base * k as i128,
            terms: self.terms.iter().map(|&(v, s)| (v, s * k)).collect(),
        }
        .normalize()
    }
}

/// The exact value set of one counted-loop induction variable:
/// `start, start+step, …` for `count` iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvRange {
    /// First value.
    pub start: i128,
    /// Per-iteration increment (positive).
    pub step: i64,
    /// Number of values taken (0 means the loop body never runs).
    pub count: u64,
}

impl IvRange {
    fn last(&self) -> i128 {
        if self.count == 0 {
            self.start
        } else {
            self.start + self.step as i128 * (self.count as i128 - 1)
        }
    }
}

/// One load/store whose address resolved to an affine form.
#[derive(Debug, Clone)]
pub struct StaticAccess {
    /// The instruction.
    pub inst: InstId,
    /// Its block.
    pub block: BlockId,
    /// `true` for stores.
    pub is_store: bool,
    /// Bytes touched per access.
    pub size: u64,
    /// Address interval `[lo, hi)` over all iterations, when every term's
    /// induction variable has an exact [`IvRange`].
    pub interval: Option<(i128, i128)>,
    base: i128,
    terms: Vec<(ValueId, i64)>,
}

/// A static dependence edge between two memory instructions in the same
/// innermost loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Store feeds a later load of the same address.
    Raw,
    /// Load precedes a store to the same address.
    War,
    /// Two stores hit the same address.
    Waw,
}

/// A statically-proven same-address relation, with the iteration distance
/// in the innermost loop (0 = same iteration).
#[derive(Debug, Clone, Copy)]
pub struct DepEdge {
    /// Kind of hazard.
    pub kind: DepKind,
    /// Earlier access (program order for distance 0, producing access for
    /// loop-carried edges).
    pub from: InstId,
    /// Later access.
    pub to: InstId,
    /// Iteration distance in the innermost loop.
    pub distance: u64,
    /// The loop header the edge belongs to.
    pub header: BlockId,
}

/// The static analyzer's view of one function.
#[derive(Debug, Clone, Default)]
pub struct StaticDeps {
    /// All same-address edges proven.
    pub edges: Vec<DepEdge>,
    /// Hazard lints: `M001` (loop-carried RAW, info) and `M002`
    /// (same-address WAW, warning).
    pub diags: Vec<Diagnostic>,
}

struct Resolver<'a> {
    f: &'a Function,
    args: &'a [RtVal],
    memo: HashMap<ValueId, Option<Affine>>,
    ranges: HashMap<ValueId, IvRange>,
}

impl<'a> Resolver<'a> {
    fn new(f: &'a Function, args: &'a [RtVal]) -> Self {
        let mut r = Resolver {
            f,
            args,
            memo: HashMap::new(),
            ranges: HashMap::new(),
        };
        r.derive_iv_ranges();
        r
    }

    /// Resolves `v` to an affine form, or `None` when it depends on memory,
    /// floats, unknown arguments, or non-affine arithmetic.
    fn resolve(&mut self, v: ValueId) -> Option<Affine> {
        if let Some(cached) = self.memo.get(&v) {
            return cached.clone();
        }
        // Break self-reference through phis: a phi is its own symbol.
        let result = self.resolve_uncached(v);
        self.memo.insert(v, result.clone());
        result
    }

    fn resolve_uncached(&mut self, v: ValueId) -> Option<Affine> {
        match self.f.value_kind(v).clone() {
            ValueKind::Const(c) => c.as_int().map(|i| Affine::constant(i as i128)),
            ValueKind::Arg(i) => match self.args.get(i as usize) {
                Some(RtVal::P(p)) => Some(Affine::constant(*p as i128)),
                Some(RtVal::I(x)) => Some(Affine::constant(*x as i128)),
                _ => None,
            },
            ValueKind::Inst(id) => {
                let inst = self.f.inst(id).clone();
                match inst.op {
                    Opcode::Phi => Some(Affine {
                        base: 0,
                        terms: vec![(v, 1)],
                    }),
                    Opcode::Add => {
                        let a = self.resolve(inst.operands[0])?;
                        let b = self.resolve(inst.operands[1])?;
                        Some(a.add(&b, 1))
                    }
                    Opcode::Sub => {
                        let a = self.resolve(inst.operands[0])?;
                        let b = self.resolve(inst.operands[1])?;
                        Some(a.add(&b, -1))
                    }
                    Opcode::Mul => {
                        let a = self.resolve(inst.operands[0])?;
                        let b = self.resolve(inst.operands[1])?;
                        if b.is_constant() {
                            Some(a.scale(i64::try_from(b.base).ok()?))
                        } else if a.is_constant() {
                            Some(b.scale(i64::try_from(a.base).ok()?))
                        } else {
                            None
                        }
                    }
                    Opcode::Shl => {
                        let a = self.resolve(inst.operands[0])?;
                        let b = self.resolve(inst.operands[1])?;
                        if b.is_constant() && (0..=62).contains(&b.base) {
                            Some(a.scale(1i64 << b.base))
                        } else {
                            None
                        }
                    }
                    // Width changes are treated as value-preserving; address
                    // arithmetic in well-typed kernels never wraps.
                    Opcode::SExt
                    | Opcode::ZExt
                    | Opcode::Trunc
                    | Opcode::BitCast
                    | Opcode::PtrToInt
                    | Opcode::IntToPtr => self.resolve(inst.operands[0]),
                    Opcode::Gep { ref elem } => {
                        let mut addr = self.resolve(inst.operands[0])?;
                        let mut cur: Type = elem.clone();
                        for (k, &idx) in inst.operands[1..].iter().enumerate() {
                            if k > 0 {
                                let Type::Array { elem, .. } = cur else {
                                    return None;
                                };
                                cur = *elem;
                            }
                            let i = self.resolve(idx)?;
                            let sz = i64::try_from(cur.size_bytes()).ok()?;
                            addr = addr.add(&i.scale(sz), 1);
                        }
                        Some(addr)
                    }
                    _ => None,
                }
            }
        }
    }

    /// Pattern-matches every phi against the canonical counted-loop shape
    /// (`phi [c0, pre], [iv+step, latch]` with a `icmp {slt,ult,sle,ule}
    /// iv, bound` feeding the header's `cond_br`) and records the exact
    /// value range when init, step and bound all fold to constants.
    fn derive_iv_ranges(&mut self) {
        let f = self.f;
        let mut found: Vec<(ValueId, IvRange)> = Vec::new();
        for (bid, b) in f.blocks() {
            for &pid in &b.insts {
                let phi = f.inst(pid);
                if phi.op != Opcode::Phi || phi.operands.len() != 2 {
                    continue;
                }
                let Some(phi_v) = f.inst_result(pid) else {
                    continue;
                };
                // One incoming must be `phi + step`, the other the start.
                let mut start = None;
                let mut step: Option<i64> = None;
                for &inc in &phi.operands {
                    if let ValueKind::Inst(def) = f.value_kind(inc) {
                        let d = f.inst(*def);
                        if d.op == Opcode::Add && d.operands.contains(&phi_v) {
                            let other = if d.operands[0] == phi_v {
                                d.operands[1]
                            } else {
                                d.operands[0]
                            };
                            if let Some(a) = self.resolve(other) {
                                if a.is_constant() {
                                    step = i64::try_from(a.base).ok();
                                    continue;
                                }
                            }
                            continue;
                        }
                    }
                    if let Some(a) = self.resolve(inc) {
                        if a.is_constant() {
                            start = Some(a.base);
                        }
                    }
                }
                let (Some(start), Some(step)) = (start, step) else {
                    continue;
                };
                if step <= 0 {
                    continue;
                }
                // The header's conditional exit test bounds the range.
                let Some(term) = f.terminator(bid) else {
                    continue;
                };
                if f.inst(term).op != Opcode::CondBr {
                    continue;
                }
                let cond = f.inst(term).operands[0];
                let ValueKind::Inst(cmp_id) = f.value_kind(cond) else {
                    continue;
                };
                let cmp = f.inst(*cmp_id);
                let Opcode::ICmp(pred) = &cmp.op else {
                    continue;
                };
                use salam_ir::IntPredicate as P;
                let inclusive = match pred {
                    P::Slt | P::Ult => false,
                    P::Sle | P::Ule => true,
                    _ => continue,
                };
                if cmp.operands[0] != phi_v {
                    continue;
                }
                let Some(bound) = self.resolve(cmp.operands[1]) else {
                    continue;
                };
                if !bound.is_constant() {
                    continue;
                }
                let end = bound.base;
                let count = if inclusive {
                    if start > end {
                        0
                    } else {
                        ((end - start) / step as i128 + 1) as u64
                    }
                } else if start >= end {
                    0
                } else {
                    ((end - start + step as i128 - 1) / step as i128) as u64
                };
                found.push((phi_v, IvRange { start, step, count }));
            }
        }
        self.ranges.extend(found);
    }

    fn interval(&self, a: &Affine, size: u64) -> Option<(i128, i128)> {
        let (mut lo, mut hi) = (a.base, a.base);
        for &(v, s) in &a.terms {
            let r = self.ranges.get(&v)?;
            if r.count == 0 {
                return None; // never executed
            }
            let (c0, c1) = (s as i128 * r.start, s as i128 * r.last());
            lo += c0.min(c1);
            hi += c0.max(c1);
        }
        Some((lo, hi + size as i128))
    }
}

fn access_size(f: &Function, id: InstId) -> u64 {
    let inst = f.inst(id);
    match inst.op {
        Opcode::Load => inst.ty.size_bytes(),
        Opcode::Store => f.value_type(inst.operands[0]).size_bytes(),
        _ => 0,
    }
}

/// Resolves every load/store of `f` whose address folds to an affine form
/// over counted-loop induction variables. `args` supplies concrete values
/// for pointer/integer arguments (pass `&[]` when unknown — accesses whose
/// addresses depend on them are simply skipped).
pub fn analyze_accesses(f: &Function, args: &[RtVal]) -> Vec<StaticAccess> {
    let mut r = Resolver::new(f, args);
    let mut out = Vec::new();
    for (bid, b) in f.blocks() {
        for &id in &b.insts {
            let inst = f.inst(id);
            let is_store = inst.op == Opcode::Store;
            if !is_store && inst.op != Opcode::Load {
                continue;
            }
            let ptr = if is_store {
                inst.operands[1]
            } else {
                inst.operands[0]
            };
            let Some(a) = r.resolve(ptr) else { continue };
            let size = access_size(f, id);
            let interval = r.interval(&a, size);
            out.push(StaticAccess {
                inst: id,
                block: bid,
                is_store,
                size,
                interval,
                base: a.base,
                terms: a.terms,
            });
        }
    }
    out
}

/// Statically proves same-address relations between memory accesses of
/// each innermost loop and emits the hazard lints (`M001` loop-carried
/// RAW as info, `M002` same-address WAW as warning).
///
/// Only *exact* matches are reported: both accesses must share the same
/// affine terms, with at most one term over the loop's own induction
/// variable, and the base difference must be divisible by that term's
/// per-iteration address step. Unresolvable accesses generate nothing.
pub fn static_memdeps(f: &Function, args: &[RtVal]) -> StaticDeps {
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let loops = find_natural_loops(f, &cfg, &dom);
    let innermost: Vec<_> = loops
        .iter()
        .filter(|l| {
            !loops
                .iter()
                .any(|o| o.header != l.header && l.blocks.contains(&o.header))
        })
        .collect();

    let resolver = Resolver::new(f, args);
    let accesses = analyze_accesses(f, args);
    // Program order of instructions, for distance-0 direction.
    let mut order: HashMap<InstId, usize> = HashMap::new();
    let mut pos = 0usize;
    for (_, b) in f.blocks() {
        for &i in &b.insts {
            order.insert(i, pos);
            pos += 1;
        }
    }

    let mut deps = StaticDeps::default();
    for l in &innermost {
        // Phis of this loop's header are its induction variables.
        let header_phis: Vec<ValueId> = f
            .block(l.header)
            .insts
            .iter()
            .filter(|&&i| f.inst(i).op == Opcode::Phi)
            .filter_map(|&i| f.inst_result(i))
            .collect();
        let in_loop: Vec<&StaticAccess> = accesses
            .iter()
            .filter(|a| l.blocks.contains(&a.block))
            .collect();
        for (i, a) in in_loop.iter().enumerate() {
            for b in in_loop.iter().skip(i + 1) {
                if !a.is_store && !b.is_store {
                    continue;
                }
                if a.size != b.size {
                    continue;
                }
                // Split terms into the (single) inner-IV term and the rest,
                // which must match exactly.
                type SplitTerms = (Option<(ValueId, i64)>, Vec<(ValueId, i64)>);
                let split = |acc: &StaticAccess| -> Option<SplitTerms> {
                    let mut inner = None;
                    let mut outer = Vec::new();
                    for &(v, s) in &acc.terms {
                        if header_phis.contains(&v) {
                            if inner.is_some() {
                                return None;
                            }
                            inner = Some((v, s));
                        } else {
                            outer.push((v, s));
                        }
                    }
                    Some((inner, outer))
                };
                let (Some((ia, oa)), Some((ib, ob))) = (split(a), split(b)) else {
                    continue;
                };
                if oa != ob || ia != ib {
                    continue;
                }
                // Per-iteration address step of the inner term (0 when the
                // address is invariant in this loop).
                let iter_step: i128 = match ia {
                    Some((v, s)) => {
                        let Some(r) = resolver.ranges.get(&v) else {
                            continue;
                        };
                        s as i128 * r.step as i128
                    }
                    None => 0,
                };
                // addr_a(k1) = addr_b(k2)  ⇒  k2 = k1 + diff/iter_step, so
                // the sign of delta says which access executes first.
                let diff = a.base - b.base;
                let (src, dst, distance): (&StaticAccess, &StaticAccess, u64) = if iter_step == 0 {
                    if diff != 0 {
                        continue; // distinct fixed addresses, no overlap
                    }
                    // Same fixed address every iteration: program order
                    // decides; a load *before* the store re-reads the
                    // previous iteration's value (distance 1).
                    let (f, s) = if order[&a.inst] <= order[&b.inst] {
                        (*a, *b)
                    } else {
                        (*b, *a)
                    };
                    if !f.is_store && s.is_store {
                        (s, f, 1)
                    } else {
                        (f, s, 0)
                    }
                } else {
                    if diff % iter_step != 0 {
                        continue;
                    }
                    let delta = diff / iter_step;
                    if delta > 0 {
                        match u64::try_from(delta) {
                            Ok(d) => (*a, *b, d),
                            Err(_) => continue,
                        }
                    } else if delta < 0 {
                        match u64::try_from(-delta) {
                            Ok(d) => (*b, *a, d),
                            Err(_) => continue,
                        }
                    } else if order[&a.inst] <= order[&b.inst] {
                        (*a, *b, 0)
                    } else {
                        (*b, *a, 0)
                    }
                };
                let (from, to) = (src.inst, dst.inst);
                let kind = match (src.is_store, dst.is_store) {
                    (true, true) => DepKind::Waw,
                    (true, false) => DepKind::Raw,
                    (false, true) => DepKind::War,
                    (false, false) => unreachable!("filtered above"),
                };
                deps.edges.push(DepEdge {
                    kind,
                    from,
                    to,
                    distance,
                    header: l.header,
                });
                let span = Span::block(&f.name, &f.block(src.block).name);
                match kind {
                    DepKind::Raw if distance > 0 => deps.diags.push(Diagnostic::info(
                        codes::M001,
                        span,
                        format!(
                            "loop-carried RAW memory dependence at distance {distance} \
                             (store feeds a load {distance} iteration(s) later); \
                             bounds the initiation interval"
                        ),
                    )),
                    DepKind::Waw => deps.diags.push(Diagnostic::warning(
                        codes::M002,
                        span,
                        format!(
                            "two stores statically hit the same address \
                             (iteration distance {distance}); the earlier value is lost"
                        ),
                    )),
                    _ => {}
                }
            }
        }
    }
    deps
}

/// A named address region accesses are allowed to touch.
#[derive(Debug, Clone)]
pub struct MemRegion {
    /// First valid byte.
    pub lo: u64,
    /// One past the last valid byte.
    pub hi: u64,
    /// Name used in diagnostics (`spm`, `mmr`, …).
    pub label: String,
}

impl MemRegion {
    /// Builds a region.
    pub fn new(lo: u64, hi: u64, label: impl Into<String>) -> Self {
        MemRegion {
            lo,
            hi,
            label: label.into(),
        }
    }
}

/// Flags every fully-resolved access whose address interval escapes all of
/// `regions` (`M003`, error). An access only triggers when its *entire*
/// value set is statically known, so a finding is a proof, not a guess.
pub fn check_bounds(f: &Function, args: &[RtVal], regions: &[MemRegion]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for a in analyze_accesses(f, args) {
        let Some((lo, hi)) = a.interval else { continue };
        let contained = regions
            .iter()
            .any(|r| lo >= r.lo as i128 && hi <= r.hi as i128);
        if !contained {
            let names: Vec<&str> = regions.iter().map(|r| r.label.as_str()).collect();
            diags.push(Diagnostic::error(
                codes::M003,
                Span::block(&f.name, &f.block(a.block).name),
                format!(
                    "{} touches [{lo:#x}, {hi:#x}) which escapes every declared region ({})",
                    if a.is_store { "store" } else { "load" },
                    names.join(", "),
                ),
            ));
        }
    }
    diags
}

/// Range-proven bounds check (`F001`, error), covering accesses the
/// affine resolver cannot fold — masked indices, division-derived
/// offsets, anything non-affine that interval analysis still bounds.
///
/// An access fires only when its *entire* flow interval is disjoint from
/// every declared region: intervals over-approximate the address set, so
/// full disjointness proves the access can never land in bounds. Accesses
/// the affine path fully resolves are left to [`check_bounds`] (`M003`)
/// so one defect reports exactly once; accesses in blocks `salam-flow`'s
/// constant propagation proves dead are skipped — they never execute.
pub fn check_bounds_flow(
    f: &Function,
    facts: &salam_flow::FlowFacts,
    args: &[RtVal],
    regions: &[MemRegion],
) -> Vec<Diagnostic> {
    let affine_resolved: std::collections::BTreeSet<InstId> = analyze_accesses(f, args)
        .into_iter()
        .filter(|a| a.interval.is_some())
        .map(|a| a.inst)
        .collect();
    let mut diags = Vec::new();
    for a in &facts.accesses {
        if affine_resolved.contains(&a.inst) || !facts.sccp.executable.contains(&a.block) {
            continue;
        }
        let Some((lo, hi)) = a.interval else { continue };
        let disjoint = regions
            .iter()
            .all(|r| hi <= r.lo as i128 || lo >= r.hi as i128);
        if disjoint && !regions.is_empty() {
            let names: Vec<&str> = regions.iter().map(|r| r.label.as_str()).collect();
            diags.push(Diagnostic::error(
                codes::F001,
                Span::block(&f.name, &f.block(a.block).name),
                format!(
                    "{} range [{lo:#x}, {hi:#x}) is provably disjoint from every \
                     declared region ({}); the access is out of bounds on every path",
                    if a.is_store { "store" } else { "load" },
                    names.join(", "),
                ),
            ));
        }
    }
    diags
}

/// Flow-based shared-SPM race lint (`M004`, warning): like
/// [`check_shared_spm`] but driven by interval analysis, so it covers
/// non-affine addresses, drops stores in provably-dead blocks, and stays
/// silent for accelerator pairs whose bounded store footprints are
/// provably disjoint. Each accelerator supplies its own argument bindings
/// for the analysis.
pub fn check_shared_spm_flow(
    accels: &[(&str, &Function, &[RtVal])],
    shared_lo: u64,
    shared_hi: u64,
) -> Vec<Diagnostic> {
    let per_accel: Vec<Vec<(i128, i128)>> = accels
        .iter()
        .map(|(_, f, args)| {
            let facts = salam_flow::analyze(f, args);
            facts
                .accesses
                .iter()
                .filter(|a| a.is_store && facts.sccp.executable.contains(&a.block))
                .filter_map(|a| a.interval)
                .filter(|&(lo, hi)| hi > shared_lo as i128 && lo < shared_hi as i128)
                .collect()
        })
        .collect();
    let mut diags = Vec::new();
    for (ai, a_spans) in per_accel.iter().enumerate() {
        for (bi, b_spans) in per_accel.iter().enumerate().skip(ai + 1) {
            let overlap = a_spans
                .iter()
                .any(|&(alo, ahi)| b_spans.iter().any(|&(blo, bhi)| alo < bhi && blo < ahi));
            if overlap {
                diags.push(Diagnostic::warning(
                    codes::M004,
                    Span::func(accels[ai].0),
                    format!(
                        "accelerators `{}` and `{}` write overlapping ranges of the \
                         shared scratchpad [{:#x}, {:#x}) (range analysis; provably \
                         disjoint pairs are suppressed)",
                        accels[ai].0, accels[bi].0, shared_lo, shared_hi
                    ),
                ));
            }
        }
    }
    diags
}

/// Cross-accelerator shared-SPM race lint (`M004`, warning): flags pairs
/// of accelerators whose statically-resolved store intervals into the
/// shared region `[shared_lo, shared_hi)` overlap. Accesses that do not
/// resolve affinely are silently ignored — see [`check_shared_spm_flow`]
/// for the interval-analysis variant.
pub fn check_shared_spm(
    accels: &[(&str, &Function)],
    shared_lo: u64,
    shared_hi: u64,
) -> Vec<Diagnostic> {
    let per_accel: Vec<(usize, Vec<(i128, i128)>)> = accels
        .iter()
        .enumerate()
        .map(|(i, (_, f))| {
            let spans = analyze_accesses(f, &[])
                .into_iter()
                .filter(|a| a.is_store)
                .filter_map(|a| a.interval)
                .filter(|&(lo, hi)| hi > shared_lo as i128 && lo < shared_hi as i128)
                .collect();
            (i, spans)
        })
        .collect();
    let mut diags = Vec::new();
    for (ai, a_spans) in &per_accel {
        for (bi, b_spans) in &per_accel {
            if bi <= ai {
                continue;
            }
            let overlap = a_spans
                .iter()
                .any(|&(alo, ahi)| b_spans.iter().any(|&(blo, bhi)| alo < bhi && blo < ahi));
            if overlap {
                diags.push(Diagnostic::warning(
                    codes::M004,
                    Span::func(accels[*ai].0),
                    format!(
                        "accelerators `{}` and `{}` statically write overlapping \
                         ranges of the shared scratchpad [{:#x}, {:#x})",
                        accels[*ai].0, accels[*bi].0, shared_lo, shared_hi
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::{FunctionBuilder, Type};

    // -- dynamic profiler (moved from crates/hls, tests move with it) --------

    #[test]
    fn nw_has_distance_one_recurrence() {
        let k = machsuite::nw::build(&machsuite::nw::Params { alen: 8, blen: 8 });
        let (_, deps) = profile_memdeps(&k.func, &k.args, &k.init);
        assert!(!deps.is_empty(), "NW's DP recurrence must be detected");
        let min_dist = deps.by_header_distances().into_iter().min().unwrap();
        assert_eq!(min_dist, 1, "m[i][j-1] is read one iteration later");
    }

    #[test]
    fn gemm_has_no_loop_carried_memory_raw() {
        let k = machsuite::gemm::build(&machsuite::gemm::Params { n: 4, unroll: 1 });
        let (_, deps) = profile_memdeps(&k.func, &k.args, &k.init);
        assert!(deps.is_empty(), "GEMM reads A/B and writes C: {deps:?}");
    }

    #[test]
    fn fft_butterflies_do_not_conflict_across_iterations() {
        let k = machsuite::fft::build(&machsuite::fft::Params { n: 16 });
        let (_, deps) = profile_memdeps(&k.func, &k.args, &k.init);
        // Butterfly addresses within one stage are disjoint; the in-place
        // update conflicts only across *stages* (outer loop), giving large
        // or no distances inside the inner loop.
        let d1 = deps
            .by_header_distances()
            .into_iter()
            .filter(|&d| d == 1)
            .count();
        assert_eq!(d1, 0, "no distance-1 recurrences inside a stage");
    }

    // -- static analyzer -----------------------------------------------------

    /// `for i in 0..n { a[i+1] = a[i] }` — a distance-1 recurrence the
    /// static analyzer must prove without running anything.
    fn shift_kernel(base: u64, n: i64) -> Function {
        let mut fb = FunctionBuilder::new("shift", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n_v = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n_v, |fb, iv| {
            let src = fb.gep1(Type::I64, a, iv, "src");
            let x = fb.load(Type::I64, src, "x");
            let one = fb.i64c(1);
            let i1 = fb.add(iv, one, "i1");
            let dst = fb.gep1(Type::I64, a, i1, "dst");
            fb.store(x, dst);
        });
        fb.ret();
        let _ = (base, n);
        fb.finish()
    }

    #[test]
    fn static_raw_distance_matches_the_pattern() {
        let f = shift_kernel(0x1000, 8);
        let args = [RtVal::P(0x1000), RtVal::I(8)];
        let deps = static_memdeps(&f, &args);
        let raw: Vec<_> = deps
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Raw)
            .collect();
        assert_eq!(raw.len(), 1, "{:?}", deps.edges);
        assert_eq!(raw[0].distance, 1);
        assert!(deps.diags.iter().any(|d| d.code == codes::M001));
    }

    #[test]
    fn static_and_dynamic_agree_on_nw_distance_one() {
        let k = machsuite::nw::build(&machsuite::nw::Params { alen: 8, blen: 8 });
        let deps = static_memdeps(&k.func, &k.args);
        let static_d1 = deps
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Raw && e.distance == 1);
        assert!(
            static_d1,
            "static analysis must find NW's distance-1 RAW: {:?}",
            deps.edges
        );
    }

    #[test]
    fn oob_store_is_flagged_and_inbounds_is_not() {
        let f = shift_kernel(0x1000, 8);
        let args = [RtVal::P(0x1000), RtVal::I(8)];
        // a[8] is written by the final iteration: 9 slots needed.
        let tight = [MemRegion::new(0x1000, 0x1000 + 8 * 8, "spm")];
        let roomy = [MemRegion::new(0x1000, 0x1000 + 9 * 8, "spm")];
        let oob = check_bounds(&f, &args, &tight);
        assert_eq!(oob.len(), 1, "{oob:?}");
        assert_eq!(oob[0].code, codes::M003);
        assert!(check_bounds(&f, &args, &roomy).is_empty());
    }

    #[test]
    fn unresolvable_addresses_stay_silent() {
        let f = shift_kernel(0x1000, 8);
        // No argument values: the base pointer is unknown, nothing resolves.
        assert!(check_bounds(&f, &[], &[MemRegion::new(0, 8, "spm")]).is_empty());
        assert!(static_memdeps(&f, &[]).diags.is_empty());
    }

    #[test]
    fn waw_between_two_stores_is_flagged() {
        // for i in 0..8 { a[i] = 1; a[i] = 2 } — the first store is dead.
        let mut fb = FunctionBuilder::new("waw", &[("a", Type::Ptr)]);
        let a = fb.arg(0);
        let zero = fb.i64c(0);
        let n = fb.i64c(8);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            let one = fb.i64c(1);
            let two = fb.i64c(2);
            fb.store(one, p);
            fb.store(two, p);
        });
        fb.ret();
        let f = fb.finish();
        let deps = static_memdeps(&f, &[RtVal::P(0x2000)]);
        assert!(
            deps.diags.iter().any(|d| d.code == codes::M002),
            "{:?}",
            deps.diags
        );
    }

    #[test]
    fn shared_spm_race_is_flagged_across_accelerators() {
        let writer = |name: &str, base: i64| {
            let mut fb = FunctionBuilder::new(name, &[]);
            let addr = fb.i64c(base);
            let p = fb.inttoptr(addr, "p");
            let zero = fb.i64c(0);
            let n = fb.i64c(16);
            fb.counted_loop("i", zero, n, |fb, iv| {
                let dst = fb.gep1(Type::I64, p, iv, "dst");
                fb.store(iv, dst);
            });
            fb.ret();
            fb.finish()
        };
        let a = writer("prod_a", 0x2000_0000);
        let b = writer("prod_b", 0x2000_0040); // overlaps a's [0x..00, 0x..80)
        let c = writer("prod_c", 0x2000_1000); // disjoint
        let diags = check_shared_spm(
            &[("prod_a", &a), ("prod_b", &b), ("prod_c", &c)],
            0x2000_0000,
            0x2001_0000,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::M004);
        assert!(diags[0].message.contains("prod_a"));
        assert!(diags[0].message.contains("prod_b"));
    }

    // -- flow-based checks ---------------------------------------------------

    /// `for i in 0..16 { p[i & 7] = i }` — a masked index the affine
    /// resolver cannot fold but interval analysis bounds to `[0, 7]`.
    fn masked_writer(name: &str) -> Function {
        let mut fb = FunctionBuilder::new(name, &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let zero = fb.i64c(0);
        let n = fb.i64c(16);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let seven = fb.i64c(7);
            let m = fb.and(iv, seven, "m");
            let dst = fb.gep1(Type::I64, p, m, "dst");
            fb.store(iv, dst);
        });
        fb.ret();
        fb.finish()
    }

    #[test]
    fn masked_index_oob_is_proven_by_ranges() {
        let f = masked_writer("masked");
        let args = [RtVal::P(0x10_000)];
        let facts = salam_flow::analyze(&f, &args);
        // Affine analysis can't see through the mask: silent.
        let low = [MemRegion::new(0, 0x100, "spm")];
        assert!(check_bounds(&f, &args, &low).is_empty());
        // Flow proves the store lands in [0x10000, 0x10040) — fully
        // disjoint from the declared region on every path.
        let oob = check_bounds_flow(&f, &facts, &args, &low);
        assert_eq!(oob.len(), 1, "{oob:?}");
        assert_eq!(oob[0].code, codes::F001);
        // A region that actually covers the footprint stays silent.
        let roomy = [MemRegion::new(0x10_000, 0x10_000 + 8 * 8, "spm")];
        assert!(check_bounds_flow(&f, &facts, &args, &roomy).is_empty());
    }

    #[test]
    fn affine_resolved_oob_reports_once_as_m003() {
        let f = shift_kernel(0x1000, 8);
        let args = [RtVal::P(0x1000), RtVal::I(8)];
        let facts = salam_flow::analyze(&f, &args);
        let tight = [MemRegion::new(0x1000, 0x1000 + 8 * 8, "spm")];
        let affine = check_bounds(&f, &args, &tight);
        let flow = check_bounds_flow(&f, &facts, &args, &tight);
        // The affine path already proved this one; flow must not repeat it.
        assert_eq!(affine.len(), 1);
        assert!(flow.is_empty(), "{flow:?}");
    }

    #[test]
    fn dead_store_does_not_raise_a_flow_shared_spm_race() {
        // `if (5 < 3) { *(0x3000_0000) = 1 }` — the store never runs.
        let mut fb = FunctionBuilder::new("dead_w", &[]);
        let wr = fb.add_block("wr");
        let done = fb.add_block("done");
        let five = fb.i64c(5);
        let three = fb.i64c(3);
        let c = fb.icmp(salam_ir::IntPredicate::Slt, five, three, "c");
        fb.cond_br(c, wr, done);
        fb.position_at(wr);
        let addr = fb.i64c(0x3000_0000);
        let p = fb.inttoptr(addr, "p");
        let one = fb.i64c(1);
        fb.store(one, p);
        fb.br(done);
        fb.position_at(done);
        fb.ret();
        let dead = fb.finish();

        let mut fb = FunctionBuilder::new("live_w", &[]);
        let addr = fb.i64c(0x3000_0000);
        let p = fb.inttoptr(addr, "p");
        let one = fb.i64c(1);
        fb.store(one, p);
        fb.ret();
        let live = fb.finish();

        // The affine lint can't see executability: false positive.
        let affine = check_shared_spm(
            &[("dead_w", &dead), ("live_w", &live)],
            0x3000_0000,
            0x3000_1000,
        );
        assert_eq!(affine.len(), 1, "{affine:?}");
        // Constant propagation proves the guarded store dead: suppressed.
        let flow = check_shared_spm_flow(
            &[("dead_w", &dead, &[]), ("live_w", &live, &[])],
            0x3000_0000,
            0x3000_1000,
        );
        assert!(flow.is_empty(), "{flow:?}");
    }

    #[test]
    fn flow_shared_spm_covers_non_affine_writers() {
        let a = masked_writer("mask_a");
        let b = masked_writer("mask_b");
        let base_a = [RtVal::P(0x2000_0000)];
        let overlap_b = [RtVal::P(0x2000_0020)]; // overlaps a's [0x..00, 0x..40)
        let disjoint_b = [RtVal::P(0x2000_0100)];
        // Affine analysis is blind to masked addresses either way.
        assert!(
            check_shared_spm(&[("mask_a", &a), ("mask_b", &b)], 0x2000_0000, 0x2001_0000)
                .is_empty()
        );
        let racy = check_shared_spm_flow(
            &[("mask_a", &a, &base_a), ("mask_b", &b, &overlap_b)],
            0x2000_0000,
            0x2001_0000,
        );
        assert_eq!(racy.len(), 1, "{racy:?}");
        assert_eq!(racy[0].code, codes::M004);
        let safe = check_shared_spm_flow(
            &[("mask_a", &a, &base_a), ("mask_b", &b, &disjoint_b)],
            0x2000_0000,
            0x2001_0000,
        );
        assert!(safe.is_empty(), "{safe:?}");
    }

    #[test]
    fn machsuite_kernels_have_no_static_memory_errors() {
        use crate::diag::Severity;
        for bench in machsuite::Bench::ALL {
            let k = bench.build_standard();
            let deps = static_memdeps(&k.func, &k.args);
            let errors: Vec<_> = deps
                .diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", k.name);
            let (lo, hi) = k.footprint;
            let oob = check_bounds(&k.func, &k.args, &[MemRegion::new(lo, hi, "footprint")]);
            assert!(oob.is_empty(), "{}: {oob:?}", k.name);
        }
    }
}
