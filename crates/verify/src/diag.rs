//! The one diagnostic currency every salam-verify pass reports through.
//!
//! A [`Diagnostic`] is a severity, a **stable code**, a source location
//! ([`Span`]) and a message. Codes never change meaning once shipped — CI
//! scripts, the DSE `invalid:<code>` rows and the `salam_lint` exit logic
//! all key on them. The full registry lives in [`codes`].

use std::fmt;

use salam_ir::{BuildError, ParseError};

/// How bad a finding is. Ordering is `Info < Warning < Error`, so
/// `diags.iter().map(|d| d.severity).max()` yields the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Noteworthy structure (e.g. a loop-carried recurrence that bounds II).
    Info,
    /// Suspicious but not certainly wrong; `--deny warnings` promotes these.
    Warning,
    /// A definite violation; gated runs refuse to start.
    Error,
}

impl Severity {
    /// Lowercase stable name (`info` / `warning` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a diagnostic points: the function and, when known, the block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Function name (empty for module- or config-level findings).
    pub function: String,
    /// Block name, when the finding is block-local.
    pub block: Option<String>,
}

impl Span {
    /// A function-level span.
    pub fn func(function: impl Into<String>) -> Self {
        Span {
            function: function.into(),
            block: None,
        }
    }

    /// A block-level span.
    pub fn block(function: impl Into<String>, block: impl Into<String>) -> Self {
        Span {
            function: function.into(),
            block: Some(block.into()),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            return f.write_str("<config>");
        }
        write!(f, "@{}", self.function)?;
        if let Some(b) = &self.block {
            write!(f, " %{b}")?;
        }
        Ok(())
    }
}

/// One finding from a static pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable code from [`codes`] (e.g. `V001`).
    pub code: &'static str,
    /// Where it points.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        severity: Severity,
        code: &'static str,
        span: Span,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            span,
            message: message.into(),
        }
    }

    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, span, message)
    }

    /// A [`Severity::Warning`] diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, span, message)
    }

    /// An [`Severity::Info`] diagnostic.
    pub fn info(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Info, code, span, message)
    }

    /// One JSON object (hand-rolled; the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"function\":\"{}\",\"block\":{},\"message\":\"{}\"}}",
            self.severity,
            self.code,
            json_escape(&self.span.function),
            match &self.span.block {
                Some(b) => format!("\"{}\"", json_escape(b)),
                None => "null".to_string(),
            },
            json_escape(&self.message),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Number of [`Severity::Error`] diagnostics.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Number of [`Severity::Warning`] diagnostics.
pub fn warning_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count()
}

/// Keeps only the errors (the set a pre-run gate rejects on).
pub fn errors_only(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

/// A JSON array of diagnostics.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Parse failures surface as `P001` errors at module scope.
impl From<ParseError> for Diagnostic {
    fn from(e: ParseError) -> Self {
        Diagnostic::error(
            codes::P001,
            Span::default(),
            format!("parse error at line {}: {}", e.line, e.message),
        )
    }
}

/// Builder misuse surfaces as `B001` errors.
impl From<BuildError> for Diagnostic {
    fn from(e: BuildError) -> Self {
        Diagnostic::error(codes::B001, Span::default(), e.message)
    }
}

/// The stable code registry. A code is never reused for a different
/// meaning; new checks get new codes.
pub mod codes {
    /// SSA violation: use before def / use not dominated by definition.
    pub const V001: &str = "V001";
    /// Operand or result type mismatch for an opcode.
    pub const V002: &str = "V002";
    /// CFG structure: terminator placement, empty block, phi not at block
    /// head, phi in entry.
    pub const V003: &str = "V003";
    /// Phi incoming blocks do not match CFG predecessors (or arity broken).
    pub const V004: &str = "V004";
    /// Unreachable block (lint).
    pub const V005: &str = "V005";
    /// Dead value: an instruction result never used (lint).
    pub const V006: &str = "V006";
    /// Integer cast does not change width in the required direction.
    pub const V007: &str = "V007";
    /// Loop-carried RAW memory dependence (recurrence; bounds the II).
    pub const M001: &str = "M001";
    /// Same-address WAW: two stores statically hit one location.
    pub const M002: &str = "M002";
    /// Out-of-bounds: a statically-resolved access escapes its region.
    pub const M003: &str = "M003";
    /// Shared-SPM race: two accelerators statically write overlapping
    /// ranges of the cluster's shared scratchpad.
    pub const M004: &str = "M004";
    /// Static schedule bound conflicts with the watchdog threshold.
    pub const S001: &str = "S001";
    /// Textual IR parse error.
    pub const P001: &str = "P001";
    /// FunctionBuilder misuse.
    pub const B001: &str = "B001";
    /// Invalid configuration knob (pre-run validation).
    pub const C001: &str = "C001";
    /// Provably out-of-bounds: the access's *entire* range-proven address
    /// interval lies outside every declared region.
    pub const F001: &str = "F001";
    /// Dead store: range-proven unobservable by any later load or
    /// declared live-out region.
    pub const F002: &str = "F002";
    /// Unwritten read: a load range-proven disjoint from every store and
    /// declared initialized region.
    pub const F003: &str = "F003";
    /// Static deadlock prediction for an armed drop-hazard fault plan.
    pub const F004: &str = "F004";
    /// DSE sweep point provably dominated (pruned without simulation).
    pub const F005: &str = "F005";

    /// `(code, one-line description)` for every registered code, in order.
    pub const ALL: &[(&str, &str)] = &[
        (V001, "use before def / definition does not dominate use"),
        (V002, "operand or result type mismatch"),
        (V003, "terminator/CFG structure violation"),
        (V004, "phi incoming blocks do not match predecessors"),
        (V005, "unreachable block"),
        (V006, "dead value (result never used)"),
        (V007, "bad integer cast width"),
        (M001, "loop-carried RAW memory dependence"),
        (M002, "same-address WAW between stores"),
        (M003, "statically out-of-bounds memory access"),
        (M004, "shared-SPM write race between accelerators"),
        (S001, "static schedule bound vs watchdog threshold"),
        (P001, "textual IR parse error"),
        (B001, "builder misuse"),
        (C001, "invalid configuration knob"),
        (
            F001,
            "provably out-of-bounds memory access (range analysis)",
        ),
        (F002, "dead store to scratchpad (liveness analysis)"),
        (F003, "read of a never-written scratchpad region"),
        (F004, "static deadlock prediction for a fault plan"),
        (F005, "DSE sweep point provably dominated"),
    ];
}

/// Stable long-form documentation for a diagnostic code, rendered by
/// `salam_lint --explain <CODE>`. Every code in [`codes::ALL`] has an
/// entry (a test pins this), so emitted findings are always explainable.
pub fn explain(code: &str) -> Option<&'static str> {
    let text = match code {
        "V001" => {
            "V001 · SSA dominance violation (error)\n\n\
             An instruction uses a value whose definition does not dominate \
             the use: on some CFG path the value is read before it is \
             written. Well-formed SSA requires every use to be reached by \
             its unique definition; the runtime would read garbage. Fix the \
             producing pass or builder code — values that merge control flow \
             must go through a phi in the join block."
        }
        "V002" => {
            "V002 · type mismatch (error)\n\n\
             An opcode's operand or result types are inconsistent (e.g. an \
             integer add over floats, a load whose result type differs from \
             the accessed element). The elaborated datapath would wire a \
             functional unit to the wrong width. Align the IR types with the \
             operation's signature."
        }
        "V003" => {
            "V003 · CFG structure violation (error)\n\n\
             A block breaks basic-block discipline: it is empty, lacks a \
             terminator, has a terminator before the end, hosts a phi after \
             a non-phi, or puts a phi in the entry block. Downstream passes \
             iterate `block.insts` assuming the canonical layout."
        }
        "V004" => {
            "V004 · phi/predecessor mismatch (error)\n\n\
             A phi's incoming blocks do not match the block's actual CFG \
             predecessors (missing, extra, or duplicated). The interpreter \
             and the engine resolve phis by looking up the taken edge; an \
             unmatched edge would make that lookup fail at runtime."
        }
        "V005" => {
            "V005 · unreachable block (warning)\n\n\
             No path from the entry reaches this block, so it can never \
             execute. Usually dead scaffolding left by hand-built IR; it \
             inflates datapath area estimates because elaboration still \
             allocates units for it. Delete it or wire it in."
        }
        "V006" => {
            "V006 · dead value (info)\n\n\
             An instruction computes a result no one reads. Harmless to \
             correctness but it occupies a functional unit and a reservation \
             slot every execution — free latency and area savings if \
             removed."
        }
        "V007" => {
            "V007 · bad cast width (error)\n\n\
             An integer cast does not change width in the required \
             direction: a trunc that widens, or an ext that narrows. The \
             engine's value encoding relies on casts moving monotonically \
             between widths."
        }
        "M001" => {
            "M001 · loop-carried RAW dependence (info)\n\n\
             A store in one iteration feeds a load in a later iteration \
             (distance d). This recurrence bounds the loop's achievable \
             initiation interval: no amount of unrolling or extra ports \
             pipelines past it. Reported as structure, not as a defect — \
             use it to set expectations for the II and to pick unroll \
             factors."
        }
        "M002" => {
            "M002 · same-address WAW (warning)\n\n\
             Two stores statically hit the same address. With reordering \
             hazards disabled (`strict_register_hazards = false`) the final \
             value depends on commit order; even when ordered it wastes a \
             write port. Usually an indexing bug — check the subscripts."
        }
        "M003" => {
            "M003 · statically out-of-bounds access (error)\n\n\
             An access whose affine address interval is fully resolved \
             escapes every declared memory region. The physical scratchpad \
             would alias the access somewhere else or the bus would fault. \
             The interval is exact (affine over counted induction \
             variables), so this is a proof. See also F001, the \
             range-analysis generalisation that covers non-affine \
             addresses."
        }
        "M004" => {
            "M004 · shared-SPM write race (warning)\n\n\
             Two accelerators in one cluster statically write overlapping \
             byte ranges of the shared scratchpad. With both enabled, the \
             result depends on scheduling order. Range-proven disjoint \
             writes are filtered out before this fires; partition the \
             shared buffer or serialise the writers to clear it."
        }
        "S001" => {
            "S001 · bound vs watchdog conflict (warning)\n\n\
             The static lower bound on dynamic cycles meets or exceeds the \
             configured watchdog deadlock threshold: the watchdog would \
             kill a run that is provably still making progress. Raise \
             `deadlock_cycles` above the bound or shrink the workload."
        }
        "P001" => {
            "P001 · parse error (error)\n\n\
             The textual IR failed to parse; the diagnostic message carries \
             the line and reason. Nothing downstream ran."
        }
        "B001" => {
            "B001 · builder misuse (error)\n\n\
             A FunctionBuilder sequence violated its contract (terminating \
             an already-terminated block, adding incomings to a non-phi, \
             …). Raised while *constructing* IR, before verification."
        }
        "C001" => {
            "C001 · invalid configuration (error)\n\n\
             A run configuration knob is out of range (zero ports, zero \
             clock, empty FU pool with constraints enabled, …). Rejected \
             before elaboration; fix the sweep axis or config file."
        }
        "F001" => {
            "F001 · provably out-of-bounds access (error)\n\n\
             Interval range analysis bounded the access's byte addresses \
             and the entire interval lies outside every declared region — \
             every execution of the access is out of bounds, even when the \
             index is not affine (the case M003 cannot see). Because ranges \
             over-approximate, partial overlap only warns (M003 path); full \
             disjointness is required to prove the violation."
        }
        "F002" => {
            "F002 · dead store (warning)\n\n\
             Backward liveness over byte intervals proved no later load and \
             no declared live-out (output) region can observe the stored \
             bytes. The store burns a write port and a reservation slot \
             every trip for nothing — or, more often, the subscript is \
             wrong and the data was meant to land somewhere observable."
        }
        "F003" => {
            "F003 · read of never-written region (warning)\n\n\
             A load's byte interval is disjoint from every store in the \
             kernel and from every declared initialized (input) region: it \
             can only ever read uninitialised scratchpad. This is the \
             static twin of the silent-data-corruption class the fault \
             campaign finds dynamically. Declare the region as an input if \
             the host DMA fills it; otherwise fix the subscript."
        }
        "F004" => {
            "F004 · static deadlock prediction (warning)\n\n\
             The armed fault plan can drop memory responses. A dropped \
             response closes the resource-wait cycle op → port → response \
             (never arrives), the reservation window fills behind the \
             waiting op, and the watchdog fires. Verdicts: `deadlock` \
             (drop certain and an access provably executes — the watchdog \
             WILL fire), `possible` (fractional drop rate; reported with \
             the expected number of drops), `no-deadlock` (no drop hazard \
             or no reachable access — the watchdog stays quiet). Verdicts \
             are cross-checked against watchdog outcomes in CI."
        }
        "F005" => {
            "F005 · dominated sweep point (info)\n\n\
             Design-space exploration skipped this point without simulating \
             it: its flow-tightened static lower bound is at least the \
             measured cycle count of an already-simulated point, so it can \
             never win the sweep (bound ≤ its cycles, and the reference is \
             already better-or-equal). Rows appear as `pruned:F005` with \
             the summary's `pruned=` count; CI re-simulates pruned points \
             to assert dominance."
        }
        _ => return None,
    };
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_names() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn display_and_json_are_stable() {
        let d = Diagnostic::error(codes::V001, Span::block("f", "b"), "msg \"x\"");
        assert_eq!(d.to_string(), "error[V001] @f %b: msg \"x\"");
        assert_eq!(
            d.to_json(),
            "{\"severity\":\"error\",\"code\":\"V001\",\"function\":\"f\",\"block\":\"b\",\"message\":\"msg \\\"x\\\"\"}"
        );
        assert!(to_json(&[d.clone(), d]).starts_with("[{"));
    }

    #[test]
    fn counts_filter_by_severity() {
        let ds = vec![
            Diagnostic::info(codes::M001, Span::default(), "i"),
            Diagnostic::warning(codes::V005, Span::default(), "w"),
            Diagnostic::error(codes::V001, Span::default(), "e"),
        ];
        assert_eq!(error_count(&ds), 1);
        assert_eq!(warning_count(&ds), 1);
        assert_eq!(errors_only(ds).len(), 1);
    }

    #[test]
    fn code_registry_is_unique() {
        let mut seen: Vec<&str> = codes::ALL.iter().map(|&(c, _)| c).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), codes::ALL.len());
    }

    #[test]
    fn every_registered_code_has_an_explain_entry() {
        for &(code, _) in codes::ALL {
            let doc = explain(code).unwrap_or_else(|| panic!("no explain entry for {code}"));
            assert!(
                doc.starts_with(code),
                "explain({code}) must lead with the code"
            );
            assert!(doc.len() > 80, "explain({code}) is too thin to be useful");
        }
        assert!(explain("Z999").is_none());
    }
}
