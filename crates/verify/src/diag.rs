//! The one diagnostic currency every salam-verify pass reports through.
//!
//! A [`Diagnostic`] is a severity, a **stable code**, a source location
//! ([`Span`]) and a message. Codes never change meaning once shipped — CI
//! scripts, the DSE `invalid:<code>` rows and the `salam_lint` exit logic
//! all key on them. The full registry lives in [`codes`].

use std::fmt;

use salam_ir::{BuildError, ParseError};

/// How bad a finding is. Ordering is `Info < Warning < Error`, so
/// `diags.iter().map(|d| d.severity).max()` yields the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Noteworthy structure (e.g. a loop-carried recurrence that bounds II).
    Info,
    /// Suspicious but not certainly wrong; `--deny warnings` promotes these.
    Warning,
    /// A definite violation; gated runs refuse to start.
    Error,
}

impl Severity {
    /// Lowercase stable name (`info` / `warning` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a diagnostic points: the function and, when known, the block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Function name (empty for module- or config-level findings).
    pub function: String,
    /// Block name, when the finding is block-local.
    pub block: Option<String>,
}

impl Span {
    /// A function-level span.
    pub fn func(function: impl Into<String>) -> Self {
        Span {
            function: function.into(),
            block: None,
        }
    }

    /// A block-level span.
    pub fn block(function: impl Into<String>, block: impl Into<String>) -> Self {
        Span {
            function: function.into(),
            block: Some(block.into()),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            return f.write_str("<config>");
        }
        write!(f, "@{}", self.function)?;
        if let Some(b) = &self.block {
            write!(f, " %{b}")?;
        }
        Ok(())
    }
}

/// One finding from a static pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable code from [`codes`] (e.g. `V001`).
    pub code: &'static str,
    /// Where it points.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        severity: Severity,
        code: &'static str,
        span: Span,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            span,
            message: message.into(),
        }
    }

    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, span, message)
    }

    /// A [`Severity::Warning`] diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, span, message)
    }

    /// An [`Severity::Info`] diagnostic.
    pub fn info(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Info, code, span, message)
    }

    /// One JSON object (hand-rolled; the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"function\":\"{}\",\"block\":{},\"message\":\"{}\"}}",
            self.severity,
            self.code,
            json_escape(&self.span.function),
            match &self.span.block {
                Some(b) => format!("\"{}\"", json_escape(b)),
                None => "null".to_string(),
            },
            json_escape(&self.message),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Number of [`Severity::Error`] diagnostics.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Number of [`Severity::Warning`] diagnostics.
pub fn warning_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count()
}

/// Keeps only the errors (the set a pre-run gate rejects on).
pub fn errors_only(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

/// A JSON array of diagnostics.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Parse failures surface as `P001` errors at module scope.
impl From<ParseError> for Diagnostic {
    fn from(e: ParseError) -> Self {
        Diagnostic::error(
            codes::P001,
            Span::default(),
            format!("parse error at line {}: {}", e.line, e.message),
        )
    }
}

/// Builder misuse surfaces as `B001` errors.
impl From<BuildError> for Diagnostic {
    fn from(e: BuildError) -> Self {
        Diagnostic::error(codes::B001, Span::default(), e.message)
    }
}

/// The stable code registry. A code is never reused for a different
/// meaning; new checks get new codes.
pub mod codes {
    /// SSA violation: use before def / use not dominated by definition.
    pub const V001: &str = "V001";
    /// Operand or result type mismatch for an opcode.
    pub const V002: &str = "V002";
    /// CFG structure: terminator placement, empty block, phi not at block
    /// head, phi in entry.
    pub const V003: &str = "V003";
    /// Phi incoming blocks do not match CFG predecessors (or arity broken).
    pub const V004: &str = "V004";
    /// Unreachable block (lint).
    pub const V005: &str = "V005";
    /// Dead value: an instruction result never used (lint).
    pub const V006: &str = "V006";
    /// Integer cast does not change width in the required direction.
    pub const V007: &str = "V007";
    /// Loop-carried RAW memory dependence (recurrence; bounds the II).
    pub const M001: &str = "M001";
    /// Same-address WAW: two stores statically hit one location.
    pub const M002: &str = "M002";
    /// Out-of-bounds: a statically-resolved access escapes its region.
    pub const M003: &str = "M003";
    /// Shared-SPM race: two accelerators statically write overlapping
    /// ranges of the cluster's shared scratchpad.
    pub const M004: &str = "M004";
    /// Static schedule bound conflicts with the watchdog threshold.
    pub const S001: &str = "S001";
    /// Textual IR parse error.
    pub const P001: &str = "P001";
    /// FunctionBuilder misuse.
    pub const B001: &str = "B001";
    /// Invalid configuration knob (pre-run validation).
    pub const C001: &str = "C001";

    /// `(code, one-line description)` for every registered code, in order.
    pub const ALL: &[(&str, &str)] = &[
        (V001, "use before def / definition does not dominate use"),
        (V002, "operand or result type mismatch"),
        (V003, "terminator/CFG structure violation"),
        (V004, "phi incoming blocks do not match predecessors"),
        (V005, "unreachable block"),
        (V006, "dead value (result never used)"),
        (V007, "bad integer cast width"),
        (M001, "loop-carried RAW memory dependence"),
        (M002, "same-address WAW between stores"),
        (M003, "statically out-of-bounds memory access"),
        (M004, "shared-SPM write race between accelerators"),
        (S001, "static schedule bound vs watchdog threshold"),
        (P001, "textual IR parse error"),
        (B001, "builder misuse"),
        (C001, "invalid configuration knob"),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_names() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn display_and_json_are_stable() {
        let d = Diagnostic::error(codes::V001, Span::block("f", "b"), "msg \"x\"");
        assert_eq!(d.to_string(), "error[V001] @f %b: msg \"x\"");
        assert_eq!(
            d.to_json(),
            "{\"severity\":\"error\",\"code\":\"V001\",\"function\":\"f\",\"block\":\"b\",\"message\":\"msg \\\"x\\\"\"}"
        );
        assert!(to_json(&[d.clone(), d]).starts_with("[{"));
    }

    #[test]
    fn counts_filter_by_severity() {
        let ds = vec![
            Diagnostic::info(codes::M001, Span::default(), "i"),
            Diagnostic::warning(codes::V005, Span::default(), "w"),
            Diagnostic::error(codes::V001, Span::default(), "e"),
        ];
        assert_eq!(error_count(&ds), 1);
        assert_eq!(warning_count(&ds), 1);
        assert_eq!(errors_only(ds).len(), 1);
    }

    #[test]
    fn code_registry_is_unique() {
        let mut seen: Vec<&str> = codes::ALL.iter().map(|&(c, _)| c).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), codes::ALL.len());
    }
}
