//! The IR verifier: SSA, dominance, types, CFG structure, and dead-code
//! lints — every violation collected, not just the first.
//!
//! `salam-ir` keeps its own fail-fast [`salam_ir::verify_function`] for
//! internal assertions; this pass re-walks the same invariants but reports
//! **all** findings as [`Diagnostic`]s with stable codes, plus two lints
//! the fail-fast verifier deliberately ignores (unreachable blocks, dead
//! values). A function that passes here with no errors elaborates into a
//! well-defined CDFG.

use std::collections::HashMap;

use salam_ir::analysis::{Cfg, DomTree};
use salam_ir::{BlockId, Function, Module, Opcode, Type, ValueId, ValueKind};

use crate::diag::{codes, Diagnostic, Span};

/// Verifies every function of a module.
pub fn verify_module(m: &Module) -> Vec<Diagnostic> {
    m.functions().iter().flat_map(verify_ir).collect()
}

/// Verifies one function, collecting every violation and lint finding.
///
/// Checks and their codes:
/// * `V003` — reachable block empty, terminator not last (or missing),
///   phi not at block head, phi in the entry block;
/// * `V002` — operand/result types do not match the opcode;
/// * `V007` — integer cast does not narrow/widen as required;
/// * `V001` — a use is not dominated by its definition (including
///   use-before-def within a block and uses of dead ids);
/// * `V004` — phi incoming blocks differ from the CFG predecessors;
/// * `V005` *(warning)* — block unreachable from entry;
/// * `V006` *(warning)* — an instruction result is never used.
pub fn verify_ir(f: &Function) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let at = |b: BlockId| Span::block(&f.name, &f.block(b).name);

    // Structure: reachable blocks are non-empty, terminated exactly at the
    // end, phis only at the head. Unreachable blocks get a V005 lint and
    // are otherwise skipped (passes may leave them half-built).
    for (bid, b) in f.blocks() {
        if !cfg.is_reachable(bid) {
            diags.push(Diagnostic::warning(
                codes::V005,
                at(bid),
                "block is unreachable from entry",
            ));
            continue;
        }
        if b.insts.is_empty() {
            diags.push(Diagnostic::error(codes::V003, at(bid), "block is empty"));
            continue;
        }
        for (i, &inst_id) in b.insts.iter().enumerate() {
            let is_last = i + 1 == b.insts.len();
            let inst = f.inst(inst_id);
            if inst.op.is_terminator() != is_last {
                diags.push(Diagnostic::error(
                    codes::V003,
                    at(bid),
                    format!("terminator placement violated at instruction {i}"),
                ));
            }
            if inst.op == Opcode::Phi && i > 0 && f.inst(b.insts[i - 1]).op != Opcode::Phi {
                diags.push(Diagnostic::error(
                    codes::V003,
                    at(bid),
                    "phi not at block head",
                ));
            }
        }
    }

    // The entry has no predecessors, so it must not contain phis.
    let entry = f.entry();
    if f.block(entry)
        .insts
        .iter()
        .any(|&i| f.inst(i).op == Opcode::Phi)
    {
        diags.push(Diagnostic::error(
            codes::V003,
            at(entry),
            "entry block contains a phi",
        ));
    }

    // Defining block and in-block position of every instruction result.
    let mut def_site: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
    let mut used: HashMap<ValueId, u32> = HashMap::new();
    for (bid, b) in f.blocks() {
        for (i, &inst_id) in b.insts.iter().enumerate() {
            if let Some(v) = f.inst_result(inst_id) {
                def_site.insert(v, (bid, i));
            }
            for &op in &f.inst(inst_id).operands {
                *used.entry(op).or_insert(0) += 1;
            }
        }
    }

    for (bid, b) in f.blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        for (pos, &inst_id) in b.insts.iter().enumerate() {
            check_inst_types(f, inst_id, bid, &mut diags);
            let inst = f.inst(inst_id);

            // SSA dominance of every instruction-operand.
            for (k, &op) in inst.operands.iter().enumerate() {
                let ValueKind::Inst(_) = f.value_kind(op) else {
                    continue;
                };
                let Some(&(def_block, def_pos)) = def_site.get(&op) else {
                    diags.push(Diagnostic::error(
                        codes::V001,
                        at(bid),
                        "use of value without live definition",
                    ));
                    continue;
                };
                if inst.op == Opcode::Phi {
                    // A phi use must be dominated at the end of the
                    // incoming edge, not at the phi itself.
                    let Some(&incoming) = inst.block_refs.get(k) else {
                        continue; // arity reported as V004 below
                    };
                    if !dom.dominates(def_block, incoming) {
                        diags.push(Diagnostic::error(
                            codes::V001,
                            at(bid),
                            "phi uses value not dominating its incoming block",
                        ));
                    }
                } else if def_block == bid {
                    if def_pos >= pos {
                        diags.push(Diagnostic::error(
                            codes::V001,
                            at(bid),
                            "use before def within block",
                        ));
                    }
                } else if !dom.dominates(def_block, bid) {
                    diags.push(Diagnostic::error(
                        codes::V001,
                        at(bid),
                        "use not dominated by definition",
                    ));
                }
            }

            // Phi incoming edges must match the CFG predecessors.
            if inst.op == Opcode::Phi {
                let mut preds: Vec<BlockId> = cfg.predecessors(bid).to_vec();
                preds.sort();
                preds.dedup();
                let mut incoming: Vec<BlockId> = inst.block_refs.clone();
                incoming.sort();
                incoming.dedup();
                if preds != incoming {
                    diags.push(Diagnostic::error(
                        codes::V004,
                        at(bid),
                        "phi incoming blocks do not match predecessors",
                    ));
                }
            }
        }
    }

    // Dead-value lint: a result no instruction ever reads. Reachable
    // blocks only — everything in an unreachable block is already V005.
    for (bid, b) in f.blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        for &inst_id in &b.insts {
            let inst = f.inst(inst_id);
            if let Some(v) = f.inst_result(inst_id) {
                if used.get(&v).copied().unwrap_or(0) == 0 {
                    diags.push(Diagnostic::warning(
                        codes::V006,
                        at(bid),
                        format!(
                            "result of {} `%{}` is never used",
                            inst.op.mnemonic(),
                            if inst.name.is_empty() {
                                "_"
                            } else {
                                &inst.name
                            }
                        ),
                    ));
                }
            }
        }
    }

    diags
}

/// Per-opcode operand-count and type checks (`V002`, cast widths `V007`).
fn check_inst_types(
    f: &Function,
    inst_id: salam_ir::InstId,
    bid: BlockId,
    diags: &mut Vec<Diagnostic>,
) {
    let inst = f.inst(inst_id);
    let span = Span::block(&f.name, &f.block(bid).name);
    let ops = &inst.operands;
    let opty = |i: usize| f.value_type(ops[i]);
    let mut type_err = |msg: String| {
        diags.push(Diagnostic::error(codes::V002, span.clone(), msg));
    };
    // Arity first; a wrong count makes the type checks below meaningless.
    let arity: Option<usize> = match &inst.op {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::UDiv
        | Opcode::SDiv
        | Opcode::URem
        | Opcode::SRem
        | Opcode::Shl
        | Opcode::LShr
        | Opcode::AShr
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::FAdd
        | Opcode::FSub
        | Opcode::FMul
        | Opcode::FDiv
        | Opcode::ICmp(_)
        | Opcode::FCmp(_)
        | Opcode::Store => Some(2),
        Opcode::FNeg
        | Opcode::Load
        | Opcode::Trunc
        | Opcode::ZExt
        | Opcode::SExt
        | Opcode::FPTrunc
        | Opcode::FPExt
        | Opcode::FPToSI
        | Opcode::FPToUI
        | Opcode::SIToFP
        | Opcode::UIToFP
        | Opcode::BitCast
        | Opcode::PtrToInt
        | Opcode::IntToPtr
        | Opcode::CondBr => Some(1),
        Opcode::Select => Some(3),
        Opcode::Br => Some(0),
        Opcode::Gep { .. } | Opcode::Phi | Opcode::Ret => None,
    };
    if let Some(n) = arity {
        if ops.len() != n {
            type_err(format!(
                "{} expects {n} operands, has {}",
                inst.op.mnemonic(),
                ops.len()
            ));
            return;
        }
    }

    match &inst.op {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::UDiv
        | Opcode::SDiv
        | Opcode::URem
        | Opcode::SRem
        | Opcode::Shl
        | Opcode::LShr
        | Opcode::AShr
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor => {
            if !opty(0).is_int() || opty(0) != opty(1) || inst.ty != opty(0) {
                type_err(format!(
                    "integer binary op type mismatch ({})",
                    inst.op.mnemonic()
                ));
            }
        }
        Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
            if !opty(0).is_float() || opty(0) != opty(1) || inst.ty != opty(0) {
                type_err(format!(
                    "float binary op type mismatch ({})",
                    inst.op.mnemonic()
                ));
            }
        }
        Opcode::FNeg => {
            if !opty(0).is_float() || inst.ty != opty(0) {
                type_err("fneg type mismatch".into());
            }
        }
        Opcode::ICmp(_) => {
            let t = opty(0);
            if !(t.is_int() || t.is_ptr()) || t != opty(1) || inst.ty != Type::I1 {
                type_err("icmp type mismatch".into());
            }
        }
        Opcode::FCmp(_) => {
            if !opty(0).is_float() || opty(0) != opty(1) || inst.ty != Type::I1 {
                type_err("fcmp type mismatch".into());
            }
        }
        Opcode::Load => {
            if !opty(0).is_ptr() {
                type_err("load from non-pointer".into());
            }
            if inst.ty == Type::Void {
                type_err("load of void".into());
            }
        }
        Opcode::Store => {
            if !opty(1).is_ptr() {
                type_err("store to non-pointer".into());
            }
        }
        Opcode::Gep { .. } => {
            if ops.is_empty() {
                type_err("gep needs a pointer operand".into());
                return;
            }
            if !opty(0).is_ptr() || inst.ty != Type::Ptr {
                type_err("gep pointer type mismatch".into());
            }
            for i in 1..ops.len() {
                if !opty(i).is_int() {
                    type_err("gep index not an integer".into());
                }
            }
        }
        Opcode::Trunc | Opcode::ZExt | Opcode::SExt => {
            if !opty(0).is_int() || !inst.ty.is_int() {
                type_err("integer cast on non-integer".into());
                return;
            }
            let (from, to) = (opty(0).bits(), inst.ty.bits());
            let ok = match inst.op {
                Opcode::Trunc => to < from,
                _ => to > from,
            };
            if !ok {
                diags.push(Diagnostic::error(
                    codes::V007,
                    span.clone(),
                    format!("bad cast width {from} -> {to} for {}", inst.op.mnemonic()),
                ));
            }
        }
        Opcode::FPTrunc | Opcode::FPExt => {
            if !opty(0).is_float() || !inst.ty.is_float() {
                type_err("float cast on non-float".into());
            }
        }
        Opcode::FPToSI | Opcode::FPToUI => {
            if !opty(0).is_float() || !inst.ty.is_int() {
                type_err("fp-to-int cast type mismatch".into());
            }
        }
        Opcode::SIToFP | Opcode::UIToFP => {
            if !opty(0).is_int() || !inst.ty.is_float() {
                type_err("int-to-fp cast type mismatch".into());
            }
        }
        Opcode::BitCast => {
            if opty(0).size_bytes() != inst.ty.size_bytes() {
                type_err("bitcast width mismatch".into());
            }
        }
        Opcode::PtrToInt => {
            if !opty(0).is_ptr() || !inst.ty.is_int() {
                type_err("ptrtoint type mismatch".into());
            }
        }
        Opcode::IntToPtr => {
            if !opty(0).is_int() || !inst.ty.is_ptr() {
                type_err("inttoptr type mismatch".into());
            }
        }
        Opcode::Phi => {
            if ops.len() != inst.block_refs.len() || ops.is_empty() {
                diags.push(Diagnostic::error(
                    codes::V004,
                    span.clone(),
                    "phi operand/block arity mismatch",
                ));
                return;
            }
            for &v in ops {
                if f.value_type(v) != inst.ty {
                    type_err("phi incoming type mismatch".into());
                }
            }
        }
        Opcode::Select => {
            if opty(0) != Type::I1 || opty(1) != opty(2) || inst.ty != opty(1) {
                type_err("select type mismatch".into());
            }
        }
        Opcode::Br => {
            if inst.block_refs.len() != 1 {
                diags.push(Diagnostic::error(
                    codes::V003,
                    span.clone(),
                    "br must have exactly one target",
                ));
            }
        }
        Opcode::CondBr => {
            if inst.block_refs.len() != 2 || opty(0) != Type::I1 {
                type_err("condbr arity/type mismatch".into());
            }
        }
        Opcode::Ret => {
            if ops.len() > 1 {
                type_err("ret with multiple values".into());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{error_count, Severity};
    use salam_ir::FunctionBuilder;

    #[test]
    fn wellformed_loop_is_clean_of_errors() {
        let mut fb = FunctionBuilder::new("ok", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = fb.arg(0);
        let n = fb.arg(1);
        let zero = fb.i64c(0);
        fb.counted_loop("i", zero, n, |fb, iv| {
            let p = fb.gep1(Type::I64, a, iv, "p");
            fb.store(iv, p);
        });
        fb.ret();
        let diags = verify_ir(&fb.finish());
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn collects_multiple_violations_in_one_pass() {
        // A non-dominated use AND a dead value AND an unreachable block,
        // all reported together.
        let mut fb = FunctionBuilder::new("multi", &[("x", Type::I32), ("c", Type::I1)]);
        let x = fb.arg(0);
        let c = fb.arg(1);
        let then_b = fb.add_block("then");
        let else_b = fb.add_block("else");
        let join = fb.add_block("join");
        fb.cond_br(c, then_b, else_b);
        fb.position_at(then_b);
        let a = fb.add(x, x, "a"); // defined only on the `then` path
        fb.br(join);
        fb.position_at(else_b);
        fb.br(join);
        fb.position_at(join);
        let _dead = fb.add(a, x, "dead"); // uses non-dominating `a`; result unused
        fb.ret();
        let _orphan = fb.add_block("orphan");
        let diags = verify_ir(&fb.finish());
        let codes_seen: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::V001), "{diags:?}");
        assert!(codes_seen.contains(&codes::V005), "{diags:?}");
        assert!(codes_seen.contains(&codes::V006), "{diags:?}");
        // V003: the orphan block is empty but unreachable, so no V003.
        assert!(diags.iter().any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn all_machsuite_kernels_have_no_errors() {
        for bench in machsuite::Bench::ALL {
            let k = bench.build_standard();
            let diags = verify_ir(&k.func);
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", k.name);
        }
    }
}
