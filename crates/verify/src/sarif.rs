//! SARIF 2.1.0 export for [`Diagnostic`]s.
//!
//! One run, one tool (`salam_lint`), one result per diagnostic. The
//! reporting descriptors (`rules`) list exactly the codes that appear in
//! the results, in code order, each with its registry one-liner; results
//! keep their input order. Severity maps onto SARIF levels as
//! `Error → error`, `Warning → warning`, `Info → note`. Locations are
//! logical (`function` / `function.block`) — the IR has no source files.
//!
//! The output is hand-rolled JSON (the workspace is dependency-free)
//! with fully deterministic field and element order, so goldens can be
//! byte-pinned.

use std::collections::BTreeSet;

use crate::diag::{codes, json_escape, Diagnostic, Severity};

/// The SARIF level string for a severity.
fn level(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Renders `diags` as a complete SARIF 2.1.0 log (pretty-printed, two-
/// space indent, trailing newline).
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let used: BTreeSet<&str> = diags.iter().map(|d| d.code).collect();
    let mut rules = Vec::new();
    for &(code, desc) in codes::ALL {
        if !used.contains(code) {
            continue;
        }
        rules.push(format!(
            "            {{\n              \"id\": \"{}\",\n              \
             \"shortDescription\": {{ \"text\": \"{}\" }}\n            }}",
            json_escape(code),
            json_escape(desc)
        ));
    }
    let mut results = Vec::new();
    for d in diags {
        let fqn = match (&d.span.function[..], &d.span.block) {
            ("", _) => "<config>".to_string(),
            (f, None) => f.to_string(),
            (f, Some(b)) => format!("{f}.{b}"),
        };
        results.push(format!(
            "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"{}\",\n          \
             \"message\": {{ \"text\": \"{}\" }},\n          \"locations\": [\n            \
             {{\n              \"logicalLocations\": [\n                \
             {{ \"fullyQualifiedName\": \"{}\", \"kind\": \"function\" }}\n              \
             ]\n            }}\n          ]\n        }}",
            json_escape(d.code),
            level(d.severity),
            json_escape(&d.message),
            json_escape(&fqn)
        ));
    }
    format!(
        "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \"tool\": {{\n        \
         \"driver\": {{\n          \"name\": \"salam_lint\",\n          \
         \"informationUri\": \"https://example.invalid/gem5-salam-rs\",\n          \
         \"rules\": [\n{}\n          ]\n        }}\n      }},\n      \"results\": [\n{}\n      ]\n    \
         }}\n  ]\n}}\n",
        rules.join(",\n"),
        results.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Span;

    #[test]
    fn sarif_levels_map_severities() {
        assert_eq!(level(Severity::Error), "error");
        assert_eq!(level(Severity::Info), "note");
    }

    #[test]
    fn rules_cover_exactly_the_emitted_codes() {
        let diags = vec![
            Diagnostic::error(codes::F001, Span::block("k", "b"), "oob"),
            Diagnostic::warning(codes::M004, Span::func("k"), "race"),
            Diagnostic::error(codes::F001, Span::func("k2"), "oob again"),
        ];
        let s = to_sarif(&diags);
        assert_eq!(s.matches("\"id\": \"F001\"").count(), 1);
        assert_eq!(s.matches("\"id\": \"M004\"").count(), 1);
        assert_eq!(s.matches("\"ruleId\"").count(), 3);
        assert!(s.contains("\"fullyQualifiedName\": \"k.b\""));
        assert!(s.ends_with("}\n"));
    }
}
