//! # salam-verify
//!
//! Static verification for the SALAM pipeline: everything that can be
//! proven about an accelerator **before** burning simulation cycles on it.
//!
//! The paper's static elaboration (§2) derives the datapath from the IR
//! alone; this crate extends that idea to *checking* — three layers, all
//! reporting through one [`Diagnostic`] currency with stable codes:
//!
//! * [`ir`] — SSA/dominance, type, and CFG well-formedness over
//!   `salam-ir`, plus unreachable-block and dead-value lints
//!   (`V001`–`V007`).
//! * [`memdep`] — the dynamic loop-carried dependence profiler shared
//!   with the HLS scheduler, and a static affine-address analyzer
//!   proving RAW/WAR/WAW hazards, out-of-bounds accesses and shared-SPM
//!   races (`M001`–`M004`).
//! * [`schedule`] — ASAP/ALAP levels over the static CDFG and a provable
//!   lower bound on dynamic cycles (`static_lower_bound ≤ dynamic
//!   cycles`, the correctness oracle cross-checked in tests), plus the
//!   watchdog cross-check (`S001`) and the flow-tightened
//!   [`flow_lower_bound`] that folds loop-recurrence floors into the
//!   bound using `salam-flow` trip counts.
//! * [`sarif`] — SARIF 2.1.0 export of any diagnostic batch, for IDE
//!   and code-scanning integrations.
//!
//! Consumers: the `salam_lint` CLI renders diagnostics as a table or
//! JSON; `salam-core` gates standalone/cluster runs on `verify = true`;
//! `salam-dse` rejects invalid sweep points as `invalid:<code>` rows
//! without simulating them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod ir;
pub mod memdep;
pub mod sarif;
pub mod schedule;

pub use diag::{
    codes, error_count, errors_only, explain, to_json, warning_count, Diagnostic, Severity, Span,
};
pub use ir::{verify_ir, verify_module};
pub use memdep::{
    analyze_accesses, check_bounds, check_bounds_flow, check_shared_spm, check_shared_spm_flow,
    profile_memdeps, static_memdeps, DepEdge, DepKind, IvRange, MemDeps, MemRegion, StaticAccess,
    StaticDeps,
};
pub use sarif::to_sarif;
pub use schedule::{
    check_schedule, flow_lower_bound, static_lower_bound, BlockBound, BoundConfig, BoundReport,
    FlowBoundReport, LoopBound, OpSlack,
};

use salam_ir::Function;

/// Parses textual IR and verifies every function in it. A parse failure
/// surfaces as the single `P001` diagnostic in `Err`; a parseable module
/// returns alongside whatever the verifier found.
///
/// # Errors
///
/// The `P001` diagnostic wrapping the parse error.
pub fn parse_and_verify(text: &str) -> Result<(salam_ir::Module, Vec<Diagnostic>), Diagnostic> {
    let m = salam_ir::parse_module(text).map_err(Diagnostic::from)?;
    let diags = verify_module(&m);
    Ok((m, diags))
}

/// The pre-run gate used by `salam-core`: verifies the IR and returns the
/// error-severity findings, if any. Warnings and infos never block a run.
pub fn gate(f: &Function) -> Result<(), Vec<Diagnostic>> {
    let errors = errors_only(verify_ir(f));
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_ir::{FunctionBuilder, Type};

    #[test]
    fn gate_accepts_well_formed_ir() {
        let mut fb = FunctionBuilder::new("ok", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let v = fb.load(Type::I64, p, "v");
        fb.store(v, p);
        fb.ret();
        assert!(gate(&fb.finish()).is_ok());
    }
}
