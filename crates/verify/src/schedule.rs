//! Static schedule bounds: ASAP/ALAP levels over the static CDFG and a
//! provable lower bound on dynamic cycle count.
//!
//! The bound is the maximum of three floors, each of which the runtime
//! engine cannot beat by construction:
//!
//! 1. **Chain floor** — successive basic-block executions serialize
//!    through their terminators (the engine imports the next block only
//!    once the branch evaluates), so the run takes at least
//!    `Σ trips(b) · asap(terminator of b)` cycles, where ASAP levels are
//!    latency-weighted along in-block dependency chains (latency-0 wiring
//!    ops chain within a cycle and contribute 0; loads/stores contribute
//!    at least 1 cycle of port latency).
//! 2. **FU floor** — a pool of `n` non-pipelined units of one kind can
//!    deliver at most `n` busy-cycles per cycle, so
//!    `ceil(Σ trips·latency / n)` cycles are needed per kind (with
//!    `pipelined_fus`, occupancy drops to 1 cycle per op).
//! 3. **Memory floor** — `read_ports` loads and `write_ports` stores
//!    issue per cycle at most: `ceil(dynamic loads / read_ports)` and
//!    likewise for stores.
//!
//! Block trip counts come from a profiling run ([`ProfileObserver`]'s
//! `block_entries`) or any other oracle; the bound is exact with respect
//! to the trips it is given. The cross-check `static_lower_bound ≤
//! dynamic cycles` is asserted for all MachSuite kernels in
//! `crates/bench/tests/verify.rs` — a violated bound means either the
//! engine or this analysis is wrong, which is the point.

use std::collections::HashMap;

use salam_cdfg::StaticCdfg;
use salam_ir::{BlockId, Function, InstId, Opcode, ValueKind};

use crate::diag::{codes, Diagnostic, Span};

/// The throughput knobs the bound must respect, mirroring the engine/SPM
/// configuration a run will actually use. Defaults match
/// `StandaloneConfig::default()` (2R/2W SPM, unpipelined FUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundConfig {
    /// SPM read ports per cycle.
    pub read_ports: u32,
    /// SPM write ports per cycle.
    pub write_ports: u32,
    /// Whether FUs are fully pipelined (II = 1).
    pub pipelined_fus: bool,
}

impl Default for BoundConfig {
    fn default() -> Self {
        BoundConfig {
            read_ports: 2,
            write_ports: 2,
            pipelined_fus: false,
        }
    }
}

/// Per-block static schedule levels.
#[derive(Debug, Clone)]
pub struct BlockBound {
    /// The block.
    pub block: BlockId,
    /// Its name.
    pub name: String,
    /// Dynamic executions.
    pub trips: u64,
    /// Latency-weighted critical path through the whole block DAG.
    pub crit_path: u64,
    /// ASAP level of the terminator — the provable serial cost of one
    /// execution.
    pub term_level: u64,
}

/// Latency-weighted ASAP/ALAP levels and slack for one instruction.
#[derive(Debug, Clone, Copy)]
pub struct OpSlack {
    /// The instruction.
    pub inst: InstId,
    /// Earliest start relative to block entry.
    pub asap: u64,
    /// Latest start that keeps the block's critical path.
    pub alap: u64,
    /// `alap - asap`; zero means the op is on the critical path.
    pub slack: u64,
}

/// The full static bound report for one kernel/config pair.
#[derive(Debug, Clone)]
pub struct BoundReport {
    /// Function name.
    pub func_name: String,
    /// The provable lower bound on dynamic cycles.
    pub lower_bound: u64,
    /// Floor 1: serialized terminator chains.
    pub chain_floor: u64,
    /// Floor 2: the binding-est FU pool, as `(kind name, cycles)`.
    pub fu_floor: Option<(String, u64)>,
    /// Floor 3: `(load cycles, store cycles)` through the memory ports.
    pub mem_floor: (u64, u64),
    /// Per-block levels.
    pub blocks: Vec<BlockBound>,
    /// ASAP/ALAP slack per instruction (block-relative levels).
    pub slacks: Vec<OpSlack>,
}

impl BoundReport {
    /// Ops with zero slack — the static critical path the paper's
    /// elaboration would pipeline first.
    pub fn critical_ops(&self) -> impl Iterator<Item = &OpSlack> + '_ {
        self.slacks.iter().filter(|s| s.slack == 0)
    }
}

/// Cycle weight of one instruction along a dependency chain: CDFG latency
/// for compute ops (latency-0 wiring forwards within the issue cycle),
/// and at least one cycle of port latency for memory ops.
fn chain_weight(cdfg: &StaticCdfg, f: &Function, id: InstId) -> u64 {
    let lat = cdfg.op(id).latency as u64;
    match f.inst(id).op {
        Opcode::Load | Opcode::Store => lat.max(1),
        _ => lat,
    }
}

/// Computes latency-weighted ASAP levels for one block; returns
/// `(levels by inst, critical path, terminator level)`.
fn block_asap(f: &Function, cdfg: &StaticCdfg, block: BlockId) -> (HashMap<InstId, u64>, u64, u64) {
    let insts = &f.block(block).insts;
    let mut level: HashMap<InstId, u64> = HashMap::new();
    let mut crit = 0u64;
    let mut term_level = 0u64;
    for &id in insts {
        let inst = f.inst(id);
        // Phis read end-of-previous-iteration values: level 0.
        let asap = if inst.op == Opcode::Phi {
            0
        } else {
            inst.operands
                .iter()
                .filter_map(|&v| match f.value_kind(v) {
                    ValueKind::Inst(def) => {
                        level.get(def).map(|&l| l + chain_weight(cdfg, f, *def))
                    }
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        level.insert(id, asap);
        crit = crit.max(asap + chain_weight(cdfg, f, id));
        if inst.op.is_terminator() {
            term_level = asap;
        }
    }
    (level, crit, term_level)
}

/// Computes ALAP levels against the block's critical path.
fn block_alap(f: &Function, cdfg: &StaticCdfg, block: BlockId, crit: u64) -> HashMap<InstId, u64> {
    let insts = &f.block(block).insts;
    let pos: HashMap<InstId, usize> = insts.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    // Reverse users map, in-block only.
    let mut alap: HashMap<InstId, u64> = HashMap::new();
    for &id in insts.iter().rev() {
        let w = chain_weight(cdfg, f, id);
        // Latest finish = min over in-block users of their ALAP start.
        let mut latest_finish = crit;
        for &uid in insts {
            if pos[&uid] <= pos[&id] {
                continue;
            }
            let user = f.inst(uid);
            if user.op == Opcode::Phi {
                continue; // consumes at the next iteration's entry
            }
            let feeds = user
                .operands
                .iter()
                .any(|&v| matches!(f.value_kind(v), ValueKind::Inst(def) if *def == id));
            if feeds {
                if let Some(&ua) = alap.get(&uid) {
                    latest_finish = latest_finish.min(ua);
                }
            }
        }
        alap.insert(id, latest_finish.saturating_sub(w));
    }
    alap
}

/// Computes the static lower bound and schedule levels for `f` elaborated
/// as `cdfg`, given per-block dynamic trip counts (blocks absent from
/// `trips` count as zero executions).
pub fn static_lower_bound(
    f: &Function,
    cdfg: &StaticCdfg,
    trips: &HashMap<BlockId, u64>,
    cfg: &BoundConfig,
) -> BoundReport {
    let mut chain_floor = 0u64;
    let mut blocks = Vec::new();
    let mut slacks = Vec::new();
    let mut fu_busy: HashMap<&'static str, (u64, u32)> = HashMap::new();
    let mut dyn_loads = 0u64;
    let mut dyn_stores = 0u64;

    for (bid, b) in f.blocks() {
        let t = trips.get(&bid).copied().unwrap_or(0);
        let (asap, crit, term_level) = block_asap(f, cdfg, bid);
        let alap = block_alap(f, cdfg, bid, crit);
        for &id in &b.insts {
            let a = asap.get(&id).copied().unwrap_or(0);
            let l = alap.get(&id).copied().unwrap_or(a).max(a);
            slacks.push(OpSlack {
                inst: id,
                asap: a,
                alap: l,
                slack: l - a,
            });
        }
        blocks.push(BlockBound {
            block: bid,
            name: b.name.clone(),
            trips: t,
            crit_path: crit,
            term_level,
        });
        if t == 0 {
            continue;
        }
        chain_floor += t * term_level;
        for &id in &b.insts {
            let op = cdfg.op(id);
            match f.inst(id).op {
                Opcode::Load => dyn_loads += t,
                Opcode::Store => dyn_stores += t,
                _ => {}
            }
            // Latency-0 ops never occupy a pool slot in the engine.
            if let (Some(kind), true) = (op.fu, op.latency > 0) {
                let busy = if cfg.pipelined_fus {
                    1
                } else {
                    op.latency as u64
                };
                let pool = cdfg.fu_count(kind).max(1);
                let e = fu_busy.entry(kind.name()).or_insert((0, pool));
                e.0 += t * busy;
            }
        }
    }

    let fu_floor = fu_busy
        .into_iter()
        .map(|(name, (busy, pool))| (name.to_string(), busy.div_ceil(pool as u64)))
        .max_by_key(|&(_, c)| c);
    let load_floor = dyn_loads.div_ceil(cfg.read_ports.max(1) as u64);
    let store_floor = dyn_stores.div_ceil(cfg.write_ports.max(1) as u64);

    let lower_bound = chain_floor
        .max(fu_floor.as_ref().map_or(0, |&(_, c)| c))
        .max(load_floor)
        .max(store_floor);

    BoundReport {
        func_name: f.name.clone(),
        lower_bound,
        chain_floor,
        fu_floor,
        mem_floor: (load_floor, store_floor),
        blocks,
        slacks,
    }
}

/// Cross-checks a bound report against the engine's watchdog threshold:
/// if the provable minimum runtime already exceeds `deadlock_cycles`, a
/// slow-but-healthy run risks being misread (`S001`, warning — the
/// watchdog triggers on *no progress*, not total cycles, so this is a
/// smell rather than a certain failure).
pub fn check_schedule(report: &BoundReport, deadlock_cycles: u64) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if report.lower_bound > deadlock_cycles {
        diags.push(Diagnostic::warning(
            codes::S001,
            Span::func(&report.func_name),
            format!(
                "static lower bound {} exceeds deadlock_cycles {}; \
                 a healthy run of this kernel is slower than the watchdog horizon",
                report.lower_bound, deadlock_cycles
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_profile::HardwareProfile;
    use salam_cdfg::FuConstraints;
    use salam_ir::interp::{run_function, ProfileObserver, RtVal, SparseMemory};
    use salam_ir::{FunctionBuilder, Type};

    fn profile_trips(f: &Function, args: &[RtVal]) -> HashMap<BlockId, u64> {
        let mut obs = ProfileObserver::default();
        let mut mem = SparseMemory::new();
        run_function(f, args, &mut mem, &mut obs, 100_000_000).unwrap();
        obs.block_entries
    }

    /// `for i in 0..n { p[0] = fmul(load p[0], c) }` — one fmul per
    /// iteration, a tight FP chain.
    fn fp_loop(n: i64) -> Function {
        let mut fb = FunctionBuilder::new("fp_loop", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let zero = fb.i64c(0);
        let n = fb.i64c(n);
        fb.counted_loop("i", zero, n, |fb, _iv| {
            let v = fb.load(Type::F64, p, "v");
            let c = fb.f64c(1.5);
            let m = fb.fmul(v, c, "m");
            fb.store(m, p);
        });
        fb.ret();
        fb.finish()
    }

    #[test]
    fn floors_combine_into_the_bound() {
        let f = fp_loop(10);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let report = static_lower_bound(&f, &cdfg, &trips, &BoundConfig::default());
        // Integer control (phi/icmp/br) is latency-0 wiring, so the chain
        // floor contributes nothing here; the single fp_mul unit is the
        // bottleneck: 10 iterations × 3-cycle occupancy.
        let (kind, fu_cycles) = report.fu_floor.clone().expect("fp pool");
        assert_eq!(fu_cycles, 30, "{kind}: {report:?}");
        assert!(report.lower_bound >= 30);
        // The body's critical path load(1)+fmul(3)+store(1) shows in levels.
        let body = report.blocks.iter().find(|b| b.name == "i.body").unwrap();
        assert_eq!(body.crit_path, 5, "{report:?}");
        assert_eq!(body.trips, 10);
    }

    #[test]
    fn fu_floor_scales_with_constraints() {
        let f = fp_loop(16);
        let profile = HardwareProfile::default_40nm();
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let free = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let r_free = static_lower_bound(&f, &free, &trips, &BoundConfig::default());
        // fmul runs 16 times at latency 3 on one unit either way (only one
        // fmul instruction exists), so the FU floor is 48 busy-cycles.
        let (_, fu_cycles) = r_free.fu_floor.clone().expect("has an FP pool");
        assert!(fu_cycles >= 48, "{fu_cycles}");
        // Pipelining drops occupancy to 1 per op.
        let piped = BoundConfig {
            pipelined_fus: true,
            ..BoundConfig::default()
        };
        let r_piped = static_lower_bound(&f, &free, &trips, &piped);
        assert!(r_piped.fu_floor.clone().unwrap().1 <= 16);
    }

    #[test]
    fn mem_floor_counts_port_throughput() {
        let f = fp_loop(8);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let one_port = BoundConfig {
            read_ports: 1,
            write_ports: 1,
            pipelined_fus: false,
        };
        let r = static_lower_bound(&f, &cdfg, &trips, &one_port);
        // 8 loads through 1 read port, 8 stores through 1 write port.
        assert_eq!(r.mem_floor, (8, 8));
    }

    #[test]
    fn slack_is_zero_on_the_critical_path() {
        let f = fp_loop(1);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let r = static_lower_bound(&f, &cdfg, &trips, &BoundConfig::default());
        assert!(r.critical_ops().count() > 0);
        for s in &r.slacks {
            assert!(s.alap >= s.asap, "{s:?}");
        }
    }

    #[test]
    fn watchdog_cross_check_warns_when_bound_exceeds_horizon() {
        let f = fp_loop(100);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let r = static_lower_bound(&f, &cdfg, &trips, &BoundConfig::default());
        assert!(check_schedule(&r, 1_000_000).is_empty());
        let tight = check_schedule(&r, 10);
        assert_eq!(tight.len(), 1);
        assert_eq!(tight[0].code, codes::S001);
        assert_eq!(tight[0].severity, crate::diag::Severity::Warning);
    }
}
