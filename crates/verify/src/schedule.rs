//! Static schedule bounds: ASAP/ALAP levels over the static CDFG and a
//! provable lower bound on dynamic cycle count.
//!
//! The bound is the maximum of five floors, each of which the runtime
//! engine cannot beat by construction:
//!
//! 1. **Chain floor** — successive basic-block executions serialize
//!    through their terminators (the engine imports the next block only
//!    once the branch evaluates), so the run takes at least
//!    `Σ trips(b) · asap(terminator of b)` cycles, where ASAP levels are
//!    latency-weighted along in-block dependency chains (latency-0 wiring
//!    ops chain within a cycle and contribute 0; loads/stores contribute
//!    at least 1 cycle of port latency).
//! 2. **FU floor** — a pool of `n` non-pipelined units of one kind can
//!    deliver at most `n` busy-cycles per cycle, so
//!    `ceil(Σ trips·latency / n)` cycles are needed per kind (with
//!    `pipelined_fus`, occupancy drops to 1 cycle per op).
//! 3. **Memory floor** — `read_ports` loads and `write_ports` stores
//!    issue per cycle at most: `ceil(dynamic loads / read_ports)` and
//!    likewise for stores.
//! 4. **Recurrence floor** ([`flow_lower_bound`]) — distance-1
//!    recurrences through header phis (and affine-proven same-address
//!    memory edges) serialize consecutive latch traversals of a loop, so
//!    each loop contributes at least `latches × advance` cycles along its
//!    heaviest cross-iteration chain.
//! 5. **Reservation-pressure floor** ([`flow_lower_bound`]) — a block
//!    whose ASAP profile cannot double-buffer inside the engine's
//!    reservation queue serializes its own imports, contributing
//!    `(trips − 1) × advance` for the binding block.
//!
//! Block trip counts come from a profiling run ([`ProfileObserver`]'s
//! `block_entries`), or — for the flow-strengthened bound — from the
//! `salam-flow` trip-count inference, which needs no execution at all;
//! the bound is exact with respect to the trips it is given. The cross-check `static_lower_bound ≤
//! dynamic cycles` is asserted for all MachSuite kernels in
//! `crates/bench/tests/verify.rs` — a violated bound means either the
//! engine or this analysis is wrong, which is the point.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use salam_cdfg::StaticCdfg;
use salam_ir::analysis::{find_natural_loops, Cfg, DomTree};
use salam_ir::{BlockId, Function, InstId, Opcode, ValueKind};

use crate::diag::{codes, Diagnostic, Span};
use crate::memdep::{DepEdge, DepKind};

/// The throughput knobs the bound must respect, mirroring the engine/SPM
/// configuration a run will actually use. Defaults match
/// `StandaloneConfig::default()` (2R/2W SPM, unpipelined FUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundConfig {
    /// SPM read ports per cycle.
    pub read_ports: u32,
    /// SPM write ports per cycle.
    pub write_ports: u32,
    /// Whether FUs are fully pipelined (II = 1).
    pub pipelined_fus: bool,
    /// Engine reservation-queue capacity — a block imports only when the
    /// queue has room for all of its ops (or is completely empty), so
    /// large blocks serialize under small queues.
    pub reservation_entries: usize,
}

impl Default for BoundConfig {
    fn default() -> Self {
        BoundConfig {
            read_ports: 2,
            write_ports: 2,
            pipelined_fus: false,
            reservation_entries: 128,
        }
    }
}

/// Per-block static schedule levels.
#[derive(Debug, Clone)]
pub struct BlockBound {
    /// The block.
    pub block: BlockId,
    /// Its name.
    pub name: String,
    /// Dynamic executions.
    pub trips: u64,
    /// Latency-weighted critical path through the whole block DAG.
    pub crit_path: u64,
    /// ASAP level of the terminator — the provable serial cost of one
    /// execution.
    pub term_level: u64,
}

/// Latency-weighted ASAP/ALAP levels and slack for one instruction.
#[derive(Debug, Clone, Copy)]
pub struct OpSlack {
    /// The instruction.
    pub inst: InstId,
    /// Earliest start relative to block entry.
    pub asap: u64,
    /// Latest start that keeps the block's critical path.
    pub alap: u64,
    /// `alap - asap`; zero means the op is on the critical path.
    pub slack: u64,
}

/// The full static bound report for one kernel/config pair.
#[derive(Debug, Clone)]
pub struct BoundReport {
    /// Function name.
    pub func_name: String,
    /// The provable lower bound on dynamic cycles.
    pub lower_bound: u64,
    /// Floor 1: serialized terminator chains.
    pub chain_floor: u64,
    /// Floor 2: the binding-est FU pool, as `(kind name, cycles)`.
    pub fu_floor: Option<(String, u64)>,
    /// Floor 3: `(load cycles, store cycles)` through the memory ports.
    pub mem_floor: (u64, u64),
    /// Per-block levels.
    pub blocks: Vec<BlockBound>,
    /// ASAP/ALAP slack per instruction (block-relative levels).
    pub slacks: Vec<OpSlack>,
}

impl BoundReport {
    /// Ops with zero slack — the static critical path the paper's
    /// elaboration would pipeline first.
    pub fn critical_ops(&self) -> impl Iterator<Item = &OpSlack> + '_ {
        self.slacks.iter().filter(|s| s.slack == 0)
    }
}

/// Cycle weight of one instruction along a dependency chain: CDFG latency
/// for compute ops (latency-0 wiring forwards within the issue cycle),
/// and at least one cycle of port latency for memory ops.
fn chain_weight(cdfg: &StaticCdfg, f: &Function, id: InstId) -> u64 {
    let lat = cdfg.op(id).latency as u64;
    match f.inst(id).op {
        Opcode::Load | Opcode::Store => lat.max(1),
        _ => lat,
    }
}

/// Computes latency-weighted ASAP levels for one block; returns
/// `(levels by inst, critical path, terminator level)`.
fn block_asap(f: &Function, cdfg: &StaticCdfg, block: BlockId) -> (HashMap<InstId, u64>, u64, u64) {
    let insts = &f.block(block).insts;
    let mut level: HashMap<InstId, u64> = HashMap::new();
    let mut crit = 0u64;
    let mut term_level = 0u64;
    for &id in insts {
        let inst = f.inst(id);
        // Phis read end-of-previous-iteration values: level 0.
        let asap = if inst.op == Opcode::Phi {
            0
        } else {
            inst.operands
                .iter()
                .filter_map(|&v| match f.value_kind(v) {
                    ValueKind::Inst(def) => {
                        level.get(def).map(|&l| l + chain_weight(cdfg, f, *def))
                    }
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        level.insert(id, asap);
        crit = crit.max(asap + chain_weight(cdfg, f, id));
        if inst.op.is_terminator() {
            term_level = asap;
        }
    }
    (level, crit, term_level)
}

/// Computes ALAP levels against the block's critical path.
fn block_alap(f: &Function, cdfg: &StaticCdfg, block: BlockId, crit: u64) -> HashMap<InstId, u64> {
    let insts = &f.block(block).insts;
    let pos: HashMap<InstId, usize> = insts.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    // Reverse users map, in-block only.
    let mut alap: HashMap<InstId, u64> = HashMap::new();
    for &id in insts.iter().rev() {
        let w = chain_weight(cdfg, f, id);
        // Latest finish = min over in-block users of their ALAP start.
        let mut latest_finish = crit;
        for &uid in insts {
            if pos[&uid] <= pos[&id] {
                continue;
            }
            let user = f.inst(uid);
            if user.op == Opcode::Phi {
                continue; // consumes at the next iteration's entry
            }
            let feeds = user
                .operands
                .iter()
                .any(|&v| matches!(f.value_kind(v), ValueKind::Inst(def) if *def == id));
            if feeds {
                if let Some(&ua) = alap.get(&uid) {
                    latest_finish = latest_finish.min(ua);
                }
            }
        }
        alap.insert(id, latest_finish.saturating_sub(w));
    }
    alap
}

/// Computes the static lower bound and schedule levels for `f` elaborated
/// as `cdfg`, given per-block dynamic trip counts (blocks absent from
/// `trips` count as zero executions).
pub fn static_lower_bound(
    f: &Function,
    cdfg: &StaticCdfg,
    trips: &HashMap<BlockId, u64>,
    cfg: &BoundConfig,
) -> BoundReport {
    let mut chain_floor = 0u64;
    let mut blocks = Vec::new();
    let mut slacks = Vec::new();
    let mut fu_busy: HashMap<&'static str, (u64, u32)> = HashMap::new();
    let mut dyn_loads = 0u64;
    let mut dyn_stores = 0u64;

    for (bid, b) in f.blocks() {
        let t = trips.get(&bid).copied().unwrap_or(0);
        let (asap, crit, term_level) = block_asap(f, cdfg, bid);
        let alap = block_alap(f, cdfg, bid, crit);
        for &id in &b.insts {
            let a = asap.get(&id).copied().unwrap_or(0);
            let l = alap.get(&id).copied().unwrap_or(a).max(a);
            slacks.push(OpSlack {
                inst: id,
                asap: a,
                alap: l,
                slack: l - a,
            });
        }
        blocks.push(BlockBound {
            block: bid,
            name: b.name.clone(),
            trips: t,
            crit_path: crit,
            term_level,
        });
        if t == 0 {
            continue;
        }
        chain_floor += t * term_level;
        for &id in &b.insts {
            let op = cdfg.op(id);
            match f.inst(id).op {
                Opcode::Load => dyn_loads += t,
                Opcode::Store => dyn_stores += t,
                _ => {}
            }
            // Latency-0 ops never occupy a pool slot in the engine.
            if let (Some(kind), true) = (op.fu, op.latency > 0) {
                let busy = if cfg.pipelined_fus {
                    1
                } else {
                    op.latency as u64
                };
                let pool = cdfg.fu_count(kind).max(1);
                let e = fu_busy.entry(kind.name()).or_insert((0, pool));
                e.0 += t * busy;
            }
        }
    }

    let fu_floor = fu_busy
        .into_iter()
        .map(|(name, (busy, pool))| (name.to_string(), busy.div_ceil(pool as u64)))
        .max_by_key(|&(_, c)| c);
    let load_floor = dyn_loads.div_ceil(cfg.read_ports.max(1) as u64);
    let store_floor = dyn_stores.div_ceil(cfg.write_ports.max(1) as u64);

    let lower_bound = chain_floor
        .max(fu_floor.as_ref().map_or(0, |&(_, c)| c))
        .max(load_floor)
        .max(store_floor);

    BoundReport {
        func_name: f.name.clone(),
        lower_bound,
        chain_floor,
        fu_floor,
        mem_floor: (load_floor, store_floor),
        blocks,
        slacks,
    }
}

/// Per-loop decomposition of the flow-tightened bound.
#[derive(Debug, Clone)]
pub struct LoopBound {
    /// Loop header.
    pub header: BlockId,
    /// Header block name.
    pub name: String,
    /// Total latch→header traversals under the given trips.
    pub latch_traversals: u64,
    /// Times the loop was entered from outside.
    pub entries: u64,
    /// Provable cycles between consecutive header imports (the
    /// cross-block critical path from header import to latch branch).
    pub adv_chain: u64,
    /// Heaviest distance-1 header-phi recurrence chain weight.
    pub adv_recurrence: u64,
    /// Heaviest distance-1 same-address memory recurrence: the chain from
    /// a load's issue to the feeding store's commit, which the engine's
    /// memory-ordering window serializes across consecutive iterations.
    pub adv_mem: u64,
    /// The loop's serial floor after composing with its children.
    pub value: u64,
}

/// The binding block of the reservation-pressure floor.
#[derive(Debug, Clone)]
pub struct ResvBound {
    /// The block whose repeated imports serialize.
    pub block: BlockId,
    /// Its name.
    pub name: String,
    /// Dynamic executions.
    pub trips: u64,
    /// Provable minimum cycles between consecutive imports of the block.
    pub advance: u64,
}

/// The flow-tightened bound: the PR-5 floors plus a loop-aware
/// recurrence floor that tracks dependency chains *across* block
/// boundaries and *across* iterations, and a reservation-pressure floor
/// for blocks too large to double-buffer in the reservation queue.
#[derive(Debug, Clone)]
pub struct FlowBoundReport {
    /// The per-block floors (chain/FU/memory) under the same trips.
    pub base: BoundReport,
    /// The loop-aware recurrence floor (always ≥ `base.chain_floor`).
    pub recur_floor: u64,
    /// The reservation-pressure floor: `(trips − 1) × advance` of the
    /// binding block in [`FlowBoundReport::resv`], zero when every block
    /// double-buffers freely.
    pub resv_floor: u64,
    /// The block that binds `resv_floor`, if any.
    pub resv: Option<ResvBound>,
    /// `max(base.lower_bound, recur_floor, resv_floor)` — still provably
    /// ≤ dynamic cycles, and ≥ the PR-5 bound by construction.
    pub lower_bound: u64,
    /// Per-loop decomposition, innermost last, sorted by header.
    pub loops: Vec<LoopBound>,
}

impl FlowBoundReport {
    /// How many cycles the loop-aware floor added over the PR-5 bound.
    pub fn tightening(&self) -> u64 {
        self.lower_bound - self.base.lower_bound
    }
}

/// One merged natural loop with its body sub-DAG artifacts.
struct LoopInfo {
    header: BlockId,
    latches: BTreeSet<BlockId>,
    blocks: BTreeSet<BlockId>,
    /// Immediate parent header, if nested.
    parent: Option<BlockId>,
    /// Reverse postorder of the body DAG (back edges removed), header
    /// first.
    rpo: Vec<BlockId>,
    /// Body-DAG predecessors per block.
    preds: BTreeMap<BlockId, Vec<BlockId>>,
    /// Body-DAG dominators per block (header dominates everything).
    doms: BTreeMap<BlockId, BTreeSet<BlockId>>,
}

/// Builds the merged loop forest with body-DAG orders and dominators.
fn loop_forest(f: &Function, cfg: &Cfg) -> Vec<LoopInfo> {
    let dom = DomTree::new(f, cfg);
    let mut merged: BTreeMap<BlockId, (BTreeSet<BlockId>, BTreeSet<BlockId>)> = BTreeMap::new();
    for l in find_natural_loops(f, cfg, &dom) {
        let e = merged.entry(l.header).or_default();
        e.0.insert(l.latch);
        e.1.extend(l.blocks.iter().copied());
    }
    merged
        .iter()
        .map(|(&header, (latches, blocks))| {
            let parent = merged
                .iter()
                .filter(|(&h, (_, bs))| h != header && bs.contains(&header))
                .map(|(&h, (_, bs))| (bs.len(), h))
                .min()
                .map(|(_, h)| h);
            // Body DAG: edges inside the loop minus latch→header backs.
            let mut preds: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
            for &b in blocks {
                for s in f.successors(b) {
                    if !blocks.contains(&s) || (s == header && latches.contains(&b)) {
                        continue;
                    }
                    preds.entry(s).or_default().push(b);
                }
            }
            // Reverse postorder via DFS from the header over forward
            // body edges.
            let mut rpo = Vec::new();
            let mut seen = BTreeSet::new();
            let mut stack = vec![(header, false)];
            while let Some((b, done)) = stack.pop() {
                if done {
                    rpo.push(b);
                    continue;
                }
                if !seen.insert(b) {
                    continue;
                }
                stack.push((b, true));
                for s in f.successors(b).into_iter().rev() {
                    if blocks.contains(&s) && !(s == header && latches.contains(&b)) {
                        stack.push((s, false));
                    }
                }
            }
            rpo.reverse();
            // Iterative dominators over the body DAG (small sets; loops
            // in kernels are a handful of blocks).
            let mut doms: BTreeMap<BlockId, BTreeSet<BlockId>> = BTreeMap::new();
            doms.insert(header, BTreeSet::from([header]));
            loop {
                let mut changed = false;
                for &b in &rpo {
                    if b == header {
                        continue;
                    }
                    let mut inter: Option<BTreeSet<BlockId>> = None;
                    for p in preds.get(&b).into_iter().flatten() {
                        let Some(pd) = doms.get(p) else { continue };
                        inter = Some(match inter {
                            None => pd.clone(),
                            Some(acc) => acc.intersection(pd).copied().collect(),
                        });
                    }
                    let mut next = inter.unwrap_or_default();
                    next.insert(b);
                    if doms.get(&b) != Some(&next) {
                        doms.insert(b, next);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            LoopInfo {
                header,
                latches: latches.clone(),
                blocks: blocks.clone(),
                parent,
                rpo,
                preds,
                doms,
            }
        })
        .collect()
}

/// Whether a value defined by `def` (in `def_block` at in-block position
/// `def_pos`) provably completes in the *same iteration* before an op in
/// `use_block` (position `use_pos`) consumes it: same block and earlier,
/// or a body-DAG-dominating block. Global dominance is NOT enough — a
/// def can dominate globally yet execute only in an earlier iteration.
fn same_iteration(
    li: &LoopInfo,
    def_block: BlockId,
    def_pos: usize,
    use_block: BlockId,
    use_pos: usize,
) -> bool {
    if def_block == use_block {
        return def_pos < use_pos;
    }
    li.doms
        .get(&use_block)
        .is_some_and(|d| d.contains(&def_block))
}

/// Computes the two per-iteration advances of one loop:
///
/// * `adv_chain` — the latency-weighted critical path from the header's
///   import to the latch terminator's issue, following dependency chains
///   across block boundaries (block imports take the `min` over body
///   predecessors, which is sound at joins);
/// * `adv_recurrence` — the heaviest distance-1 recurrence through a
///   header phi: the chain weight from the phi to its back-edge value,
///   minimised over latches (sound for merged multi-latch loops) and
///   maximised over phis.
fn loop_advances(f: &Function, cdfg: &StaticCdfg, li: &LoopInfo) -> (u64, u64) {
    // Positions and owning blocks for the same-iteration test.
    let mut place: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for &b in &li.rpo {
        for (i, &id) in f.block(b).insts.iter().enumerate() {
            place.insert(id, (b, i));
        }
    }
    let mut term_lvl: BTreeMap<BlockId, u64> = BTreeMap::new();
    let mut lvl: HashMap<InstId, u64> = HashMap::new();
    for &b in &li.rpo {
        let import = if b == li.header {
            0
        } else {
            // A block is imported the cycle its taken predecessor's
            // terminator issues; `min` over predecessors is sound (inner
            // back-edge predecessors not yet levelled are skipped — the
            // first import this iteration arrives through a forward
            // predecessor, so the min over levelled ones lower-bounds it).
            match li
                .preds
                .get(&b)
                .into_iter()
                .flatten()
                .filter_map(|p| term_lvl.get(p))
                .min()
            {
                Some(&m) => m,
                None => continue, // unreachable inside the body
            }
        };
        for (pos, &id) in f.block(b).insts.iter().enumerate() {
            let inst = f.inst(id);
            let asap = if inst.op == Opcode::Phi {
                import
            } else {
                let dep = inst
                    .operands
                    .iter()
                    .filter_map(|&v| match f.value_kind(v) {
                        ValueKind::Inst(def) => {
                            let &(db, dp) = place.get(def)?;
                            if !same_iteration(li, db, dp, b, pos) {
                                return None;
                            }
                            lvl.get(def).map(|&l| l + chain_weight(cdfg, f, *def))
                        }
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                import.max(dep)
            };
            lvl.insert(id, asap);
            if inst.op.is_terminator() {
                term_lvl.insert(b, asap);
            }
        }
    }
    let adv_chain = li
        .latches
        .iter()
        .map(|lt| term_lvl.get(lt).copied().unwrap_or(0))
        .min()
        .unwrap_or(0);

    // Distance-1 recurrences: completion offset of each op relative to
    // the phi's availability, following the same same-iteration chains.
    let mut adv_rec = 0u64;
    for &phi_id in &f.block(li.header).insts {
        let phi = f.inst(phi_id);
        if phi.op != Opcode::Phi {
            continue;
        }
        let comp = chain_completion(f, cdfg, li, &place, phi_id, 0);
        // Weight to the back-edge value, minimised over latch incomings.
        let w = phi
            .operands
            .iter()
            .zip(&phi.block_refs)
            .filter(|(_, pred)| li.latches.contains(pred))
            .map(|(&inc, _)| match f.value_kind(inc) {
                ValueKind::Inst(def) => comp.get(def).copied().unwrap_or(0),
                _ => 0,
            })
            .min()
            .unwrap_or(0);
        adv_rec = adv_rec.max(w);
    }
    (adv_chain, adv_rec)
}

/// Completion levels along same-iteration def-use chains rooted at
/// `seed`: `comp[i]` is a lower bound on the cycles between the seed's
/// availability (`seed_val` after its issue) and `i`'s completion, for
/// every op whose value provably derives from the seed within one
/// iteration. Header phis are chain breaks (their inputs are previous-
/// iteration values); body phis contribute the `min` over incomings, and
/// only when every incoming is on the chain — the dynamically-taken edge
/// is unknown.
fn chain_completion(
    f: &Function,
    cdfg: &StaticCdfg,
    li: &LoopInfo,
    place: &HashMap<InstId, (BlockId, usize)>,
    seed: InstId,
    seed_val: u64,
) -> HashMap<InstId, u64> {
    let mut comp: HashMap<InstId, u64> = HashMap::new();
    comp.insert(seed, seed_val);
    for &b in &li.rpo {
        for (pos, &id) in f.block(b).insts.iter().enumerate() {
            if id == seed {
                continue;
            }
            let inst = f.inst(id);
            if inst.op == Opcode::Phi {
                if b == li.header {
                    continue;
                }
                let incomings: Vec<Option<u64>> = inst
                    .operands
                    .iter()
                    .map(|&v| match f.value_kind(v) {
                        ValueKind::Inst(def) => comp.get(def).copied(),
                        _ => None,
                    })
                    .collect();
                if let Some(d) = incomings.into_iter().collect::<Option<Vec<_>>>() {
                    if let Some(&m) = d.iter().min() {
                        comp.insert(id, m + chain_weight(cdfg, f, id));
                    }
                }
                continue;
            }
            let dep = inst
                .operands
                .iter()
                .filter_map(|&v| match f.value_kind(v) {
                    ValueKind::Inst(def) => {
                        let &(db, dp) = place.get(def)?;
                        // The seed is "available" wherever the chain
                        // starts; chains through other defs need the
                        // same-iteration proof.
                        if *def != seed && !same_iteration(li, db, dp, b, pos) {
                            return None;
                        }
                        comp.get(def).copied()
                    }
                    _ => None,
                })
                .max();
            if let Some(d) = dep {
                comp.insert(id, d + chain_weight(cdfg, f, id));
            }
        }
    }
    comp
}

/// The heaviest distance-1 same-address memory recurrence of one loop:
/// for each proven `store → load, distance 1` edge (the load re-reads
/// the previous iteration's store), the engine's memory-ordering window
/// holds the load's issue until the store commits, so consecutive store
/// commits are at least `chain(load issue → store commit)` apart. The
/// chain is followed through same-iteration def-use edges from the load
/// to the store; edges whose store does not derive from the load carry
/// no provable serialization and contribute nothing.
fn loop_mem_advance(
    f: &Function,
    cdfg: &StaticCdfg,
    li: &LoopInfo,
    place: &HashMap<InstId, (BlockId, usize)>,
    deps: &[DepEdge],
    trips: &HashMap<BlockId, u64>,
    latch_traversals: u64,
) -> u64 {
    let mut adv = 0u64;
    for e in deps {
        if e.kind != DepKind::Raw || e.distance != 1 || e.header != li.header {
            continue;
        }
        let (store, load) = (e.from, e.to);
        let (Some(&(sb, _)), Some(&(lb, _))) = (place.get(&store), place.get(&load)) else {
            continue;
        };
        if !li.blocks.contains(&sb) || !li.blocks.contains(&lb) {
            continue;
        }
        // The affine pairing covers *every* consecutive iteration only
        // when both endpoints execute once per latch traversal; a
        // conditionally-skipped access breaks the chain.
        if trips.get(&sb).copied().unwrap_or(0) != latch_traversals
            || trips.get(&lb).copied().unwrap_or(0) != latch_traversals
        {
            continue;
        }
        let comp = chain_completion(f, cdfg, li, place, load, chain_weight(cdfg, f, load));
        if let Some(&d) = comp.get(&store) {
            adv = adv.max(d);
        }
    }
    adv
}

/// Computes the flow-tightened lower bound: the PR-5 floors under the
/// same trips, strengthened by a loop-aware recurrence floor.
///
/// For every natural loop the floor takes the strongest of four sound
/// serializations — `latch_traversals × adv_chain` (consecutive header
/// imports are at least the body critical path apart),
/// `back_edges × adv_recurrence` (loop-carried SSA chains through header
/// phis serialize across iterations), `(latch_traversals − 1) × adv_mem`
/// for single-entry loops (proven distance-1 same-address store→load
/// pairs serialize through the engine's memory-ordering window), and the
/// sum of its children's floors plus its own non-child block chains —
/// and the floors compose up the loop tree by `max`, never by unsound
/// addition. A separate reservation-pressure floor serializes repeated
/// imports of any block too large to double-buffer in the reservation
/// queue.
/// `trips` may come from a dynamic profile or from static
/// [trip inference](salam_flow::trips); the bound is sound for any trips
/// that are exact (absent blocks count as zero, which can only lower
/// it). `deps` carries the statically-proven dependence edges from
/// [`crate::memdep::static_memdeps`] (pass `&[]` to skip the memory
/// recurrence floor).
pub fn flow_lower_bound(
    f: &Function,
    cdfg: &StaticCdfg,
    trips: &HashMap<BlockId, u64>,
    cfg: &BoundConfig,
    deps: &[DepEdge],
) -> FlowBoundReport {
    let base = static_lower_bound(f, cdfg, trips, cfg);
    let term_level: BTreeMap<BlockId, u64> = base
        .blocks
        .iter()
        .map(|b| (b.block, b.term_level))
        .collect();
    let trip_of = |b: BlockId| trips.get(&b).copied().unwrap_or(0);

    let cfg_an = Cfg::new(f);
    let forest = loop_forest(f, &cfg_an);
    let mut values: BTreeMap<BlockId, u64> = BTreeMap::new();
    let mut loops = Vec::new();
    // Innermost-first: process loops by ascending block count so every
    // child's value exists before its parent composes it.
    let mut order: Vec<usize> = (0..forest.len()).collect();
    order.sort_by_key(|&i| (forest[i].blocks.len(), forest[i].header));
    for &i in &order {
        let li = &forest[i];
        let (adv_chain, adv_rec) = loop_advances(f, cdfg, li);
        let mut place: HashMap<InstId, (BlockId, usize)> = HashMap::new();
        for &b in &li.rpo {
            for (p, &id) in f.block(b).insts.iter().enumerate() {
                place.insert(id, (b, p));
            }
        }
        let latch_traversals: u64 = li.latches.iter().map(|&lt| trip_of(lt)).sum();
        let adv_mem = loop_mem_advance(f, cdfg, li, &place, deps, trips, latch_traversals);
        let header_trips = trip_of(li.header);
        // A loop that ran at all was entered at least once; beyond that,
        // every header arrival not explained by a latch execution is an
        // entry. (Latches may also *exit* — rotated loops — so
        // `header − latches` alone would undercount entries.)
        let entries = if header_trips > 0 {
            header_trips.saturating_sub(latch_traversals).max(1)
        } else {
            0
        };
        // Each latch execution spends `adv_chain` cycles between its
        // dominating header import and its own terminator, and those
        // intervals chain sequentially — sound even when some latch
        // executions exit rather than loop back.
        let chain_part = latch_traversals.saturating_mul(adv_chain);
        // Back-edge traversals: one per header arrival that was not an
        // entry, and never more than the latch executions themselves.
        let back_edges = header_trips.saturating_sub(entries).min(latch_traversals);
        let rec_part = back_edges.saturating_mul(adv_rec);
        // Memory recurrences chain consecutive iterations *within* one
        // loop instance only — across instances the engine overlaps the
        // chains (control flow never waits for stores), so the product is
        // sound only for single-entry loops.
        let mem_pairs = if entries <= 1 {
            latch_traversals.saturating_sub(1)
        } else {
            0
        };
        let mem_part = mem_pairs.saturating_mul(adv_mem);
        // Immediate children compose by sum with the loop's own blocks
        // outside any child.
        let children: Vec<&LoopInfo> = forest
            .iter()
            .filter(|c| c.parent == Some(li.header))
            .collect();
        let mut sum_part: u64 = children
            .iter()
            .map(|c| values.get(&c.header).copied().unwrap_or(0))
            .sum();
        for &b in &li.blocks {
            if children.iter().any(|c| c.blocks.contains(&b)) {
                continue;
            }
            sum_part = sum_part.saturating_add(
                trip_of(b).saturating_mul(term_level.get(&b).copied().unwrap_or(0)),
            );
        }
        let value = chain_part.max(rec_part).max(mem_part).max(sum_part);
        values.insert(li.header, value);
        loops.push(LoopBound {
            header: li.header,
            name: f.block(li.header).name.clone(),
            latch_traversals,
            entries,
            adv_chain,
            adv_recurrence: adv_rec,
            adv_mem,
            value,
        });
    }
    loops.sort_by_key(|l| l.header);

    // Function level: top-level loops plus blocks outside every loop.
    let mut recur_floor: u64 = forest
        .iter()
        .filter(|l| l.parent.is_none())
        .map(|l| values.get(&l.header).copied().unwrap_or(0))
        .sum();
    for (bid, _) in f.blocks() {
        if forest.iter().any(|l| l.blocks.contains(&bid)) {
            continue;
        }
        recur_floor = recur_floor.saturating_add(
            trip_of(bid).saturating_mul(term_level.get(&bid).copied().unwrap_or(0)),
        );
    }

    // Reservation pressure: the engine imports a block only when the
    // reservation queue has room for all of it (or sits completely
    // empty). An op at ASAP level > t cannot have issued within t cycles
    // of its block's import, so consecutive imports of a block with I
    // ops are at least `S = min{ t : #{op : asap(op) > t} ≤ R − I }`
    // cycles apart. Imports of one block are totally ordered in time, so
    // the floor composes globally as `(trips − 1) × S` without any
    // cross-instance overlap concern.
    let mut resv_floor = 0u64;
    let mut resv = None;
    for (bid, blk) in f.blocks() {
        let t = trip_of(bid);
        if t < 2 {
            continue;
        }
        let n = blk.insts.len();
        let room = cfg.reservation_entries.saturating_sub(n);
        if n <= room {
            continue;
        }
        let (levels, _, _) = block_asap(f, cdfg, bid);
        let mut asaps: Vec<u64> = blk.insts.iter().map(|id| levels[id]).collect();
        asaps.sort_unstable_by(|a, b| b.cmp(a));
        let advance = asaps[room];
        let v = (t - 1).saturating_mul(advance);
        if advance > 0 && v > resv_floor {
            resv_floor = v;
            resv = Some(ResvBound {
                block: bid,
                name: blk.name.clone(),
                trips: t,
                advance,
            });
        }
    }

    let lower_bound = base.lower_bound.max(recur_floor).max(resv_floor);
    FlowBoundReport {
        base,
        recur_floor,
        resv_floor,
        resv,
        lower_bound,
        loops,
    }
}

/// Cross-checks a bound report against the engine's watchdog threshold:
/// if the provable minimum runtime already exceeds `deadlock_cycles`, a
/// slow-but-healthy run risks being misread (`S001`, warning — the
/// watchdog triggers on *no progress*, not total cycles, so this is a
/// smell rather than a certain failure).
pub fn check_schedule(report: &BoundReport, deadlock_cycles: u64) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if report.lower_bound > deadlock_cycles {
        diags.push(Diagnostic::warning(
            codes::S001,
            Span::func(&report.func_name),
            format!(
                "static lower bound {} exceeds deadlock_cycles {}; \
                 a healthy run of this kernel is slower than the watchdog horizon",
                report.lower_bound, deadlock_cycles
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_profile::HardwareProfile;
    use salam_cdfg::FuConstraints;
    use salam_ir::interp::{run_function, ProfileObserver, RtVal, SparseMemory};
    use salam_ir::{FunctionBuilder, Type};

    fn profile_trips(f: &Function, args: &[RtVal]) -> HashMap<BlockId, u64> {
        let mut obs = ProfileObserver::default();
        let mut mem = SparseMemory::new();
        run_function(f, args, &mut mem, &mut obs, 100_000_000).unwrap();
        obs.block_entries
    }

    /// `for i in 0..n { p[0] = fmul(load p[0], c) }` — one fmul per
    /// iteration, a tight FP chain.
    fn fp_loop(n: i64) -> Function {
        let mut fb = FunctionBuilder::new("fp_loop", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let zero = fb.i64c(0);
        let n = fb.i64c(n);
        fb.counted_loop("i", zero, n, |fb, _iv| {
            let v = fb.load(Type::F64, p, "v");
            let c = fb.f64c(1.5);
            let m = fb.fmul(v, c, "m");
            fb.store(m, p);
        });
        fb.ret();
        fb.finish()
    }

    #[test]
    fn floors_combine_into_the_bound() {
        let f = fp_loop(10);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let report = static_lower_bound(&f, &cdfg, &trips, &BoundConfig::default());
        // Integer control (phi/icmp/br) is latency-0 wiring, so the chain
        // floor contributes nothing here; the single fp_mul unit is the
        // bottleneck: 10 iterations × 3-cycle occupancy.
        let (kind, fu_cycles) = report.fu_floor.clone().expect("fp pool");
        assert_eq!(fu_cycles, 30, "{kind}: {report:?}");
        assert!(report.lower_bound >= 30);
        // The body's critical path load(1)+fmul(3)+store(1) shows in levels.
        let body = report.blocks.iter().find(|b| b.name == "i.body").unwrap();
        assert_eq!(body.crit_path, 5, "{report:?}");
        assert_eq!(body.trips, 10);
    }

    #[test]
    fn fu_floor_scales_with_constraints() {
        let f = fp_loop(16);
        let profile = HardwareProfile::default_40nm();
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let free = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let r_free = static_lower_bound(&f, &free, &trips, &BoundConfig::default());
        // fmul runs 16 times at latency 3 on one unit either way (only one
        // fmul instruction exists), so the FU floor is 48 busy-cycles.
        let (_, fu_cycles) = r_free.fu_floor.clone().expect("has an FP pool");
        assert!(fu_cycles >= 48, "{fu_cycles}");
        // Pipelining drops occupancy to 1 per op.
        let piped = BoundConfig {
            pipelined_fus: true,
            ..BoundConfig::default()
        };
        let r_piped = static_lower_bound(&f, &free, &trips, &piped);
        assert!(r_piped.fu_floor.clone().unwrap().1 <= 16);
    }

    #[test]
    fn mem_floor_counts_port_throughput() {
        let f = fp_loop(8);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let one_port = BoundConfig {
            read_ports: 1,
            write_ports: 1,
            ..BoundConfig::default()
        };
        let r = static_lower_bound(&f, &cdfg, &trips, &one_port);
        // 8 loads through 1 read port, 8 stores through 1 write port.
        assert_eq!(r.mem_floor, (8, 8));
    }

    #[test]
    fn slack_is_zero_on_the_critical_path() {
        let f = fp_loop(1);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let r = static_lower_bound(&f, &cdfg, &trips, &BoundConfig::default());
        assert!(r.critical_ops().count() > 0);
        for s in &r.slacks {
            assert!(s.alap >= s.asap, "{s:?}");
        }
    }

    /// `acc = 0; for i in 0..n { acc += p[i] }; p[0] = acc` — a
    /// distance-1 fadd recurrence: iterations cannot pipeline past the
    /// accumulator no matter how many FUs exist.
    fn acc_loop(n: i64) -> Function {
        let mut fb = FunctionBuilder::new("acc_loop", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let entry = fb.current_block();
        let header = fb.add_block("header");
        let body = fb.add_block("body");
        let exit = fb.add_block("exit");
        let zero = fb.i64c(0);
        let fz = fb.f64c(0.0);
        let bound = fb.i64c(n);
        fb.br(header);
        fb.position_at(header);
        let (iphi, iv) = fb.phi(Type::I64, "i");
        let (aphi, acc) = fb.phi(Type::F64, "acc");
        let c = fb.icmp(salam_ir::IntPredicate::Slt, iv, bound, "c");
        fb.cond_br(c, body, exit);
        fb.position_at(body);
        let a = fb.gep1(Type::F64, p, iv, "a");
        let v = fb.load(Type::F64, a, "v");
        let acc2 = fb.fadd(acc, v, "acc2");
        let one = fb.i64c(1);
        let inext = fb.add(iv, one, "inext");
        fb.br(header);
        fb.position_at(exit);
        fb.store(acc, p);
        fb.ret();
        fb.add_incoming(iphi, zero, entry);
        fb.add_incoming(iphi, inext, body);
        fb.add_incoming(aphi, fz, entry);
        fb.add_incoming(aphi, acc2, body);
        fb.finish()
    }

    #[test]
    fn accumulator_recurrence_floors_beat_pipelined_fu_floors() {
        let f = acc_loop(10);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let piped = BoundConfig {
            pipelined_fus: true,
            ..BoundConfig::default()
        };
        let r = flow_lower_bound(&f, &cdfg, &trips, &piped, &[]);
        // 10 back edges × the 3-cycle fadd chain through the acc phi.
        let lb = r.loops.iter().find(|l| l.name == "header").unwrap();
        assert_eq!(lb.entries, 1, "{lb:?}");
        assert_eq!(lb.latch_traversals, 10);
        assert_eq!(lb.adv_recurrence, 3);
        assert_eq!(r.recur_floor, 30, "{r:?}");
        // Pipelined FUs drop the base floor below the recurrence: the
        // flow bound is strictly tighter than PR-5's.
        assert!(r.base.lower_bound < 30, "{:?}", r.base);
        assert_eq!(r.lower_bound, 30);
        assert_eq!(r.tightening(), 30 - r.base.lower_bound);
    }

    /// `x = 0; do { x = x*x + 1 } while (x < n)` split across blocks so
    /// the recurrence chain must compose via body-DAG dominance.
    fn cross_block_recur(n: i64) -> Function {
        let mut fb = FunctionBuilder::new("xblock", &[]);
        let entry = fb.current_block();
        let header = fb.add_block("header");
        let body = fb.add_block("body");
        let latch = fb.add_block("latch");
        let exit = fb.add_block("exit");
        let zero = fb.i64c(0);
        let bound = fb.i64c(n);
        fb.br(header);
        fb.position_at(header);
        let (xphi, x) = fb.phi(Type::I64, "x");
        let c = fb.icmp(salam_ir::IntPredicate::Slt, x, bound, "c");
        fb.cond_br(c, body, exit);
        fb.position_at(body);
        let m = fb.mul(x, x, "m");
        fb.br(latch);
        fb.position_at(latch);
        let one = fb.i64c(1);
        let xnext = fb.add(m, one, "xnext");
        fb.br(header);
        fb.position_at(exit);
        fb.ret();
        fb.add_incoming(xphi, zero, entry);
        fb.add_incoming(xphi, xnext, latch);
        fb.finish()
    }

    #[test]
    fn cross_block_recurrence_chains_compose_by_dominance() {
        let f = cross_block_recur(10);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        // x: 0, 1, 2, 5, 26 — four back edges.
        let trips = profile_trips(&f, &[]);
        let r = flow_lower_bound(&f, &cdfg, &trips, &BoundConfig::default(), &[]);
        let lb = r.loops.iter().find(|l| l.name == "header").unwrap();
        // mul(3) in `body` chains into add(1) in `latch`: the def block
        // dominates the use block inside the body DAG, so the composed
        // weight is 4 per iteration even though no single block sees it.
        assert_eq!(lb.adv_recurrence, 4, "{lb:?}");
        assert_eq!(r.recur_floor, 16, "{r:?}");
        // The per-block base bound can't see the cross-block chain.
        assert!(r.lower_bound > r.base.lower_bound, "{r:?}");
    }

    #[test]
    fn rotated_self_loop_counts_a_single_entry() {
        // do-while with header == latch: `i = 0; do { i += 1 } while (i < n)`.
        let mut fb = FunctionBuilder::new("dowhile", &[]);
        let entry = fb.current_block();
        let lp = fb.add_block("loop");
        let exit = fb.add_block("exit");
        let zero = fb.i64c(0);
        let bound = fb.i64c(8);
        fb.br(lp);
        fb.position_at(lp);
        let (iphi, iv) = fb.phi(Type::I64, "i");
        let one = fb.i64c(1);
        let inext = fb.add(iv, one, "inext");
        let c = fb.icmp(salam_ir::IntPredicate::Slt, inext, bound, "c");
        fb.cond_br(c, lp, exit);
        fb.position_at(exit);
        fb.ret();
        fb.add_incoming(iphi, zero, entry);
        fb.add_incoming(iphi, inext, lp);
        let f = fb.finish();
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[]);
        let r = flow_lower_bound(&f, &cdfg, &trips, &BoundConfig::default(), &[]);
        let lb = r.loops.iter().find(|l| l.name == "loop").unwrap();
        // The loop block runs 8 times; the latch IS the header, so only
        // 7 of those executions took the back edge and exactly one
        // arrival was an entry. Miscounting entries here would overclaim.
        assert_eq!(lb.latch_traversals, 8);
        assert_eq!(lb.entries, 1, "{lb:?}");
        assert!(lb.value >= 7, "{lb:?}");
        assert!(r.lower_bound >= r.base.lower_bound);
    }

    #[test]
    fn flow_bound_never_drops_below_the_base_bound() {
        let f = fp_loop(10);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let base = static_lower_bound(&f, &cdfg, &trips, &BoundConfig::default());
        let r = flow_lower_bound(&f, &cdfg, &trips, &BoundConfig::default(), &[]);
        assert!(r.lower_bound >= base.lower_bound);
        assert_eq!(r.base.lower_bound, base.lower_bound);
    }

    #[test]
    fn fixed_address_rmw_forms_a_memory_recurrence() {
        // `p[0] = fmul(load p[0], c)` every iteration: iteration j+1's
        // load cannot issue before iteration j's store commits, so
        // consecutive store commits are ≥ load(1)+fmul(3)+store(1) = 5
        // cycles apart, and the single-entry loop chains all 9 pairs.
        let f = fp_loop(10);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let args = [RtVal::P(0x1000)];
        let trips = profile_trips(&f, &args);
        let deps = crate::memdep::static_memdeps(&f, &args);
        let r = flow_lower_bound(&f, &cdfg, &trips, &BoundConfig::default(), &deps.edges);
        let l = r.loops.iter().find(|l| l.name == "i.header").unwrap();
        assert_eq!(l.adv_mem, 5, "{l:?}");
        assert_eq!(l.entries, 1);
        assert_eq!(l.value, 45, "{l:?}");
        assert_eq!(r.lower_bound, 45, "beats the 30-cycle FU floor");
    }

    #[test]
    fn reservation_pressure_serializes_oversized_blocks() {
        // A 6-fmul chain body (10 ops) under a 12-entry queue leaves room
        // for only 2 ops, so the next import waits until every op past
        // the third-largest ASAP level (13) has issued.
        let mut fb = FunctionBuilder::new("big_block", &[("p", Type::Ptr)]);
        let p = fb.arg(0);
        let zero = fb.i64c(0);
        let n = fb.i64c(8);
        fb.counted_loop("i", zero, n, |fb, _iv| {
            let mut v = fb.load(Type::F64, p, "v");
            for k in 0..6 {
                let c = fb.f64c(1.0 + k as f64);
                v = fb.fmul(v, c, "m");
            }
            fb.store(v, p);
        });
        fb.ret();
        let f = fb.finish();
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let tight = BoundConfig {
            reservation_entries: 12,
            ..BoundConfig::default()
        };
        let r = flow_lower_bound(&f, &cdfg, &trips, &tight, &[]);
        let resv = r.resv.as_ref().expect("body binds the queue");
        assert_eq!(resv.name, "i.body");
        assert_eq!(resv.advance, 13, "{resv:?}");
        assert_eq!(r.resv_floor, 7 * 13);
        assert!(r.lower_bound >= 91);
        // A roomy queue double-buffers the block freely.
        let roomy = flow_lower_bound(&f, &cdfg, &trips, &BoundConfig::default(), &[]);
        assert_eq!(roomy.resv_floor, 0);
        assert!(roomy.resv.is_none());
    }

    #[test]
    fn watchdog_cross_check_warns_when_bound_exceeds_horizon() {
        let f = fp_loop(100);
        let profile = HardwareProfile::default_40nm();
        let cdfg = StaticCdfg::elaborate(&f, &profile, &FuConstraints::unconstrained());
        let trips = profile_trips(&f, &[RtVal::P(0x1000)]);
        let r = static_lower_bound(&f, &cdfg, &trips, &BoundConfig::default());
        assert!(check_schedule(&r, 1_000_000).is_empty());
        let tight = check_schedule(&r, 10);
        assert_eq!(tight.len(), 1);
        assert_eq!(tight[0].code, codes::S001);
        assert_eq!(tight[0].severity, crate::diag::Severity::Warning);
    }
}
