//! Byte-pins the SARIF 2.1.0 export.
//!
//! The golden is produced by real passes over a deterministic fixture —
//! an affine out-of-bounds store (`M003`) plus a range-proven masked
//! out-of-bounds store (`F001`) — so any drift in pass messages, code
//! registry one-liners, or the SARIF serialization itself shows up as a
//! byte diff. Regenerate deliberately with
//! `SALAM_UPDATE_GOLDENS=1 cargo test -p salam-verify --test sarif_golden`.

use salam_ir::interp::RtVal;
use salam_ir::{FunctionBuilder, Type};
use salam_verify::{check_bounds, check_bounds_flow, to_sarif, MemRegion};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint.sarif");

/// `for i in 0..8 { p[i] = i; p[i & 3 | 8] = i }` — the first store walks
/// an affine window the region check can prove too small (M003); the
/// second store's masked index defeats the affine resolver but interval
/// analysis bounds it to `[8, 11]`, fully outside the region (F001).
fn fixture() -> (salam_ir::Function, Vec<RtVal>) {
    let mut fb = FunctionBuilder::new("sarif_fixture", &[("p", Type::Ptr)]);
    let p = fb.arg(0);
    let zero = fb.i64c(0);
    let n = fb.i64c(8);
    fb.counted_loop("i", zero, n, |fb, iv| {
        let pa = fb.gep1(Type::I64, p, iv, "pa");
        fb.store(iv, pa);
        let three = fb.i64c(3);
        let m = fb.and(iv, three, "m");
        let eight = fb.i64c(8);
        let off = fb.or(m, eight, "off");
        let pb = fb.gep1(Type::I64, p, off, "pb");
        fb.store(iv, pb);
    });
    fb.ret();
    (fb.finish(), vec![RtVal::P(0x1000)])
}

#[test]
fn sarif_export_matches_the_golden_byte_for_byte() {
    let (f, args) = fixture();
    // A 4-element region: the affine store [0x1000, 0x1040) overflows it,
    // and the masked store [0x1040, 0x1060) lies entirely outside.
    let region = [MemRegion::new(0x1000, 0x1020, "spm")];
    let mut diags = check_bounds(&f, &args, &region);
    let facts = salam_flow::analyze(&f, &args);
    diags.extend(check_bounds_flow(&f, &facts, &args, &region));
    assert!(!diags.is_empty(), "fixture must produce diagnostics");
    let got = to_sarif(&diags);
    if std::env::var_os("SALAM_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden missing — regenerate with SALAM_UPDATE_GOLDENS=1");
    assert_eq!(
        got, want,
        "SARIF output drifted from the byte-pinned golden; if the change \
         is deliberate, regenerate with SALAM_UPDATE_GOLDENS=1"
    );
}
